//! The trace-executing virtual machine.
//!
//! [`TracingVm`] is the "fully integrated" system the paper names as its
//! next step (§6): out-of-trace code is interpreted from the **decoded
//! threaded form** ([`jvm_vm::DecodedProgram`]) with the profiler attached
//! to every dispatch, while cached traces execute from compiled, guarded
//! straight-line code — lowered to the same decoded form by
//! [`crate::lower`] — with **no dispatch and no profiling points inside**
//! ("a trace dispatch executes a single profiling statement, all of the
//! inlined ones are removed", §5.4).
//!
//! Out-of-trace dispatch is marker-driven: the decoded streams bake an
//! [`op::ENTER_BLOCK`] marker at every basic-block start, so block-entry
//! detection — and with it the profiler hook and the trace-entry check —
//! is one opcode case instead of a per-instruction block-index
//! comparison. Frame `pc`s are indices into the decoded streams
//! throughout, including across trace entry and side exits.
//!
//! Guard failures side-exit: the frame's `pc` is re-anchored at the
//! guarded instruction (whose operands were only peeked, never popped)
//! and the interpreter resumes there, re-executing it with full
//! semantics. The resume point sits just *past* its block's entry marker,
//! so the dispatch event the reference system would fire on resumption is
//! accounted for **eagerly** at the exit itself, in the same order the
//! out-of-trace loop would. Consequently the engine is *semantically
//! transparent*: with optimization off it executes exactly the same
//! instruction sequence as the plain interpreter — a property the
//! differential tests pin down on all six workloads.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use jvm_bytecode::{BlockId, ClassId, FuncId, Intrinsic, Program};
use jvm_vm::decode::{eval_f_rel, eval_i_rel, op, INTRINSIC_ORDER};
use jvm_vm::{
    fold_checksum, DOp, DecodedProgram, ExecStats, Heap, HeapObj, OutputItem, Value, VmError,
};
use trace_bcg::{BranchCorrelationGraph, NodeState, Signal, SignalKind};
use trace_cache::{
    run_health_epoch, BcgSnapshot, ConstructorStats, HealthStats, OutcomeRecord, TraceCache,
    TraceConstructor, TraceExecStats, TraceHealth, TraceId, TraceOutcome, TraceStore,
};
use trace_jit::{RunReport, TraceJitConfig};
use trace_persist::{program_hash, Snapshot, SnapshotError, SnapshotReader};

use crate::compile::{compile, CondKind};
use crate::fuse::{fuse_trace, FuseStats, Fused};
use crate::lower::{lower_trace, lower_trace_frozen, LoweredTrace, XInstr};
use crate::opt::{optimize_trace, OptStats};
use crate::reg::{lower_reg, FrameImage, RBin, RInstr, RUn, RegStats, RegTrace, TraceArtifact};
use crate::shared::SharedSession;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Profiler/constructor/VM parameters (shared with the base system).
    pub jit: TraceJitConfig,
    /// Whether compiled traces are run through the peephole optimizer.
    pub optimize: bool,
    /// Whether compiled traces are fused into superinstructions
    /// (accounting-transparent; on by default).
    pub superinstructions: bool,
    /// Whether compiled traces are lowered to the register IR
    /// ([`crate::reg`]) and run in the register-file loop; traces the
    /// register lowering refuses fall back to the decoded form. On by
    /// default.
    pub reg_ir: bool,
    /// Whether the out-of-trace decoded streams are rewritten with
    /// profile-driven DOp superinstructions ([`jvm_vm::fuse`]) after the
    /// first run: block visits are counted during the first run and the
    /// selection is applied when it completes. Trace execution is
    /// unaffected (traces lower from source instructions); the engine's
    /// fallback interpreter transparently unfuses groups it steps
    /// through one instruction at a time. On by default.
    pub dop_fusion: bool,
    /// Whether the lifetime trace-health subsystem runs: per-trace
    /// dispatch outcomes feed the cache's health ledger, and at every
    /// profiler decay epoch the demotion ladder retires traces whose
    /// completion behavior has rotted (see
    /// [`trace_cache::HealthLedger`]). On by default; `false` restores
    /// the fast-trigger-only behavior (entry-exit streak quarantine).
    pub health: bool,
}

impl EngineConfig {
    /// Paper parameters, optimizer off (pure trace execution),
    /// superinstruction fusion on, register-IR lowering on.
    pub fn paper_default() -> Self {
        EngineConfig {
            jit: TraceJitConfig::paper_default(),
            optimize: false,
            superinstructions: true,
            reg_ir: true,
            dop_fusion: true,
            health: true,
        }
    }

    /// Returns this configuration with the optimizer toggled.
    pub fn with_optimizer(mut self, on: bool) -> Self {
        self.optimize = on;
        self
    }

    /// Returns this configuration with superinstruction fusion toggled.
    pub fn with_superinstructions(mut self, on: bool) -> Self {
        self.superinstructions = on;
        self
    }

    /// Returns this configuration with register-IR lowering toggled.
    pub fn with_reg_ir(mut self, on: bool) -> Self {
        self.reg_ir = on;
        self
    }

    /// Returns this configuration with decoded-stream DOp fusion toggled.
    pub fn with_dop_fusion(mut self, on: bool) -> Self {
        self.dop_fusion = on;
        self
    }

    /// Returns this configuration with the trace-health subsystem toggled.
    pub fn with_health(mut self, on: bool) -> Self {
        self.health = on;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// What a warm boot ([`TracingVm::load_snapshot`]) or an AOT replay
/// ([`TracingVm::aot_replay`]) accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmBootReport {
    /// Snapshot profile nodes merged into already-live nodes.
    pub nodes_merged: usize,
    /// Snapshot profile nodes newly created in the live profiler.
    pub nodes_created: usize,
    /// Trace objects installed from the snapshot (warm boot) or
    /// re-admitted by the constructor replay (AOT).
    pub traces_installed: usize,
    /// Entry links live in the cache after the operation.
    pub links_installed: usize,
    /// Quarantine blacklist entries restored.
    pub quarantine_restored: usize,
    /// Trace artifacts pre-built (compiled and lowered) before serving.
    pub artifacts_prebuilt: usize,
}

/// One activation record. `pc` is an index into the owning function's
/// *decoded* stream; block-entry detection is carried by the stream's
/// markers, so no per-frame block bookkeeping is needed.
#[derive(Debug)]
struct ExFrame {
    func: FuncId,
    pc: u32,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

impl ExFrame {
    fn new(func: FuncId, num_locals: u16, args: &[Value]) -> Self {
        // Args-first fill: the argument prefix is written exactly once,
        // only the tail is zeroed.
        let mut locals = Vec::with_capacity(num_locals as usize);
        locals.extend_from_slice(args);
        locals.resize(num_locals as usize, Value::default());
        ExFrame {
            func,
            pc: 0,
            locals,
            stack: Vec::with_capacity(8),
        }
    }
}

/// Reads virtual register `r` without a release-mode bounds check.
///
/// `lower_reg` numbers every operand below the trace's `num_regs` and
/// [`TracingVm::execute_reg_trace`] grows the register file to at least
/// that length on entry, so all register accesses are in range by
/// construction (the same argument as the interpreter's slab `slot`).
#[inline(always)]
fn rget(regs: &[Value], r: crate::reg::Reg) -> Value {
    debug_assert!((r as usize) < regs.len(), "lowered register bounds");
    // SAFETY: see above — register numbers are bounded by the lowering.
    unsafe { *regs.get_unchecked(r as usize) }
}

/// Writes virtual register `r` without a release-mode bounds check
/// (see [`rget`]).
#[inline(always)]
fn rset(regs: &mut [Value], r: crate::reg::Reg, v: Value) {
    debug_assert!((r as usize) < regs.len(), "lowered register bounds");
    // SAFETY: see `rget` — register numbers are bounded by the lowering.
    unsafe { *regs.get_unchecked_mut(r as usize) = v }
}

enum Step {
    Ok,
    Finished(Option<Value>),
}

enum TraceRun {
    Completed,
    SideExited {
        /// The trace exited before completing even its first block — the
        /// entry guard failed immediately. A streak of these means the
        /// link serves a path the program no longer takes.
        immediate: bool,
        /// Guard site: how many blocks completed before the exit. Feeds
        /// the health ledger's per-guard side-exit histogram.
        site: u32,
    },
    Finished(Option<Value>),
}

/// Consecutive immediate entry side-exits of the same trace before the
/// engine quarantines it: the trace costs an entry + guard evaluation
/// every dispatch and never makes progress, so it is retired and its
/// key blacklisted until the cooldown decays.
const ENTRY_EXIT_STREAK_LIMIT: u32 = 8;

/// Quarantine cooldown (refused construction attempts) applied by the
/// engine's fault triggers — corrupt artifacts and entry-exit streaks.
const QUARANTINE_COOLDOWN: u32 = 4;

/// The trace-executing VM: decoded-form interpreter + profiler + trace
/// cache + trace compiler + guarded trace execution, in one engine.
#[derive(Debug)]
pub struct TracingVm<'p> {
    program: &'p Program,
    /// The program in decoded threaded form — the only representation the
    /// execution paths read. Mutable because trace lowering interns
    /// optimizer-made constants into its pools.
    decoded: DecodedProgram,
    config: EngineConfig,
    bcg: BranchCorrelationGraph,
    constructor: TraceConstructor,
    cache: TraceCache,
    lowered: HashMap<TraceId, Rc<TraceArtifact>>,
    uncompilable: std::collections::HashSet<TraceId>,
    opt_stats: OptStats,
    fuse_stats: FuseStats,
    reg_stats: RegStats,
    /// Block-visit profile accumulated during the first run; input to
    /// the DOp-fusion selection (see [`jvm_vm::fuse`]).
    block_visits: jvm_vm::fuse::BlockCounts,
    /// Rewrite report of the applied DOp-fusion plan, once fused.
    dop_fusion_report: Option<jvm_vm::fuse::FusionReport>,
    // Run state.
    heap: Heap,
    frames: Vec<ExFrame>,
    stats: ExecStats,
    trace_stats: TraceExecStats,
    checksum: u64,
    output: Vec<OutputItem>,
    prev_block: Option<BlockId>,
    /// Monomorphic compiled-trace cache: the last `(trace id, lowered
    /// trace)` that dispatched. The entry-branch → trace-id step is
    /// already hashless (the BCG node's inline trace-link slot); this
    /// removes the `lowered` map probe for loop traces that re-enter
    /// through the same branch every iteration. No version stamp needed:
    /// a `TraceId`'s lowered form never changes.
    hot_trace: Option<(TraceId, Rc<TraceArtifact>)>,
    /// Reusable register file for register-trace execution: sized (and
    /// constant-seeded) per trace on entry, recycled across entries so
    /// the hot path never allocates.
    reg_file: Vec<Value>,
    /// Reusable signal drain buffer: the dispatch loop never allocates.
    signal_buf: Vec<Signal>,
    /// Shared-cache session, when this VM dispatches against a cache
    /// other VMs share. Signals then go to the off-thread constructor as
    /// bounded snapshots instead of being handled inline, and trace
    /// lookups/artifacts resolve through the shared cache.
    shared: Option<SharedSession>,
    /// Per-VM memo of shared-cache artifacts (`None` = trace exists but
    /// has no artifact, e.g. its chain stopped matching the program flow;
    /// both outcomes are permanent for a given id).
    shared_lowered: HashMap<TraceId, Option<Arc<TraceArtifact>>>,
    /// Shared-mode analogue of `hot_trace`.
    hot_shared: Option<(TraceId, Arc<TraceArtifact>)>,
    /// `(trace id, consecutive immediate entry side-exits)` — the
    /// engine-side quarantine trigger (see [`ENTRY_EXIT_STREAK_LIMIT`]).
    entry_exit_streak: Option<(TraceId, u32)>,
    /// Dispatch outcomes accumulated since the last health flush,
    /// run-length encoded: a hot loop dispatches the same trace with the
    /// same outcome over and over, so the common case is bumping the
    /// tail counter, not pushing. Fed to the cache's health ledger in
    /// one batch at each decay epoch (and at run exit) — one ledger
    /// lookup per run, not per dispatch.
    outcome_buf: Vec<(OutcomeRecord, u64)>,
    /// The profiler decay epoch the health ladder last ran at
    /// ([`trace_bcg::BranchCorrelationGraph::decay_epoch`]).
    last_health_epoch: u64,
}

/// The engine's view of whichever cache it dispatches against — the
/// single policy path shared by private and shared modes. Takes the two
/// fields (not `&mut self`) so callers keep disjoint borrows of the
/// profiler and outcome buffer.
fn store_mut<'a>(
    shared: &'a mut Option<SharedSession>,
    cache: &'a mut TraceCache,
) -> &'a mut dyn TraceStore {
    match shared {
        Some(sess) => &mut sess.cache,
        None => cache,
    }
}

impl<'p> TracingVm<'p> {
    /// Assembles the engine for a program, running the one-time decode
    /// pass.
    pub fn new(program: &'p Program, config: EngineConfig) -> Self {
        TracingVm {
            program,
            decoded: DecodedProgram::decode(program),
            config,
            bcg: BranchCorrelationGraph::new(config.jit.bcg_config()),
            constructor: TraceConstructor::new(config.jit.constructor_config()),
            cache: TraceCache::new(),
            lowered: HashMap::new(),
            uncompilable: std::collections::HashSet::new(),
            opt_stats: OptStats::default(),
            fuse_stats: FuseStats::default(),
            reg_stats: RegStats::default(),
            block_visits: jvm_vm::fuse::BlockCounts::for_program(program),
            dop_fusion_report: None,
            heap: Heap::new(config.jit.vm.gc_threshold),
            frames: Vec::new(),
            stats: ExecStats::default(),
            trace_stats: TraceExecStats::default(),
            checksum: 0,
            output: Vec::new(),
            prev_block: None,
            hot_trace: None,
            reg_file: Vec::new(),
            signal_buf: Vec::new(),
            shared: None,
            shared_lowered: HashMap::new(),
            hot_shared: None,
            entry_exit_streak: None,
            outcome_buf: Vec::new(),
            last_health_epoch: 0,
        }
    }

    /// Assembles an engine that dispatches against a shared cache: trace
    /// lookups hit `session.cache`, and profiler signals are shipped to
    /// the session's off-thread constructor instead of being handled
    /// inline (dropped batches are deferred and re-raised by decay — see
    /// [`crate::shared`]). The session must belong to `program`.
    pub fn new_shared(program: &'p Program, config: EngineConfig, session: SharedSession) -> Self {
        let mut vm = Self::new(program, config);
        vm.shared = Some(session);
        vm
    }

    /// The trace cache (shared structure with the base system).
    pub fn cache(&self) -> &TraceCache {
        &self.cache
    }

    /// The shared-cache session, when running in shared mode.
    pub fn shared(&self) -> Option<&SharedSession> {
        self.shared.as_ref()
    }

    /// The decoded program the engine executes from.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.decoded
    }

    /// Cumulative inline-constructor counters (private mode; shared-mode
    /// construction happens on the session's service thread). Lets a
    /// harness separate boot-time replay work from in-run construction.
    pub fn constructor_stats(&self) -> ConstructorStats {
        self.constructor.stats()
    }

    /// Aggregated optimizer statistics over all compiled traces.
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// Aggregated superinstruction-fusion statistics over all compiled
    /// traces.
    pub fn fuse_stats(&self) -> FuseStats {
        self.fuse_stats
    }

    /// Aggregated register-lowering statistics over all compiled traces
    /// (registers allocated, stack ops eliminated, guards fused).
    pub fn reg_stats(&self) -> RegStats {
        self.reg_stats
    }

    /// Number of traces compiled (and lowered) so far.
    pub fn compiled_count(&self) -> usize {
        self.lowered.len()
    }

    /// Number of compiled traces running in register form.
    pub fn reg_lowered_count(&self) -> usize {
        self.lowered
            .values()
            .filter(|a| matches!(***a, TraceArtifact::Reg(_)))
            .count()
    }

    /// Real byte footprint of all lowered traces.
    pub fn lowered_memory(&self) -> usize {
        self.lowered.values().map(|a| a.memory_estimate()).sum()
    }

    /// Output captured from print intrinsics during the most recent run
    /// (when `jit.vm.capture_output` is enabled).
    pub fn output(&self) -> &[OutputItem] {
        &self.output
    }

    /// Health-ledger counters of whichever cache this VM dispatches
    /// against (private or shared) — recorded outcomes, epochs judged,
    /// probations, demotions, re-admissions under watch.
    pub fn health_stats(&self) -> HealthStats {
        let store: &dyn TraceStore = match &self.shared {
            Some(sess) => &sess.cache,
            None => &self.cache,
        };
        store.health_stats()
    }

    /// Lifetime health telemetry for one tracked trace (a snapshot).
    pub fn trace_health(&self, tid: TraceId) -> Option<TraceHealth> {
        let store: &dyn TraceStore = match &self.shared {
            Some(sess) => &sess.cache,
            None => &self.cache,
        };
        store.trace_health(tid)
    }

    /// Construction-service health gauges (shared mode only).
    pub fn service_health(&self) -> Option<trace_cache::ServiceHealthSnapshot> {
        self.shared.as_ref().map(|sess| sess.health.snapshot())
    }

    /// Machine-readable reason the runtime is running degraded, if it
    /// is: `"constructor-degraded"` when the shared construction service
    /// is permanently down (dispatch keeps interpreting, never wrong),
    /// `"health-off"` when the trace-health subsystem is disabled by
    /// configuration. `None` means fully healthy.
    pub fn degraded_reason(&self) -> Option<&'static str> {
        if let Some(sess) = &self.shared {
            if sess.health.is_degraded() {
                return Some("constructor-degraded");
            }
        }
        if !self.config.health {
            return Some("health-off");
        }
        None
    }

    /// Executes the program, returning the same [`RunReport`] the base
    /// system produces.
    ///
    /// # Errors
    ///
    /// Propagates runtime traps and resource limits as [`VmError`].
    pub fn run(&mut self, args: &[Value]) -> Result<RunReport, VmError> {
        // Reset run state; profiler/cache/lowered traces persist.
        self.heap = Heap::new(self.config.jit.vm.gc_threshold);
        self.frames.clear();
        self.stats = ExecStats::default();
        self.checksum = 0;
        self.output.clear();
        self.prev_block = None;
        self.bcg.begin_stream();

        let program = self.program;
        let entry = program.entry();
        let ef = program.function(entry);
        if args.len() != ef.num_params() as usize {
            return Err(VmError::BadEntryArgs {
                func: entry,
                expected: ef.num_params(),
                provided: args.len(),
            });
        }
        self.frames.push(ExFrame::new(entry, ef.num_locals(), args));
        self.stats.max_frame_depth = 1;

        // DOp fusion profiles the first run and rewrites when it
        // completes; afterwards the streams are already fused.
        let profile_fusion = self.config.dop_fusion && self.dop_fusion_report.is_none();

        let result = loop {
            let (func_id, pc) = {
                let f = self.frames.last().expect("frame exists");
                (f.func, f.pc)
            };
            let d = self.decoded.func(func_id).code[pc as usize];

            if d.op == op::ENTER_BLOCK {
                // One dispatch per basic block: profiler hook + trace
                // entry check, then fall into the block body.
                self.frames.last_mut().expect("frame exists").pc = pc + 1;
                self.stats.block_dispatches += 1;
                if profile_fusion {
                    self.block_visits.counts[func_id.0 as usize][d.b as usize] += 1;
                }
                let bid = BlockId::new(func_id, d.b);
                let node = self.bcg.observe(bid);
                self.dispatch_signals();
                if self.config.health {
                    // The health ladder is synced to the profiler's decay
                    // window: flush outcomes + run the demotion epoch when
                    // the dispatch count crosses an epoch boundary.
                    let epoch = self.bcg.decay_epoch();
                    if epoch != self.last_health_epoch {
                        self.last_health_epoch = epoch;
                        self.flush_health_epoch();
                    }
                }
                let prev = self.prev_block.replace(bid);
                // Entry check through the BCG node's trace-link slot: a
                // version compare against the cache, no hashing. (In
                // private mode signals were just handled, so a trace built
                // by this very dispatch is immediately enterable — the
                // slot revalidates on the version bump. In shared mode the
                // slot stamp makes the lock-free probe one version
                // compare on the steady state.)
                let tid = {
                    let store = store_mut(&mut self.shared, &mut self.cache);
                    match (node, prev) {
                        (Some(n), Some(_)) => store.lookup_entry_cached(&mut self.bcg, n),
                        (None, Some(p)) => store.lookup_entry((p, bid)),
                        (_, None) => None,
                    }
                };
                let ran = match tid {
                    Some(tid) if self.shared.is_some() => {
                        let entry = (prev.expect("linked entry has a source block"), bid);
                        match self.shared_lowered_for(tid, entry) {
                            Some(art) => Some(match &*art {
                                TraceArtifact::Reg(rt) => self.execute_reg_trace(rt, prev)?,
                                TraceArtifact::Decoded(lt) => self.execute_trace(lt, prev)?,
                            }),
                            None => None,
                        }
                    }
                    Some(tid) => match self.lowered_for(tid) {
                        Some(art) => Some(match &*art {
                            TraceArtifact::Reg(rt) => self.execute_reg_trace(rt, prev)?,
                            TraceArtifact::Decoded(lt) => self.execute_trace(lt, prev)?,
                        }),
                        None => None,
                    },
                    None => None,
                };
                if ran.is_some() && self.trace_stats.first_entry_dispatch == 0 {
                    // Warm-up marker: how many block dispatches this run
                    // paid before the very first trace entry.
                    self.trace_stats.first_entry_dispatch = self.stats.block_dispatches;
                }
                match ran {
                    Some(TraceRun::Finished(v)) => {
                        let entry = (prev.expect("linked entry has a source block"), bid);
                        self.note_outcome(tid.expect("trace ran"), entry, TraceOutcome::Completed);
                        break v;
                    }
                    Some(TraceRun::SideExited {
                        immediate: true,
                        site,
                    }) => {
                        let entry = (prev.expect("linked entry has a source block"), bid);
                        let t = tid.expect("trace ran");
                        self.note_outcome(t, entry, TraceOutcome::SideExit { site });
                        self.note_immediate_entry_exit(t, entry);
                    }
                    Some(TraceRun::SideExited {
                        immediate: false,
                        site,
                    }) => {
                        let entry = (prev.expect("linked entry has a source block"), bid);
                        let t = tid.expect("trace ran");
                        self.note_outcome(t, entry, TraceOutcome::SideExit { site });
                        self.entry_exit_streak = None;
                    }
                    Some(TraceRun::Completed) => {
                        let entry = (prev.expect("linked entry has a source block"), bid);
                        self.note_outcome(tid.expect("trace ran"), entry, TraceOutcome::Completed);
                        self.entry_exit_streak = None;
                    }
                    None => self.trace_stats.blocks_outside += 1,
                }
                continue;
            }

            self.tick()?;
            match self.exec(d)? {
                Step::Ok => {}
                Step::Finished(v) => break v,
            }
        };

        if profile_fusion {
            self.apply_dop_fusion();
        }

        // Settle pending outcomes so health telemetry read between runs
        // reflects everything this run dispatched. The demotion epoch
        // itself only runs at decay boundaries.
        if !self.outcome_buf.is_empty() {
            let store = store_mut(&mut self.shared, &mut self.cache);
            store.record_outcome_runs(&self.outcome_buf);
            self.outcome_buf.clear();
        }

        Ok(RunReport {
            result,
            checksum: self.checksum,
            exec: self.stats,
            profiler: self.bcg.stats(),
            traces: self.trace_stats,
            constructor: self.constructor.stats(),
            cache: self.cache.stats(),
        })
    }

    /// Applies the profile-driven DOp-fusion selection to the decoded
    /// streams, using the block visits counted during the first run.
    /// Quickening is in place (stream length, targets and side-exit
    /// dpcs unchanged), so compiled traces and resume points stay valid.
    fn apply_dop_fusion(&mut self) {
        let visits = std::mem::take(&mut self.block_visits);
        let profile = jvm_vm::fuse::FusionProfile::collect(&self.decoded, visits);
        let plan =
            jvm_vm::fuse::FusionPlan::select(profile, &jvm_vm::fuse::FusionConfig::default());
        self.dop_fusion_report = Some(jvm_vm::fuse::apply(&mut self.decoded, &plan));
    }

    /// The DOp-fusion rewrite report: per-function candidates
    /// considered, fusions applied and estimated dispatches eliminated.
    /// `None` until the profiling (first) run completes or when
    /// `dop_fusion` is off.
    pub fn dop_fusion_report(&self) -> Option<&jvm_vm::fuse::FusionReport> {
        self.dop_fusion_report.as_ref()
    }

    /// Serializes the VM's profile and trace-cache contents as a
    /// versioned, checksummed snapshot container (see `trace-persist`).
    /// Private mode only: in shared mode the profile/cache of record
    /// live in the session, not in this VM.
    ///
    /// # Panics
    ///
    /// Panics if the VM runs in shared-cache mode.
    pub fn snapshot(&self) -> Vec<u8> {
        assert!(
            self.shared.is_none(),
            "snapshot() captures the private profile/cache; this VM is in shared mode"
        );
        Snapshot::capture(program_hash(self.program), &self.bcg, &self.cache).to_bytes()
    }

    /// Warm boot: decodes a snapshot, **merges** its profile into the
    /// live profiler (saturating counter adds; deferred decay state
    /// re-enters the lazy-decay discipline clamped to the window edge,
    /// so stale counts age out at the next slow-path visit instead of
    /// pinning predictions), restores the cache contents — budget sweep
    /// and quarantine blacklist included — and pre-builds artifacts for
    /// every restored trace against the frozen decoded program.
    ///
    /// No partial state on failure: every decode and validation error
    /// surfaces before the profiler or cache is touched.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on malformed, corrupt, version-skewed or stale
    /// (wrong program hash) input.
    ///
    /// # Panics
    ///
    /// Panics if the VM runs in shared-cache mode.
    pub fn load_snapshot(&mut self, bytes: &[u8]) -> Result<WarmBootReport, SnapshotError> {
        assert!(
            self.shared.is_none(),
            "load_snapshot() targets the private profile/cache; this VM is in shared mode"
        );
        let snap = SnapshotReader::new().read(bytes, program_hash(self.program))?;
        // `merge_into` validates the profile image before mutating, and
        // the cache image was validated by the reader, so from here on
        // nothing fails.
        let merge = trace_bcg::image::merge_into(&mut self.bcg, &snap.bcg)?;
        let restore = snap.cache.restore_into(&mut self.cache)?;
        let artifacts_prebuilt = self.prebuild_artifacts();
        Ok(WarmBootReport {
            nodes_merged: merge.nodes_merged,
            nodes_created: merge.nodes_created,
            traces_installed: restore.traces_installed,
            links_installed: restore.links_installed,
            quarantine_restored: restore.quarantine_restored,
            artifacts_prebuilt,
        })
    }

    /// AOT replay: decodes a snapshot, merges its profile like
    /// [`Self::load_snapshot`], but restores only the cache's
    /// **admission controls** (payload budget and quarantine blacklist)
    /// — not the trace contents. It then re-raises a hot-state signal
    /// for every traceable node and routes the batch through the live
    /// trace constructor, so every trace is re-derived and re-admitted
    /// under the current budget and blacklist before serving, exactly
    /// as it would have been built online. Artifacts are pre-built for
    /// whatever the constructor admitted.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] as for [`Self::load_snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the VM runs in shared-cache mode.
    pub fn aot_replay(&mut self, bytes: &[u8]) -> Result<WarmBootReport, SnapshotError> {
        assert!(
            self.shared.is_none(),
            "aot_replay() targets the private profile/cache; this VM is in shared mode"
        );
        let snap = SnapshotReader::new().read(bytes, program_hash(self.program))?;
        let merge = trace_bcg::image::merge_into(&mut self.bcg, &snap.bcg)?;
        self.cache.set_budget(snap.cache.budget.map(|b| b as usize));
        let mut quarantine_restored = 0;
        for q in &snap.cache.quarantine {
            self.cache
                .restore_quarantine(q.entry, q.blocks.clone(), q.cooldown);
            quarantine_restored += 1;
        }
        let signals: Vec<Signal> = self
            .bcg
            .iter()
            .filter(|(_, n)| n.state().is_traceable())
            .map(|(idx, n)| Signal {
                node: idx,
                branch: n.branch(),
                kind: SignalKind::StateChange {
                    old: NodeState::NewlyCreated,
                    new: n.state(),
                },
            })
            .collect();
        let admitted = self
            .constructor
            .handle_batch(&signals, &mut self.bcg, &mut self.cache);
        let links_installed = self.cache.iter_links().count();
        let artifacts_prebuilt = self.prebuild_artifacts();
        Ok(WarmBootReport {
            nodes_merged: merge.nodes_merged,
            nodes_created: merge.nodes_created,
            traces_installed: admitted as usize,
            links_installed,
            quarantine_restored,
            artifacts_prebuilt,
        })
    }

    /// Pre-builds artifacts for every linked trace that lacks one, using
    /// the frozen decoded lowering for the non-register fallback (see
    /// [`Self::build_artifact`]); traces the frozen path refuses lower
    /// lazily at their first dispatch instead. Returns how many
    /// artifacts were built.
    fn prebuild_artifacts(&mut self) -> usize {
        let mut tids: Vec<TraceId> = self
            .cache
            .iter_links()
            .map(|(_, trace)| trace.id())
            .collect();
        tids.sort_unstable_by_key(|t| t.index());
        tids.dedup();
        let mut built = 0;
        for tid in tids {
            if self.lowered.contains_key(&tid) || self.uncompilable.contains(&tid) {
                continue;
            }
            if let Some(artifact) = self.build_artifact(tid, true) {
                self.lowered.insert(tid, Rc::new(artifact));
                built += 1;
            }
        }
        built
    }

    /// Fuel + instruction accounting, shared by interpreter and trace
    /// execution.
    #[inline]
    fn tick(&mut self) -> Result<(), VmError> {
        if self.stats.instructions >= self.config.jit.vm.max_steps {
            return Err(VmError::OutOfFuel);
        }
        self.stats.instructions += 1;
        Ok(())
    }

    /// Drains pending profiler signals and routes them: inline
    /// construction in private mode; bounded snapshot submission to the
    /// off-thread constructor in shared mode, deferring the batch back
    /// into the profiler (for decay-driven re-raise) when the queue is
    /// full. Once the construction service is permanently degraded the
    /// signals are discarded outright — no snapshot is captured, no
    /// submit attempted, and nothing is parked for a constructor that
    /// will never come back.
    #[inline]
    fn dispatch_signals(&mut self) {
        if !self.bcg.has_signals() {
            return;
        }
        self.bcg.drain_signals_into(&mut self.signal_buf);
        match &self.shared {
            None => {
                self.constructor
                    .handle_batch(&self.signal_buf, &mut self.bcg, &mut self.cache);
            }
            Some(sess) => {
                if sess.health.is_degraded() {
                    sess.health.note_degraded_discard();
                    return;
                }
                let snap =
                    BcgSnapshot::capture_bounded(&self.bcg, &self.signal_buf, sess.snapshot_limit);
                if !sess.queue.submit(snap) {
                    self.bcg.defer_signals(&self.signal_buf);
                }
            }
        }
    }

    /// Records an immediate entry side-exit of `tid`; at
    /// [`ENTRY_EXIT_STREAK_LIMIT`] consecutive occurrences the trace is
    /// quarantined — retired from the cache with its `(entry, path)` key
    /// blacklisted — so dispatch stops paying for an entry that never
    /// makes progress.
    fn note_immediate_entry_exit(&mut self, tid: TraceId, entry: trace_bcg::Branch) {
        let streak = match self.entry_exit_streak {
            Some((t, n)) if t == tid => n + 1,
            _ => 1,
        };
        if streak >= ENTRY_EXIT_STREAK_LIMIT {
            self.entry_exit_streak = None;
            store_mut(&mut self.shared, &mut self.cache).quarantine(entry, QUARANTINE_COOLDOWN);
            self.hot_trace = None;
            self.hot_shared = None;
        } else {
            self.entry_exit_streak = Some((tid, streak));
        }
    }

    /// Buffers one trace-dispatch outcome for the health ledger (no-op
    /// with health off). The buffer is run-length encoded: an outcome
    /// matching a recent record bumps that record's counter instead of
    /// pushing. The ledger's streak logic only depends on each trace's
    /// *own* outcome subsequence, so merging across records of *other*
    /// traces is sound — the backward scan stops at the first record of
    /// the same trace (its order must be preserved) and is capped at a
    /// few slots so loop nests that alternate between traces still
    /// coalesce. Flushed at epoch boundaries and run exit.
    #[inline]
    fn note_outcome(&mut self, tid: TraceId, entry: trace_bcg::Branch, outcome: TraceOutcome) {
        if self.config.health {
            let rec = OutcomeRecord {
                tid,
                entry,
                outcome,
            };
            for (slot, n) in self.outcome_buf.iter_mut().rev().take(4) {
                if slot.tid == rec.tid {
                    if *slot == rec {
                        *n += 1;
                        return;
                    }
                    break;
                }
            }
            self.outcome_buf.push((rec, 1));
        }
    }

    /// Epoch boundary: feed buffered outcomes to the health ledger and
    /// run the demotion ladder through the unified [`TraceStore`] path.
    /// Any applied demotion invalidates the monomorphic hot-trace memos
    /// and the streak counter — the retired trace must not be served
    /// from a stale handle.
    fn flush_health_epoch(&mut self) {
        let store = store_mut(&mut self.shared, &mut self.cache);
        store.record_outcome_runs(&self.outcome_buf);
        let applied = run_health_epoch(store);
        self.outcome_buf.clear();
        if applied > 0 {
            self.hot_trace = None;
            self.hot_shared = None;
            self.entry_exit_streak = None;
        }
    }

    /// Resolves a linked trace id to its lowered form, compiling
    /// (optimizing, register-lowering or fusing as configured) and
    /// lowering on first use; refreshes the monomorphic hot-trace cache
    /// on success. Register lowering runs on the post-opt, pre-fusion
    /// code (its own pass subsumes fusion's stack-traffic wins); traces
    /// it refuses fall back to fusion + decoded lowering.
    fn lowered_for(&mut self, tid: TraceId) -> Option<Rc<TraceArtifact>> {
        if let Some((hot_tid, art)) = &self.hot_trace {
            if *hot_tid == tid {
                return Some(Rc::clone(art));
            }
        }
        if self.uncompilable.contains(&tid) {
            return None;
        }
        if !self.lowered.contains_key(&tid) {
            match self.build_artifact(tid, false) {
                Some(artifact) => {
                    self.lowered.insert(tid, Rc::new(artifact));
                }
                None => return None,
            }
        }
        let art = Rc::clone(&self.lowered[&tid]);
        self.hot_trace = Some((tid, Rc::clone(&art)));
        Some(art)
    }

    /// Compiles + lowers the artifact for a linked trace: optimize (as
    /// configured), register-lower, or fall back to superinstruction
    /// fusion + decoded lowering. With `frozen` the decoded fallback
    /// refuses to mutate the decoded streams (it interns nothing) and
    /// returns `None` when it can't — the snapshot prebuild path uses
    /// this, leaving refused traces to lower lazily at first dispatch.
    /// Marks the trace uncompilable (permanently) on a compile error.
    fn build_artifact(&mut self, tid: TraceId, frozen: bool) -> Option<TraceArtifact> {
        let mut ct = match compile(self.program, self.cache.trace(tid)) {
            Ok(ct) => ct,
            Err(_) => {
                self.uncompilable.insert(tid);
                return None;
            }
        };
        if self.config.optimize {
            let s = optimize_trace(&mut ct);
            self.opt_stats.before += s.before;
            self.opt_stats.after += s.after;
            self.opt_stats.folds += s.folds;
            self.opt_stats.eliminations += s.eliminations;
            self.opt_stats.identities += s.identities;
            self.opt_stats.reductions += s.reductions;
        }
        let reg = if self.config.reg_ir {
            lower_reg(self.program, &self.decoded, &ct)
        } else {
            None
        };
        match reg {
            Some(rt) => {
                let s = rt.stats;
                self.reg_stats.before += s.before;
                self.reg_stats.after += s.after;
                self.reg_stats.regs += s.regs;
                self.reg_stats.eliminated += s.eliminated;
                self.reg_stats.guards_fused += s.guards_fused;
                Some(TraceArtifact::Reg(rt))
            }
            None => {
                if self.config.superinstructions {
                    let s = fuse_trace(&mut ct);
                    self.fuse_stats.before += s.before;
                    self.fuse_stats.after += s.after;
                    self.fuse_stats.fused_groups += s.fused_groups;
                }
                if frozen {
                    lower_trace_frozen(self.program, &self.decoded, &ct).map(TraceArtifact::Decoded)
                } else {
                    let lt = lower_trace(self.program, &mut self.decoded, &ct);
                    Some(TraceArtifact::Decoded(lt))
                }
            }
        }
    }

    /// Shared-mode analogue of [`Self::lowered_for`]: resolves a
    /// shared-cache id to its published artifact through a per-VM memo.
    /// Both outcomes are permanent for a given id (the builder runs once
    /// per hash-consed chain, and ids are never reused), so the memo
    /// never revalidates.
    ///
    /// Failures surface as "no artifact" — the VM keeps interpreting. A
    /// corrupt artifact additionally quarantines the trace so every VM
    /// stops dispatching it and the constructor cools down before
    /// rebuilding the key.
    fn shared_lowered_for(
        &mut self,
        tid: TraceId,
        entry: trace_bcg::Branch,
    ) -> Option<Arc<TraceArtifact>> {
        if let Some((hot_tid, art)) = &self.hot_shared {
            if *hot_tid == tid {
                return Some(Arc::clone(art));
            }
        }
        if let Some(memo) = self.shared_lowered.get(&tid) {
            let art = memo.clone()?;
            self.hot_shared = Some((tid, Arc::clone(&art)));
            return Some(art);
        }
        let mut corrupt = false;
        let resolved = {
            let sess = self.shared.as_ref().expect("shared mode");
            match sess.cache.artifact_checked(tid) {
                Ok(artifact) => {
                    #[cfg(feature = "debug-invariants")]
                    if let Some(art) = &artifact {
                        assert_eq!(
                            art.src_blocks().first().copied(),
                            Some(entry.1),
                            "published artifact must start at the linked entry's target"
                        );
                    }
                    artifact
                }
                Err(trace_cache::TraceCacheError::CorruptArtifact(_)) => {
                    corrupt = true;
                    None
                }
                // Evicted (link outlived its trace by one probe) or
                // unknown: ids are never reused, so "no artifact" is
                // permanent.
                Err(_) => None,
            }
        };
        if corrupt {
            // Never execute a corrupt artifact: retire the trace for
            // everyone — through the same policy path every other
            // quarantine takes — and blacklist its key until the
            // cooldown decays.
            store_mut(&mut self.shared, &mut self.cache).quarantine(entry, QUARANTINE_COOLDOWN);
        }
        let art = self.shared_lowered.entry(tid).or_insert(resolved).clone()?;
        self.hot_shared = Some((tid, Arc::clone(&art)));
        Some(art)
    }

    /// Executes one lowered trace.
    fn execute_trace(
        &mut self,
        lt: &LoweredTrace,
        pre_entry: Option<BlockId>,
    ) -> Result<TraceRun, VmError> {
        self.trace_stats.entered += 1;
        let mut blocks_done = 0u64;
        let mut instrs = 0u64;

        macro_rules! side_exit {
            ($exit:expr) => {{
                let exit = $exit;
                {
                    let f = self.frames.last_mut().expect("frame exists");
                    debug_assert_eq!(f.func, exit.func);
                    f.pc = exit.dpc;
                }
                self.trace_stats.exited_early += 1;
                self.trace_stats.blocks_in_partial += blocks_done;
                self.trace_stats.instrs_in_partial += instrs;
                let prev = if blocks_done == 0 {
                    pre_entry
                } else {
                    Some(lt.src_blocks[blocks_done as usize - 1])
                };
                if let Some(p) = prev {
                    self.bcg.set_context(p);
                } else {
                    self.bcg.begin_stream();
                }
                // The resume pc sits past its block's entry marker, so
                // the out-of-trace loop will not re-fire the dispatch:
                // account for it eagerly, in the exact order the loop
                // would (dispatch count, observe, signal handling,
                // prev-block update, outside-block count). The resumed
                // block never re-enters the trace whose guard just failed
                // — the remainder of the block runs in interpreter code
                // before the next dispatch point, as in the real system.
                self.stats.block_dispatches += 1;
                let bid = BlockId::new(exit.func, exit.block);
                let _ = self.bcg.observe(bid);
                self.dispatch_signals();
                self.prev_block = Some(bid);
                self.trace_stats.blocks_outside += 1;
                return Ok(TraceRun::SideExited {
                    immediate: blocks_done == 0,
                    site: u32::try_from(blocks_done).unwrap_or(u32::MAX),
                });
            }};
        }

        for t in lt.code.iter() {
            match t {
                XInstr::Op(d) => {
                    self.tick()?;
                    instrs += 1;
                    match self.exec(*d)? {
                        Step::Ok => {}
                        Step::Finished(_) => unreachable!("Op is never control"),
                    }
                }
                XInstr::Fused(f) => {
                    // Accounting-transparent: the group costs its full
                    // source width in fuel and instruction counts.
                    let w = f.width();
                    for _ in 0..w {
                        self.tick()?;
                    }
                    instrs += w;
                    let frame = self.frames.last_mut().expect("frame exists");
                    match *f {
                        Fused::LLBin { a, b, op } => {
                            // Type errors surface in the pop order the
                            // unfused sequence would use (right first).
                            let vb = frame.locals[b as usize].as_int()?;
                            let va = frame.locals[a as usize].as_int()?;
                            frame.stack.push(Value::Int(op.apply(va, vb)));
                        }
                        Fused::LCBin { a, c, op } => {
                            let va = frame.locals[a as usize].as_int()?;
                            frame.stack.push(Value::Int(op.apply(va, c)));
                        }
                        Fused::BinStore { op, d } => {
                            let vb = frame.stack.pop().expect("verified").as_int()?;
                            let va = frame.stack.pop().expect("verified").as_int()?;
                            frame.locals[d as usize] = Value::Int(op.apply(va, vb));
                        }
                        Fused::Move { a, d } => {
                            frame.locals[d as usize] = frame.locals[a as usize];
                        }
                        Fused::ConstStore { c, d } => {
                            frame.locals[d as usize] = Value::Int(c);
                        }
                        Fused::LoadLoad { a, b } => {
                            let va = frame.locals[a as usize];
                            let vb = frame.locals[b as usize];
                            frame.stack.push(va);
                            frame.stack.push(vb);
                        }
                        Fused::ArrayGet { arr, idx } => {
                            // Checks in the unfused pop order: index, then
                            // array reference, then element type + bounds.
                            let iv = frame.locals[idx as usize].as_int()?;
                            let av = frame.locals[arr as usize].as_ref_id()?;
                            match self.heap.get(av) {
                                HeapObj::Array { elems } => {
                                    if iv < 0 || iv as usize >= elems.len() {
                                        return Err(VmError::IndexOutOfBounds {
                                            index: iv,
                                            len: elems.len(),
                                        });
                                    }
                                    frame.stack.push(elems[iv as usize]);
                                }
                                HeapObj::Object { .. } => {
                                    return Err(VmError::TypeError {
                                        expected: "array",
                                        found: "object",
                                    })
                                }
                            }
                        }
                        Fused::ArraySet { arr, idx, val } => {
                            let v = frame.locals[val as usize];
                            let iv = frame.locals[idx as usize].as_int()?;
                            let av = frame.locals[arr as usize].as_ref_id()?;
                            match self.heap.get_mut(av) {
                                HeapObj::Array { elems } => {
                                    if iv < 0 || iv as usize >= elems.len() {
                                        return Err(VmError::IndexOutOfBounds {
                                            index: iv,
                                            len: elems.len(),
                                        });
                                    }
                                    elems[iv as usize] = v;
                                }
                                HeapObj::Object { .. } => {
                                    return Err(VmError::TypeError {
                                        expected: "array",
                                        found: "object",
                                    })
                                }
                            }
                        }
                    }
                    frame.pc += w as u32;
                }
                XInstr::FallThrough => {
                    blocks_done += 1;
                }
                XInstr::Jump { target } => {
                    self.tick()?;
                    instrs += 1;
                    let f = self.frames.last_mut().expect("frame exists");
                    f.pc = *target;
                    blocks_done += 1;
                }
                XInstr::GuardCond {
                    kind,
                    expected_taken,
                    target,
                    exit,
                } => {
                    let taken = self.eval_cond(*kind)?;
                    if taken != *expected_taken {
                        side_exit!(*exit);
                    }
                    self.tick()?;
                    instrs += 1;
                    self.stats.branches += 1;
                    let f = self.frames.last_mut().expect("frame exists");
                    for _ in 0..kind.arity() {
                        f.stack.pop();
                    }
                    if taken {
                        self.stats.taken_branches += 1;
                        f.pc = *target;
                    } else {
                        // Decoded fall-through: the next block's marker.
                        f.pc = exit.dpc + 1;
                    }
                    blocks_done += 1;
                }
                XInstr::GuardSwitch {
                    low,
                    targets,
                    default,
                    expected,
                    exit,
                } => {
                    let f = self.frames.last().expect("frame exists");
                    let v = f.stack.last().expect("verified").as_int()?;
                    let idx = v.wrapping_sub(*low);
                    let actual = if idx >= 0 && (idx as usize) < targets.len() {
                        targets[idx as usize]
                    } else {
                        *default
                    };
                    if actual != *expected {
                        side_exit!(*exit);
                    }
                    self.tick()?;
                    instrs += 1;
                    self.stats.branches += 1;
                    self.stats.taken_branches += 1;
                    let f = self.frames.last_mut().expect("frame exists");
                    f.stack.pop();
                    f.pc = *expected;
                    blocks_done += 1;
                }
                XInstr::EnterStatic { callee, ret } => {
                    self.tick()?;
                    instrs += 1;
                    {
                        let f = self.frames.last_mut().expect("frame exists");
                        f.pc = *ret;
                    }
                    // The callee starts past its entry marker: its block-0
                    // dispatch is absorbed by the trace.
                    self.push_call(*callee, 1)?;
                    blocks_done += 1;
                }
                XInstr::GuardVirtual {
                    slot,
                    argc,
                    expected,
                    ret,
                    exit,
                } => {
                    let f = self.frames.last().expect("frame exists");
                    let recv_idx = f.stack.len() - *argc as usize;
                    let recv = f.stack[recv_idx].as_ref_id()?;
                    let class = match self.heap.get(recv) {
                        HeapObj::Object { class, .. } => *class,
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object receiver",
                                found: "array",
                            })
                        }
                    };
                    let callee = self.program.class(class).resolve(*slot);
                    if callee != *expected {
                        side_exit!(*exit);
                    }
                    self.tick()?;
                    instrs += 1;
                    self.stats.virtual_calls += 1;
                    {
                        let f = self.frames.last_mut().expect("frame exists");
                        f.pc = *ret;
                    }
                    self.push_call(callee, 1)?;
                    blocks_done += 1;
                }
                XInstr::GuardReturn {
                    expected,
                    has_value,
                    exit,
                } => {
                    if self.frames.len() < 2 {
                        // Returning from the outermost frame ends the
                        // program; hand it to the interpreter.
                        side_exit!(*exit);
                    }
                    let caller = &self.frames[self.frames.len() - 2];
                    let cont = BlockId::new(
                        caller.func,
                        self.decoded.func(caller.func).block_of[caller.pc as usize],
                    );
                    if cont != *expected {
                        side_exit!(*exit);
                    }
                    self.tick()?;
                    instrs += 1;
                    self.stats.returns += 1;
                    let mut frame = self.frames.pop().expect("frame exists");
                    if *has_value {
                        let v = frame.stack.pop().expect("verified");
                        self.frames.last_mut().expect("caller exists").stack.push(v);
                    }
                    blocks_done += 1;
                }
                XInstr::Finish { op: d, exit } => {
                    {
                        let f = self.frames.last_mut().expect("frame exists");
                        f.pc = exit.dpc;
                    }
                    self.tick()?;
                    instrs += 1;
                    blocks_done += 1;
                    match self.exec(*d)? {
                        Step::Ok => {}
                        Step::Finished(v) => {
                            self.trace_stats.completed += 1;
                            self.trace_stats.blocks_in_completed += blocks_done;
                            self.trace_stats.instrs_in_completed += instrs;
                            return Ok(TraceRun::Finished(v));
                        }
                    }
                }
            }
        }

        // Trace ran to completion.
        self.trace_stats.completed += 1;
        self.trace_stats.blocks_in_completed += blocks_done;
        self.trace_stats.instrs_in_completed += instrs;
        let last = *lt.src_blocks.last().expect("traces are nonempty");
        self.bcg.set_context(last);
        self.prev_block = Some(last);
        Ok(TraceRun::Completed)
    }

    /// Writes a frame image back into the current frame: dirty locals
    /// first, then the register stack on top of the frame's real prefix.
    /// Used at side exits (full deopt), calls (arguments cross the real
    /// stack) and allocations (collection roots).
    #[inline]
    fn materialize(&mut self, image: &FrameImage, regs: &[Value]) {
        let f = self.frames.last_mut().expect("frame exists");
        for &(slot, r) in image.dirty.iter() {
            f.locals[slot as usize] = rget(regs, r);
        }
        debug_assert_eq!(
            f.stack.len(),
            image.base as usize,
            "real stack prefix must match the lowering's model"
        );
        for &r in image.stack.iter() {
            f.stack.push(rget(regs, r));
        }
    }

    /// Executes one register-lowered trace in the tight register-file
    /// loop: a flat `Vec<Value>` register frame, no per-op operand-stack
    /// bookkeeping. Fuel is charged in batches (each instruction's
    /// weight covers the stack ops folded into it), which is
    /// observationally identical to per-op ticking — see [`crate::reg`].
    fn execute_reg_trace(
        &mut self,
        rt: &RegTrace,
        pre_entry: Option<BlockId>,
    ) -> Result<TraceRun, VmError> {
        self.trace_stats.entered += 1;
        let mut instrs = 0u64;
        let max_steps = self.config.jit.vm.max_steps;
        // Fuel is accounted against a local budget while inside the
        // trace — per-instruction ticking compares two values the
        // compiler keeps in registers — and folded back into the
        // engine-wide counter once per exit path. Nothing reached from
        // inside the loop reads `stats.instructions` (tick() is never
        // called here), so the deferred sync is unobservable.
        let budget = max_steps - self.stats.instructions;
        let mut regs = std::mem::take(&mut self.reg_file);
        // The lowering is single-assignment: every non-constant register
        // is written before it is read, so stale values from an earlier
        // trace are never observable and the file only needs to grow to
        // this trace's high-water mark — no per-entry zero fill. Hot
        // short traces are entered millions of times, so this setup cost
        // is the dominant fixed overhead.
        if regs.len() < rt.num_regs as usize {
            regs.resize(rt.num_regs as usize, Value::default());
        }
        for &(r, v) in &rt.consts {
            rset(&mut regs, r, v);
        }

        macro_rules! tick_n {
            ($n:expr) => {{
                let n = $n as u64;
                if n > budget - instrs {
                    // Saturate exactly where per-op ticking would stop.
                    self.stats.instructions = max_steps;
                    self.reg_file = regs;
                    return Err(VmError::OutOfFuel);
                }
                instrs += n;
            }};
        }

        macro_rules! reg_exit {
            ($idx:expr) => {{
                self.stats.instructions += instrs;
                let exit = &rt.exits[$idx as usize];
                self.materialize(&rt.images[exit.image as usize], &regs);
                {
                    let f = self.frames.last_mut().expect("frame exists");
                    debug_assert_eq!(f.func, exit.func);
                    f.pc = exit.dpc;
                }
                self.trace_stats.exited_early += 1;
                self.trace_stats.blocks_in_partial += exit.blocks_done as u64;
                self.trace_stats.instrs_in_partial += instrs;
                let prev = if exit.blocks_done == 0 {
                    pre_entry
                } else {
                    Some(rt.src_blocks[exit.blocks_done as usize - 1])
                };
                if let Some(p) = prev {
                    self.bcg.set_context(p);
                } else {
                    self.bcg.begin_stream();
                }
                // Eager resume-dispatch accounting, exactly as in
                // `execute_trace`'s side_exit!.
                self.stats.block_dispatches += 1;
                let bid = BlockId::new(exit.func, exit.block);
                let _ = self.bcg.observe(bid);
                self.dispatch_signals();
                self.prev_block = Some(bid);
                self.trace_stats.blocks_outside += 1;
                let immediate = exit.blocks_done == 0;
                let site = exit.blocks_done;
                self.reg_file = regs;
                return Ok(TraceRun::SideExited { immediate, site });
            }};
        }

        macro_rules! bin_i {
            ($a:expr, $b:expr, $f:expr) => {{
                // Type errors surface in interpreter pop order: right
                // operand first.
                let vb = rget(&regs, $b).as_int()?;
                let va = rget(&regs, $a).as_int()?;
                Value::Int($f(va, vb))
            }};
        }
        macro_rules! bin_f {
            ($a:expr, $b:expr, $f:expr) => {{
                let vb = rget(&regs, $b).as_float()?;
                let va = rget(&regs, $a).as_float()?;
                Value::Float($f(va, vb))
            }};
        }

        for t in rt.code.iter() {
            match t {
                RInstr::PullStack { dst } => {
                    // Pure data movement from the real entry stack; no
                    // source instruction, no fuel.
                    let v = self
                        .frames
                        .last_mut()
                        .expect("frame exists")
                        .stack
                        .pop()
                        .expect("lowering tracked the entry stack");
                    rset(&mut regs, *dst, v);
                }
                RInstr::LoadLocal { slot, dst, w } => {
                    tick_n!(*w);
                    let f = self.frames.last().expect("frame exists");
                    rset(&mut regs, *dst, f.locals[*slot as usize]);
                }
                RInstr::IncLocal { slot, dst, imm, w } => {
                    tick_n!(*w);
                    let f = self.frames.last().expect("frame exists");
                    let v = f.locals[*slot as usize].as_int()?;
                    rset(&mut regs, *dst, Value::Int(v.wrapping_add(*imm as i64)));
                }
                RInstr::IncReg { src, dst, imm, w } => {
                    tick_n!(*w);
                    let v = rget(&regs, *src).as_int()?;
                    rset(&mut regs, *dst, Value::Int(v.wrapping_add(*imm as i64)));
                }
                RInstr::Bin { op, a, b, dst, w } => {
                    tick_n!(*w);
                    let v = match op {
                        RBin::IAdd => bin_i!(*a, *b, |x: i64, y: i64| x.wrapping_add(y)),
                        RBin::ISub => bin_i!(*a, *b, |x: i64, y: i64| x.wrapping_sub(y)),
                        RBin::IMul => bin_i!(*a, *b, |x: i64, y: i64| x.wrapping_mul(y)),
                        RBin::IDiv => {
                            let vb = rget(&regs, *b).as_int()?;
                            let va = rget(&regs, *a).as_int()?;
                            if vb == 0 {
                                return Err(VmError::DivisionByZero);
                            }
                            Value::Int(va.wrapping_div(vb))
                        }
                        RBin::IRem => {
                            let vb = rget(&regs, *b).as_int()?;
                            let va = rget(&regs, *a).as_int()?;
                            if vb == 0 {
                                return Err(VmError::DivisionByZero);
                            }
                            Value::Int(va.wrapping_rem(vb))
                        }
                        RBin::IShl => {
                            bin_i!(*a, *b, |x: i64, y: i64| x.wrapping_shl(y as u32 & 63))
                        }
                        RBin::IShr => {
                            bin_i!(*a, *b, |x: i64, y: i64| x.wrapping_shr(y as u32 & 63))
                        }
                        RBin::IUShr => {
                            bin_i!(*a, *b, |x: i64, y: i64| ((x as u64) >> (y as u32 & 63))
                                as i64)
                        }
                        RBin::IAnd => bin_i!(*a, *b, |x: i64, y: i64| x & y),
                        RBin::IOr => bin_i!(*a, *b, |x: i64, y: i64| x | y),
                        RBin::IXor => bin_i!(*a, *b, |x: i64, y: i64| x ^ y),
                        RBin::FAdd => bin_f!(*a, *b, |x: f64, y: f64| x + y),
                        RBin::FSub => bin_f!(*a, *b, |x: f64, y: f64| x - y),
                        RBin::FMul => bin_f!(*a, *b, |x: f64, y: f64| x * y),
                        RBin::FDiv => bin_f!(*a, *b, |x: f64, y: f64| x / y),
                    };
                    rset(&mut regs, *dst, v);
                }
                RInstr::Un { op, a, dst, w } => {
                    tick_n!(*w);
                    let v = match op {
                        RUn::INeg => Value::Int(rget(&regs, *a).as_int()?.wrapping_neg()),
                        RUn::FNeg => Value::Float(-rget(&regs, *a).as_float()?),
                        RUn::I2F => Value::Float(rget(&regs, *a).as_int()? as f64),
                        RUn::F2I => Value::Int(rget(&regs, *a).as_float()? as i64),
                    };
                    rset(&mut regs, *dst, v);
                }
                RInstr::Intrinsic { i, a, b, dst, w } => {
                    tick_n!(*w);
                    match i {
                        Intrinsic::Sqrt => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.sqrt());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::Sin => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.sin());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::Cos => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.cos());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::Exp => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.exp());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::Log => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.ln());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::AbsF => {
                            let v = Value::Float(rget(&regs, *a).as_float()?.abs());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::AbsI => {
                            let v = Value::Int(rget(&regs, *a).as_int()?.wrapping_abs());
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::MinI => {
                            let v = bin_i!(*a, *b, |x: i64, y: i64| x.min(y));
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::MaxI => {
                            let v = bin_i!(*a, *b, |x: i64, y: i64| x.max(y));
                            rset(&mut regs, *dst, v);
                        }
                        Intrinsic::PrintInt => {
                            let v = rget(&regs, *a).as_int()?;
                            if self.config.jit.vm.capture_output {
                                self.output.push(OutputItem::Int(v));
                            }
                        }
                        Intrinsic::PrintFloat => {
                            let v = rget(&regs, *a).as_float()?;
                            if self.config.jit.vm.capture_output {
                                self.output.push(OutputItem::Float(v));
                            }
                        }
                        Intrinsic::Checksum => {
                            let v = rget(&regs, *a).as_int()?;
                            self.checksum = fold_checksum(self.checksum, v);
                        }
                    }
                }
                RInstr::GetField { obj, field, dst, w } => {
                    tick_n!(*w);
                    let o = rget(&regs, *obj).as_ref_id()?;
                    match self.heap.get(o) {
                        HeapObj::Object { fields, .. } => {
                            let v = *fields.get(*field as usize).ok_or(VmError::BadField {
                                field: *field,
                                num_fields: fields.len() as u16,
                            })?;
                            rset(&mut regs, *dst, v);
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                RInstr::PutField { obj, val, field, w } => {
                    tick_n!(*w);
                    let o = rget(&regs, *obj).as_ref_id()?;
                    let v = rget(&regs, *val);
                    match self.heap.get_mut(o) {
                        HeapObj::Object { fields, .. } => {
                            let len = fields.len();
                            *fields.get_mut(*field as usize).ok_or(VmError::BadField {
                                field: *field,
                                num_fields: len as u16,
                            })? = v;
                        }
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object",
                                found: "array",
                            })
                        }
                    }
                }
                RInstr::ALoad { arr, idx, dst, w } => {
                    tick_n!(*w);
                    let iv = rget(&regs, *idx).as_int()?;
                    let av = rget(&regs, *arr).as_ref_id()?;
                    match self.heap.get(av) {
                        HeapObj::Array { elems } => {
                            if iv < 0 || iv as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: iv,
                                    len: elems.len(),
                                });
                            }
                            rset(&mut regs, *dst, elems[iv as usize]);
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                RInstr::AStore { arr, idx, val, w } => {
                    tick_n!(*w);
                    let v = rget(&regs, *val);
                    let iv = rget(&regs, *idx).as_int()?;
                    let av = rget(&regs, *arr).as_ref_id()?;
                    match self.heap.get_mut(av) {
                        HeapObj::Array { elems } => {
                            if iv < 0 || iv as usize >= elems.len() {
                                return Err(VmError::IndexOutOfBounds {
                                    index: iv,
                                    len: elems.len(),
                                });
                            }
                            elems[iv as usize] = v;
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                RInstr::ArrayLen { arr, dst, w } => {
                    tick_n!(*w);
                    let av = rget(&regs, *arr).as_ref_id()?;
                    match self.heap.get(av) {
                        HeapObj::Array { elems } => {
                            rset(&mut regs, *dst, Value::Int(elems.len() as i64));
                        }
                        HeapObj::Object { .. } => {
                            return Err(VmError::TypeError {
                                expected: "array",
                                found: "object",
                            })
                        }
                    }
                }
                RInstr::NewObj {
                    class,
                    nfields,
                    dst,
                    image,
                    w,
                } => {
                    tick_n!(*w);
                    // Root every live register through the real frame,
                    // collect, then pull the stack back (the values stay
                    // in registers).
                    let img = &rt.images[*image as usize];
                    self.materialize(img, &regs);
                    self.maybe_collect();
                    let r = self.heap.alloc_object(*class, *nfields);
                    self.frames
                        .last_mut()
                        .expect("frame exists")
                        .stack
                        .truncate(img.base as usize);
                    rset(&mut regs, *dst, Value::Ref(r));
                }
                RInstr::NewArray { len, dst, image, w } => {
                    tick_n!(*w);
                    // The interpreter pops the length before collecting.
                    let lv = rget(&regs, *len).as_int()?;
                    let img = &rt.images[*image as usize];
                    self.materialize(img, &regs);
                    self.maybe_collect();
                    let r = self.heap.alloc_array(lv)?;
                    self.frames
                        .last_mut()
                        .expect("frame exists")
                        .stack
                        .truncate(img.base as usize);
                    rset(&mut regs, *dst, Value::Ref(r));
                }
                RInstr::GuardCond {
                    kind,
                    a,
                    b,
                    expected_taken,
                    exit,
                    pre,
                } => {
                    tick_n!(*pre);
                    let taken = match kind {
                        CondKind::ICmp(op) => {
                            let vb = rget(&regs, *b).as_int()?;
                            let va = rget(&regs, *a).as_int()?;
                            op.eval_i64(va, vb)
                        }
                        CondKind::IZero(op) => op.eval_i64(rget(&regs, *a).as_int()?, 0),
                        CondKind::FCmp(op) => {
                            let vb = rget(&regs, *b).as_float()?;
                            let va = rget(&regs, *a).as_float()?;
                            op.eval_f64(va, vb)
                        }
                        CondKind::Null => matches!(rget(&regs, *a), Value::Null),
                        CondKind::NonNull => !matches!(rget(&regs, *a), Value::Null),
                    };
                    if taken != *expected_taken {
                        reg_exit!(*exit);
                    }
                    tick_n!(1u32);
                    self.stats.branches += 1;
                    if taken {
                        self.stats.taken_branches += 1;
                    }
                }
                RInstr::GuardSwitch {
                    low,
                    targets,
                    default,
                    expected,
                    selector,
                    exit,
                    pre,
                } => {
                    tick_n!(*pre);
                    let v = rget(&regs, *selector).as_int()?;
                    let idx = v.wrapping_sub(*low);
                    let actual = if idx >= 0 && (idx as usize) < targets.len() {
                        targets[idx as usize]
                    } else {
                        *default
                    };
                    if actual != *expected {
                        reg_exit!(*exit);
                    }
                    tick_n!(1u32);
                    self.stats.branches += 1;
                    self.stats.taken_branches += 1;
                }
                RInstr::EnterStatic {
                    callee,
                    ret,
                    image,
                    w,
                } => {
                    tick_n!(*w);
                    // Arguments cross the real stack: materialize, then
                    // let the frame push consume them.
                    self.materialize(&rt.images[*image as usize], &regs);
                    self.frames.last_mut().expect("frame exists").pc = *ret;
                    if let Err(e) = self.push_call(*callee, 1) {
                        self.stats.instructions += instrs;
                        self.reg_file = regs;
                        return Err(e);
                    }
                }
                RInstr::GuardVirtual {
                    slot,
                    argc: _,
                    recv,
                    expected,
                    ret,
                    exit,
                    pre,
                } => {
                    tick_n!(*pre);
                    let rid = rget(&regs, *recv).as_ref_id()?;
                    let class = match self.heap.get(rid) {
                        HeapObj::Object { class, .. } => *class,
                        HeapObj::Array { .. } => {
                            return Err(VmError::TypeError {
                                expected: "object receiver",
                                found: "array",
                            })
                        }
                    };
                    let callee = self.program.class(class).resolve(*slot);
                    if callee != *expected {
                        reg_exit!(*exit);
                    }
                    tick_n!(1u32);
                    self.stats.virtual_calls += 1;
                    // The exit's image doubles as the call
                    // materialization: both need the full frame.
                    let img_idx = rt.exits[*exit as usize].image;
                    self.materialize(&rt.images[img_idx as usize], &regs);
                    self.frames.last_mut().expect("frame exists").pc = *ret;
                    if let Err(e) = self.push_call(callee, 1) {
                        self.stats.instructions += instrs;
                        self.reg_file = regs;
                        return Err(e);
                    }
                }
                RInstr::RetStatic { w } => {
                    tick_n!(*w);
                    self.stats.returns += 1;
                    // The return value (if any) lives in a register; the
                    // callee frame just goes away.
                    self.frames.pop();
                }
                RInstr::GuardReturn {
                    has_value,
                    retval,
                    expected,
                    exit,
                    pre,
                } => {
                    tick_n!(*pre);
                    if self.frames.len() < 2 {
                        reg_exit!(*exit);
                    }
                    let caller = &self.frames[self.frames.len() - 2];
                    let cont = BlockId::new(
                        caller.func,
                        self.decoded.func(caller.func).block_of[caller.pc as usize],
                    );
                    if cont != *expected {
                        reg_exit!(*exit);
                    }
                    tick_n!(1u32);
                    self.stats.returns += 1;
                    self.frames.pop();
                    if *has_value {
                        let v = rget(&regs, *retval);
                        self.frames.last_mut().expect("caller exists").stack.push(v);
                    }
                }
                RInstr::Finish { op: d, exit, pre } => {
                    tick_n!(*pre);
                    let e = &rt.exits[*exit as usize];
                    self.materialize(&rt.images[e.image as usize], &regs);
                    self.frames.last_mut().expect("frame exists").pc = e.dpc;
                    tick_n!(1u32);
                    self.stats.instructions += instrs;
                    match self.exec(*d) {
                        Err(e) => {
                            self.reg_file = regs;
                            return Err(e);
                        }
                        Ok(Step::Ok) => {}
                        Ok(Step::Finished(v)) => {
                            self.trace_stats.completed += 1;
                            self.trace_stats.blocks_in_completed += rt.src_blocks.len() as u64;
                            self.trace_stats.instrs_in_completed += instrs;
                            self.reg_file = regs;
                            return Ok(TraceRun::Finished(v));
                        }
                    }
                }
            }
        }

        // Trace ran to completion.
        self.trace_stats.completed += 1;
        self.trace_stats.blocks_in_completed += rt.src_blocks.len() as u64;
        self.trace_stats.instrs_in_completed += instrs;
        let last = *rt.src_blocks.last().expect("traces are nonempty");
        self.bcg.set_context(last);
        self.prev_block = Some(last);
        self.reg_file = regs;
        Ok(TraceRun::Completed)
    }

    /// Peeks the operands of a guarded conditional without popping.
    fn eval_cond(&self, kind: CondKind) -> Result<bool, VmError> {
        let f = self.frames.last().expect("frame exists");
        let n = f.stack.len();
        Ok(match kind {
            CondKind::ICmp(op) => {
                let b = f.stack[n - 1].as_int()?;
                let a = f.stack[n - 2].as_int()?;
                op.eval_i64(a, b)
            }
            CondKind::IZero(op) => {
                let a = f.stack[n - 1].as_int()?;
                op.eval_i64(a, 0)
            }
            CondKind::FCmp(op) => {
                let b = f.stack[n - 1].as_float()?;
                let a = f.stack[n - 2].as_float()?;
                op.eval_f64(a, b)
            }
            CondKind::Null => matches!(f.stack[n - 1], Value::Null),
            CondKind::NonNull => !matches!(f.stack[n - 1], Value::Null),
        })
    }

    /// Pops arguments and pushes a callee frame starting at decoded
    /// `start_pc` (0 out of trace — the entry marker fires a dispatch —
    /// or 1 in-trace, where the trace absorbs it); the caller's `pc` must
    /// already point at the continuation.
    fn push_call(&mut self, callee: FuncId, start_pc: u32) -> Result<(), VmError> {
        if self.frames.len() >= self.config.jit.vm.max_frames {
            return Err(VmError::CallStackOverflow);
        }
        self.stats.calls += 1;
        let cf = self.program.function(callee);
        let argc = cf.num_params() as usize;
        let frame = self.frames.last_mut().expect("frame exists");
        let split = frame.stack.len() - argc;
        let mut callee_frame = ExFrame::new(callee, cf.num_locals(), &frame.stack[split..]);
        callee_frame.pc = start_pc;
        frame.stack.truncate(split);
        self.frames.push(callee_frame);
        self.stats.max_frame_depth = self.stats.max_frame_depth.max(self.frames.len());
        Ok(())
    }

    fn maybe_collect(&mut self) {
        if self.heap.should_collect() {
            let TracingVm { heap, frames, .. } = self;
            let roots = frames.iter().flat_map(|f| {
                f.stack
                    .iter()
                    .chain(f.locals.iter())
                    .filter_map(|v| match v {
                        Value::Ref(r) => Some(*r),
                        _ => None,
                    })
            });
            heap.collect(roots);
        }
    }

    /// Executes one decoded instruction with full interpreter semantics.
    /// The caller is responsible for fuel accounting ([`Self::tick`]).
    #[inline(always)]
    fn exec(&mut self, d: DOp) -> Result<Step, VmError> {
        // A fused superinstruction head (see jvm_vm::fuse) is
        // transparently unfused: this single-step path executes the
        // head's original opcode (operands are preserved by the
        // rewrite), and the group's shadow slots still hold the
        // remaining constituents for the following steps.
        let d = if jvm_vm::fuse::is_fused(d.op) {
            DOp::new(jvm_vm::fuse::base_op(d.op), d.a, d.b)
        } else {
            d
        };
        let program = self.program;
        macro_rules! frame {
            () => {
                self.frames.last_mut().expect("frame exists")
            };
        }
        macro_rules! pop {
            ($f:expr) => {
                $f.stack.pop().expect("verified code cannot underflow")
            };
        }
        macro_rules! binop_i {
            ($op:expr) => {{
                let f = frame!();
                let b = pop!(f).as_int()?;
                let a = pop!(f).as_int()?;
                f.stack.push(Value::Int($op(a, b)));
                f.pc += 1;
            }};
        }
        macro_rules! binop_f {
            ($op:expr) => {{
                let f = frame!();
                let b = pop!(f).as_float()?;
                let a = pop!(f).as_float()?;
                f.stack.push(Value::Float($op(a, b)));
                f.pc += 1;
            }};
        }

        match d.op {
            op::ICONST => {
                let v = self.decoded.iconsts[d.b as usize];
                let f = frame!();
                f.stack.push(Value::Int(v));
                f.pc += 1;
            }
            op::FCONST => {
                let v = self.decoded.fconsts[d.b as usize];
                let f = frame!();
                f.stack.push(Value::Float(v));
                f.pc += 1;
            }
            op::CONST_NULL => {
                let f = frame!();
                f.stack.push(Value::Null);
                f.pc += 1;
            }
            op::DUP => {
                let f = frame!();
                let v = *f.stack.last().expect("verified");
                f.stack.push(v);
                f.pc += 1;
            }
            op::DUP2 => {
                let f = frame!();
                let n = f.stack.len();
                let a = f.stack[n - 2];
                let b = f.stack[n - 1];
                f.stack.push(a);
                f.stack.push(b);
                f.pc += 1;
            }
            op::POP => {
                let f = frame!();
                let _ = pop!(f);
                f.pc += 1;
            }
            op::SWAP => {
                let f = frame!();
                let n = f.stack.len();
                f.stack.swap(n - 1, n - 2);
                f.pc += 1;
            }
            op::LOAD => {
                let f = frame!();
                f.stack.push(f.locals[d.a as usize]);
                f.pc += 1;
            }
            op::STORE => {
                let f = frame!();
                let v = pop!(f);
                f.locals[d.a as usize] = v;
                f.pc += 1;
            }
            op::IINC => {
                let f = frame!();
                let v = f.locals[d.a as usize].as_int()?;
                f.locals[d.a as usize] = Value::Int(v.wrapping_add(d.b as i32 as i64));
                f.pc += 1;
            }
            op::IADD => binop_i!(|a: i64, b: i64| a.wrapping_add(b)),
            op::ISUB => binop_i!(|a: i64, b: i64| a.wrapping_sub(b)),
            op::IMUL => binop_i!(|a: i64, b: i64| a.wrapping_mul(b)),
            op::IDIV => {
                let f = frame!();
                let b = pop!(f).as_int()?;
                let a = pop!(f).as_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                f.stack.push(Value::Int(a.wrapping_div(b)));
                f.pc += 1;
            }
            op::IREM => {
                let f = frame!();
                let b = pop!(f).as_int()?;
                let a = pop!(f).as_int()?;
                if b == 0 {
                    return Err(VmError::DivisionByZero);
                }
                f.stack.push(Value::Int(a.wrapping_rem(b)));
                f.pc += 1;
            }
            op::INEG => {
                let f = frame!();
                let a = pop!(f).as_int()?;
                f.stack.push(Value::Int(a.wrapping_neg()));
                f.pc += 1;
            }
            op::ISHL => binop_i!(|a: i64, b: i64| a.wrapping_shl(b as u32 & 63)),
            op::ISHR => binop_i!(|a: i64, b: i64| a.wrapping_shr(b as u32 & 63)),
            op::IUSHR => binop_i!(|a: i64, b: i64| ((a as u64) >> (b as u32 & 63)) as i64),
            op::IAND => binop_i!(|a: i64, b: i64| a & b),
            op::IOR => binop_i!(|a: i64, b: i64| a | b),
            op::IXOR => binop_i!(|a: i64, b: i64| a ^ b),
            op::FADD => binop_f!(|a: f64, b: f64| a + b),
            op::FSUB => binop_f!(|a: f64, b: f64| a - b),
            op::FMUL => binop_f!(|a: f64, b: f64| a * b),
            op::FDIV => binop_f!(|a: f64, b: f64| a / b),
            op::FNEG => {
                let f = frame!();
                let a = pop!(f).as_float()?;
                f.stack.push(Value::Float(-a));
                f.pc += 1;
            }
            op::I2F => {
                let f = frame!();
                let a = pop!(f).as_int()?;
                f.stack.push(Value::Float(a as f64));
                f.pc += 1;
            }
            op::F2I => {
                let f = frame!();
                let a = pop!(f).as_float()?;
                f.stack.push(Value::Int(a as i64));
                f.pc += 1;
            }
            o @ op::IF_ICMP_EQ..=op::IF_ICMP_GE => {
                let f = frame!();
                let b = pop!(f).as_int()?;
                let a = pop!(f).as_int()?;
                self.stats.branches += 1;
                if eval_i_rel(o - op::IF_ICMP_EQ, a, b) {
                    self.stats.taken_branches += 1;
                    frame!().pc = d.b;
                } else {
                    frame!().pc += 1;
                }
            }
            o @ op::IF_I_EQ..=op::IF_I_GE => {
                let f = frame!();
                let a = pop!(f).as_int()?;
                self.stats.branches += 1;
                if eval_i_rel(o - op::IF_I_EQ, a, 0) {
                    self.stats.taken_branches += 1;
                    frame!().pc = d.b;
                } else {
                    frame!().pc += 1;
                }
            }
            o @ op::IF_FCMP_EQ..=op::IF_FCMP_GE => {
                let f = frame!();
                let b = pop!(f).as_float()?;
                let a = pop!(f).as_float()?;
                self.stats.branches += 1;
                if eval_f_rel(o - op::IF_FCMP_EQ, a, b) {
                    self.stats.taken_branches += 1;
                    frame!().pc = d.b;
                } else {
                    frame!().pc += 1;
                }
            }
            op::IF_NULL => {
                let f = frame!();
                let v = pop!(f);
                self.stats.branches += 1;
                if matches!(v, Value::Null) {
                    self.stats.taken_branches += 1;
                    frame!().pc = d.b;
                } else {
                    frame!().pc += 1;
                }
            }
            op::IF_NON_NULL => {
                let f = frame!();
                let v = pop!(f);
                self.stats.branches += 1;
                if !matches!(v, Value::Null) {
                    self.stats.taken_branches += 1;
                    frame!().pc = d.b;
                } else {
                    frame!().pc += 1;
                }
            }
            op::GOTO => {
                frame!().pc = d.b;
            }
            op::TABLE_SWITCH => {
                let f = frame!();
                let v = pop!(f).as_int()?;
                self.stats.branches += 1;
                self.stats.taken_branches += 1;
                let sw = &self.decoded.switches[d.b as usize];
                let idx = v.wrapping_sub(sw.low);
                let target = if idx >= 0 && (idx as usize) < sw.targets.len() {
                    sw.targets[idx as usize]
                } else {
                    sw.default
                };
                frame!().pc = target;
            }
            op::INVOKE_STATIC => {
                frame!().pc += 1;
                self.push_call(FuncId(d.b), 0)?;
            }
            op::INVOKE_VIRTUAL => {
                let f = frame!();
                let recv_idx = f.stack.len() - d.b as usize;
                let recv = f.stack[recv_idx].as_ref_id()?;
                let class = match self.heap.get(recv) {
                    HeapObj::Object { class, .. } => *class,
                    HeapObj::Array { .. } => {
                        return Err(VmError::TypeError {
                            expected: "object receiver",
                            found: "array",
                        })
                    }
                };
                let callee = program.class(class).resolve(d.a);
                self.stats.virtual_calls += 1;
                frame!().pc += 1;
                self.push_call(callee, 0)?;
            }
            op::RETURN => {
                let f = frame!();
                let v = pop!(f);
                self.stats.returns += 1;
                self.frames.pop();
                match self.frames.last_mut() {
                    None => return Ok(Step::Finished(Some(v))),
                    Some(caller) => caller.stack.push(v),
                }
            }
            op::RETURN_VOID => {
                self.stats.returns += 1;
                self.frames.pop();
                if self.frames.is_empty() {
                    return Ok(Step::Finished(None));
                }
            }
            op::NEW => {
                self.maybe_collect();
                let r = self.heap.alloc_object(ClassId(d.b), d.a);
                let f = frame!();
                f.stack.push(Value::Ref(r));
                f.pc += 1;
            }
            op::GET_FIELD => {
                let f = frame!();
                let obj = pop!(f).as_ref_id()?;
                match self.heap.get(obj) {
                    HeapObj::Object { fields, .. } => {
                        let v = *fields.get(d.a as usize).ok_or(VmError::BadField {
                            field: d.a,
                            num_fields: fields.len() as u16,
                        })?;
                        let f = frame!();
                        f.stack.push(v);
                        f.pc += 1;
                    }
                    HeapObj::Array { .. } => {
                        return Err(VmError::TypeError {
                            expected: "object",
                            found: "array",
                        })
                    }
                }
            }
            op::PUT_FIELD => {
                let f = frame!();
                let v = pop!(f);
                let obj = pop!(f).as_ref_id()?;
                f.pc += 1;
                match self.heap.get_mut(obj) {
                    HeapObj::Object { fields, .. } => {
                        let len = fields.len();
                        *fields.get_mut(d.a as usize).ok_or(VmError::BadField {
                            field: d.a,
                            num_fields: len as u16,
                        })? = v;
                    }
                    HeapObj::Array { .. } => {
                        return Err(VmError::TypeError {
                            expected: "object",
                            found: "array",
                        })
                    }
                }
            }
            op::NEW_ARRAY => {
                let f = frame!();
                let len = pop!(f).as_int()?;
                self.maybe_collect();
                let r = self.heap.alloc_array(len)?;
                let f = frame!();
                f.stack.push(Value::Ref(r));
                f.pc += 1;
            }
            op::ALOAD => {
                let f = frame!();
                let idx = pop!(f).as_int()?;
                let arr = pop!(f).as_ref_id()?;
                match self.heap.get(arr) {
                    HeapObj::Array { elems } => {
                        if idx < 0 || idx as usize >= elems.len() {
                            return Err(VmError::IndexOutOfBounds {
                                index: idx,
                                len: elems.len(),
                            });
                        }
                        let v = elems[idx as usize];
                        let f = frame!();
                        f.stack.push(v);
                        f.pc += 1;
                    }
                    HeapObj::Object { .. } => {
                        return Err(VmError::TypeError {
                            expected: "array",
                            found: "object",
                        })
                    }
                }
            }
            op::ASTORE => {
                let f = frame!();
                let v = pop!(f);
                let idx = pop!(f).as_int()?;
                let arr = pop!(f).as_ref_id()?;
                f.pc += 1;
                match self.heap.get_mut(arr) {
                    HeapObj::Array { elems } => {
                        if idx < 0 || idx as usize >= elems.len() {
                            return Err(VmError::IndexOutOfBounds {
                                index: idx,
                                len: elems.len(),
                            });
                        }
                        elems[idx as usize] = v;
                    }
                    HeapObj::Object { .. } => {
                        return Err(VmError::TypeError {
                            expected: "array",
                            found: "object",
                        })
                    }
                }
            }
            op::ARRAY_LEN => {
                let f = frame!();
                let arr = pop!(f).as_ref_id()?;
                match self.heap.get(arr) {
                    HeapObj::Array { elems } => {
                        let len = elems.len() as i64;
                        let f = frame!();
                        f.stack.push(Value::Int(len));
                        f.pc += 1;
                    }
                    HeapObj::Object { .. } => {
                        return Err(VmError::TypeError {
                            expected: "array",
                            found: "object",
                        })
                    }
                }
            }
            o @ op::SQRT..=op::CHECKSUM => {
                self.exec_intrinsic(INTRINSIC_ORDER[(o - op::SQRT) as usize])?
            }
            op::NOP => {
                frame!().pc += 1;
            }
            other => unreachable!("corrupt decoded stream: opcode {other}"),
        }
        Ok(Step::Ok)
    }

    fn exec_intrinsic(&mut self, i: Intrinsic) -> Result<(), VmError> {
        let capture = self.config.jit.vm.capture_output;
        let f = self.frames.last_mut().expect("frame exists");
        macro_rules! popv {
            () => {
                f.stack.pop().expect("verified code cannot underflow")
            };
        }
        match i {
            Intrinsic::Sqrt => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.sqrt()));
            }
            Intrinsic::Sin => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.sin()));
            }
            Intrinsic::Cos => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.cos()));
            }
            Intrinsic::Exp => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.exp()));
            }
            Intrinsic::Log => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.ln()));
            }
            Intrinsic::AbsF => {
                let v = popv!().as_float()?;
                f.stack.push(Value::Float(v.abs()));
            }
            Intrinsic::AbsI => {
                let v = popv!().as_int()?;
                f.stack.push(Value::Int(v.wrapping_abs()));
            }
            Intrinsic::MinI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                f.stack.push(Value::Int(a.min(b)));
            }
            Intrinsic::MaxI => {
                let b = popv!().as_int()?;
                let a = popv!().as_int()?;
                f.stack.push(Value::Int(a.max(b)));
            }
            Intrinsic::PrintInt => {
                let v = popv!().as_int()?;
                if capture {
                    self.output.push(OutputItem::Int(v));
                }
            }
            Intrinsic::PrintFloat => {
                let v = popv!().as_float()?;
                if capture {
                    self.output.push(OutputItem::Float(v));
                }
            }
            Intrinsic::Checksum => {
                let v = popv!().as_int()?;
                self.checksum = fold_checksum(self.checksum, v);
            }
        }
        self.frames.last_mut().expect("frame exists").pc += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, ProgramBuilder};
    use jvm_vm::{NullObserver, Vm};

    fn loop_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        pb.build(f).unwrap()
    }

    #[test]
    fn engine_matches_interpreter_on_hot_loop() {
        let program = loop_program();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(20_000)], &mut NullObserver).unwrap();

        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(20_000)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        assert!(engine.compiled_count() > 0, "traces must actually compile");
        assert!(report.traces.entered > 0);
        assert!(report.traces.completed > 0);
    }

    #[test]
    fn engine_dispatches_far_less_than_interpreter() {
        let program = loop_program();
        let mut plain = Vm::new(&program);
        plain.run(&[Value::Int(20_000)], &mut NullObserver).unwrap();

        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(20_000)]).unwrap();
        assert!(
            report.exec.block_dispatches * 2 < plain.stats().block_dispatches,
            "engine {} vs interpreter {}",
            report.exec.block_dispatches,
            plain.stats().block_dispatches
        );
    }

    #[test]
    fn side_exits_preserve_semantics() {
        // A loop whose branch flips behaviour part-way: traces built in
        // phase 1 must side-exit cleanly in phase 2.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        let second = b.new_label();
        let cont = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        // if i < 5000: acc += 1 else acc += 2  (phase change at 5000)
        b.load(0).iconst(5000).if_icmp(CmpOp::Lt, second);
        b.load(acc).iconst(2).iadd().store(acc).goto(cont);
        b.bind(second);
        b.load(acc).iconst(1).iadd().store(acc);
        b.bind(cont);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let program = pb.build(f).unwrap();

        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(10_000)], &mut NullObserver).unwrap();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(10_000)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        assert!(
            report.traces.exited_early > 0,
            "phase change must cause side exits"
        );
    }

    #[test]
    fn optimizer_reduces_executed_instructions() {
        // A hot loop with foldable constant arithmetic in the body.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        // acc += (3*4) + i*1 + 0   — plenty to fold.
        b.load(acc)
            .iconst(3)
            .iconst(4)
            .imul()
            .iadd()
            .load(0)
            .iconst(1)
            .imul()
            .iadd()
            .iconst(0)
            .iadd()
            .store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        let program = pb.build(f).unwrap();

        let mut base = TracingVm::new(&program, EngineConfig::paper_default());
        let r0 = base.run(&[Value::Int(20_000)]).unwrap();
        let mut opt = TracingVm::new(&program, EngineConfig::paper_default().with_optimizer(true));
        let r1 = opt.run(&[Value::Int(20_000)]).unwrap();

        assert_eq!(r0.result, r1.result, "optimizer must preserve semantics");
        assert!(
            r1.exec.instructions < r0.exec.instructions,
            "optimized {} vs baseline {}",
            r1.exec.instructions,
            r0.exec.instructions
        );
        let s = opt.opt_stats();
        assert!(s.folds + s.identities + s.eliminations + s.reductions > 0);
        assert!(s.savings() > 0.0);
    }

    #[test]
    fn engine_handles_calls_and_virtual_dispatch() {
        let mut pb = ProgramBuilder::new();
        let am = pb.declare_function("A.step", 2, true);
        pb.function_mut(am).load(1).iconst(1).iadd().ret();
        let bm = pb.declare_function("B.step", 2, true);
        pb.function_mut(bm).load(1).iconst(2).iadd().ret();
        let f = pb.declare_function("main", 1, true);
        let a = pb.declare_class("A", None, 0);
        let slot = pb.add_method(a, am);
        let bclass = pb.declare_class("B", Some(a), 0);
        pb.override_method(bclass, slot, bm);
        {
            let b = pb.function_mut(f);
            let acc = b.alloc_local();
            let obj = b.alloc_local();
            b.new_obj(a).store(obj);
            b.iconst(0).store(acc);
            let head = b.bind_new_label();
            let exit = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            b.load(obj).load(acc).invoke_virtual(slot, 2).store(acc);
            b.iinc(0, -1).goto(head);
            b.bind(exit);
            b.load(acc).ret();
        }
        let program = pb.build(f).unwrap();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(10_000)], &mut NullObserver).unwrap();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(10_000)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        assert!(report.traces.completed > 0, "call-crossing traces must run");
    }

    #[test]
    fn engine_is_reusable_and_warm_cache_helps() {
        let program = loop_program();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let r1 = engine.run(&[Value::Int(5_000)]).unwrap();
        let r2 = engine.run(&[Value::Int(5_000)]).unwrap();
        assert_eq!(r1.result, r2.result);
        // Second run starts with a warm cache: at least as many trace
        // entries in the same instruction budget.
        assert!(r2.traces.entered >= r1.traces.entered);
    }

    #[test]
    fn switch_guards_pass_and_side_exit() {
        // A loop whose switch selector is 2 for the first phase and 0 for
        // the second: traces learn the first arm, then must side-exit.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let acc = b.alloc_local();
            b.iconst(0).store(acc);
            let head = b.bind_new_label();
            let exit = b.new_label();
            let c0 = b.new_label();
            let c1 = b.new_label();
            let c2 = b.new_label();
            let cont = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            // selector = (i >= 5000) ? 2 : 0
            let hi = b.new_label();
            let sw = b.new_label();
            b.load(0).iconst(5000).if_icmp(CmpOp::Ge, hi);
            b.iconst(0).goto(sw);
            b.bind(hi);
            b.iconst(2);
            b.bind(sw);
            b.table_switch(0, &[c0, c1, c2], c1);
            b.bind(c0);
            b.load(acc).iconst(1).iadd().store(acc).goto(cont);
            b.bind(c1);
            b.load(acc).iconst(10).iadd().store(acc).goto(cont);
            b.bind(c2);
            b.load(acc).iconst(100).iadd().store(acc);
            b.bind(cont);
            b.iinc(0, -1).goto(head);
            b.bind(exit);
            b.load(acc).ret();
        }
        let program = pb.build(f).unwrap();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(10_000)], &mut NullObserver).unwrap();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(10_000)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
        assert!(report.traces.completed > 0, "switch traces must complete");
        assert!(
            report.traces.exited_early > 0,
            "selector phase change must side-exit a switch guard"
        );
    }

    #[test]
    fn virtual_guard_side_exits_on_megamorphic_site() {
        // Receiver class alternates every iteration: a trace recorded for
        // one class must side-exit when the other arrives.
        let mut pb = ProgramBuilder::new();
        let am = pb.declare_function("A.v", 1, true);
        pb.function_mut(am).iconst(1).ret();
        let bm = pb.declare_function("B.v", 1, true);
        pb.function_mut(bm).iconst(2).ret();
        let f = pb.declare_function("main", 1, true);
        let a = pb.declare_class("A", None, 0);
        let slot = pb.add_method(a, am);
        let bc = pb.declare_class("B", Some(a), 0);
        pb.override_method(bc, slot, bm);
        {
            let b = pb.function_mut(f);
            let acc = b.alloc_local();
            let oa = b.alloc_local();
            let ob = b.alloc_local();
            b.new_obj(a).store(oa);
            b.new_obj(bc).store(ob);
            b.iconst(0).store(acc);
            let head = b.bind_new_label();
            let exit = b.new_label();
            let use_b = b.new_label();
            let call = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            b.load(0).iconst(1).iand().if_i(CmpOp::Ne, use_b);
            b.load(oa).goto(call);
            b.bind(use_b);
            b.load(ob);
            b.bind(call);
            b.invoke_virtual(slot, 1).load(acc).iadd().store(acc);
            b.iinc(0, -1).goto(head);
            b.bind(exit);
            b.load(acc).ret();
        }
        let program = pb.build(f).unwrap();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(5_000)], &mut NullObserver).unwrap();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        let report = engine.run(&[Value::Int(5_000)]).unwrap();
        assert_eq!(report.result, want);
        assert_eq!(report.exec.instructions, plain.stats().instructions);
    }

    #[test]
    fn runtime_traps_inside_traces_propagate() {
        // Division by a loop-carried value that reaches zero: the trap
        // fires inside a hot (traced) loop and must surface identically.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let acc = b.alloc_local();
            b.iconst(0).store(acc);
            let head = b.bind_new_label();
            let exit = b.new_label();
            b.load(0).iconst(-5000).if_icmp(CmpOp::Le, exit);
            b.load(acc).iconst(1000).load(0).idiv().iadd().store(acc);
            b.iinc(0, -1).goto(head);
            b.bind(exit);
            b.load(acc).ret();
        }
        let program = pb.build(f).unwrap();
        let mut plain = Vm::new(&program);
        let want = plain.run(&[Value::Int(10_000)], &mut NullObserver);
        assert_eq!(want, Err(VmError::DivisionByZero));
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        assert_eq!(
            engine.run(&[Value::Int(10_000)]),
            Err(VmError::DivisionByZero)
        );
    }

    #[test]
    fn print_output_matches_interpreter_through_traces() {
        // Prints inside a hot (traced) loop must appear identically, in
        // order, from the engine's intrinsic handling.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, false);
        {
            let b = pb.function_mut(f);
            let head = b.bind_new_label();
            let exit = b.new_label();
            b.load(0).if_i(CmpOp::Le, exit);
            b.load(0).intrinsic(jvm_bytecode::Intrinsic::PrintInt);
            b.iinc(0, -1).goto(head);
            b.bind(exit);
            b.ret_void();
        }
        let program = pb.build(f).unwrap();
        let mut plain = Vm::new(&program);
        plain.run(&[Value::Int(500)], &mut NullObserver).unwrap();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        engine.run(&[Value::Int(500)]).unwrap();
        assert_eq!(engine.output(), plain.output());
        assert_eq!(engine.output().len(), 500);
    }

    #[test]
    fn fuel_limit_applies_inside_traces() {
        let program = loop_program();
        let mut cfg = EngineConfig::paper_default();
        cfg.jit.vm.max_steps = 50_000;
        let mut engine = TracingVm::new(&program, cfg);
        assert_eq!(
            engine.run(&[Value::Int(1_000_000)]),
            Err(VmError::OutOfFuel)
        );
    }

    #[test]
    fn lowered_traces_report_memory_and_share_pools() {
        let program = loop_program();
        let mut engine = TracingVm::new(&program, EngineConfig::paper_default());
        engine.run(&[Value::Int(20_000)]).unwrap();
        assert!(engine.compiled_count() > 0);
        assert!(engine.lowered_memory() > 0);
        // Trace lowering reuses the program pools; the tiny loop adds no
        // novel constants without the optimizer.
        assert!(engine.decoded().iconsts.len() < 16);
    }

    #[test]
    fn warm_boot_prebuilds_and_preserves_semantics() {
        let program = loop_program();
        let mut warm = TracingVm::new(&program, EngineConfig::paper_default());
        let want = warm.run(&[Value::Int(20_000)]).unwrap();
        assert!(warm.compiled_count() > 0);
        let bytes = warm.snapshot();

        let mut booted = TracingVm::new(&program, EngineConfig::paper_default());
        let report = booted.load_snapshot(&bytes).unwrap();
        assert!(report.nodes_created > 0, "fresh VM: every node is new");
        assert_eq!(report.nodes_merged, 0);
        assert!(report.links_installed > 0);
        assert!(
            report.artifacts_prebuilt > 0,
            "restored traces must pre-lower against the frozen decoded program"
        );
        let got = booted.run(&[Value::Int(20_000)]).unwrap();
        assert_eq!(got.result, want.result);
        assert_eq!(got.checksum, want.checksum);
        assert_eq!(got.exec.instructions, want.exec.instructions);
        // The warm boot pays measurably less warm-up: its first trace
        // entry lands earlier in the dispatch stream than cold start's.
        assert!(got.traces.first_entry_dispatch > 0);
        assert!(
            got.traces.first_entry_dispatch < want.traces.first_entry_dispatch,
            "warm {} vs cold {}",
            got.traces.first_entry_dispatch,
            want.traces.first_entry_dispatch
        );
        // A snapshot of a freshly booted VM round-trips canonically:
        // boot → snapshot → boot → snapshot is byte-identical.
        let mut v1 = TracingVm::new(&program, EngineConfig::paper_default());
        v1.load_snapshot(&bytes).unwrap();
        let rebytes = v1.snapshot();
        let mut v2 = TracingVm::new(&program, EngineConfig::paper_default());
        v2.load_snapshot(&rebytes).unwrap();
        assert_eq!(rebytes, v2.snapshot());
    }

    #[test]
    fn aot_replay_rebuilds_traces_through_the_constructor() {
        let program = loop_program();
        let mut warm = TracingVm::new(&program, EngineConfig::paper_default());
        let want = warm.run(&[Value::Int(20_000)]).unwrap();
        let bytes = warm.snapshot();

        let mut aot = TracingVm::new(&program, EngineConfig::paper_default());
        let report = aot.aot_replay(&bytes).unwrap();
        assert!(
            report.traces_installed > 0,
            "constructor replay must re-admit traces from the merged profile"
        );
        assert!(report.links_installed > 0);
        assert!(report.artifacts_prebuilt > 0);
        let got = aot.run(&[Value::Int(20_000)]).unwrap();
        assert_eq!(got.result, want.result);
        assert_eq!(got.checksum, want.checksum);
        assert_eq!(got.exec.instructions, want.exec.instructions);
        assert!(got.traces.first_entry_dispatch < want.traces.first_entry_dispatch);
    }

    #[test]
    fn stale_and_corrupt_snapshots_are_rejected_without_state_change() {
        let program = loop_program();
        let mut warm = TracingVm::new(&program, EngineConfig::paper_default());
        warm.run(&[Value::Int(20_000)]).unwrap();
        let bytes = warm.snapshot();

        // Same shape, different constant: a different program hash.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        let b = pb.function_mut(f);
        b.iconst(42).ret();
        let other = pb.build(f).unwrap();
        let mut vm = TracingVm::new(&other, EngineConfig::paper_default());
        assert!(matches!(
            vm.load_snapshot(&bytes),
            Err(SnapshotError::StaleProgram { .. })
        ));
        assert_eq!(vm.cache().trace_count(), 0);

        // A flipped payload byte fails the section CRC and leaves the
        // target untouched.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        let mut vm = TracingVm::new(&program, EngineConfig::paper_default());
        assert!(vm.load_snapshot(&corrupt).is_err());
        assert_eq!(vm.cache().trace_count(), 0);
        assert_eq!(vm.compiled_count(), 0);
    }
}

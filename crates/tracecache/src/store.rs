//! The engine-facing cache-policy trait.
//!
//! [`TraceCache`](crate::TraceCache) (single-owner) and
//! [`SharedTraceCache`](crate::SharedTraceCache) (lock-striped,
//! multi-VM) grew identical policy surfaces — dispatch lookup,
//! quarantine, and now trace health — that the engine used to select
//! between with `match &self.shared` at every policy site. `TraceStore`
//! writes each policy **once**: the executor holds `&mut dyn
//! TraceStore` and admission/eviction/quarantine/health behave
//! identically whether the cache is private or shared.
//!
//! The health side of the trait is deliberately split into *decide*
//! ([`TraceStore::epoch_demotions`], pure ledger math) and *apply*
//! ([`run_health_epoch`], which routes every demotion through the same
//! [`TraceStore::quarantine`] the fast-trigger path uses) so the
//! demotion ladder cannot diverge between cache implementations.

use std::sync::Arc;

use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx};

use crate::cache::TraceCache;
use crate::health::{Demotion, HealthStats, OutcomeRecord, TraceHealth};
use crate::shared::SharedTraceCache;
use crate::trace::TraceId;

/// The unified cache policy surface the execution engine dispatches
/// through. Object-safe; the engine holds `&mut dyn TraceStore`.
///
/// Methods take `&mut self` uniformly — the shared implementation (on
/// `Arc<SharedTraceCache<A>>`) forwards to its interior-mutability
/// `&self` API, so the receiver choice costs nothing there.
pub trait TraceStore {
    /// The trace linked at an entry branch, if any (the dispatch check
    /// performed when the interpreter takes a branch).
    fn lookup_entry(&self, entry: Branch) -> Option<TraceId>;

    /// The dispatch check via a BCG node's inline trace-link slot (the
    /// version-stamped fast path; see the cache docs).
    fn lookup_entry_cached(
        &mut self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId>;

    /// Tombstones the trace linked at `entry`, removes all of its
    /// links, and blacklists the `(entry, path)` key for `cooldown`
    /// refused construction attempts.
    fn quarantine(&mut self, entry: Branch, cooldown: u32) -> Option<TraceId>;

    /// Ingests a batch of dispatch outcomes into the health ledger.
    fn record_outcomes(&mut self, batch: &[OutcomeRecord]);

    /// Ingests a run-length-encoded batch: each `(record, n)` entry
    /// stands for `n` identical consecutive outcomes. The executor's
    /// hot loop produces long runs of identical outcomes, so this is
    /// the cheap flush path (one ledger lookup per run, not per
    /// dispatch).
    fn record_outcome_runs(&mut self, runs: &[(OutcomeRecord, u64)]);

    /// Closes the health epoch and returns the demotion decisions (in
    /// trace-id order). Callers apply them via [`run_health_epoch`] —
    /// this method only does the ledger math.
    fn epoch_demotions(&mut self) -> Vec<Demotion>;

    /// Health ledger counters.
    fn health_stats(&self) -> HealthStats;

    /// Health telemetry for one tracked trace (a snapshot — the shared
    /// cache clones it out from under its lock).
    fn trace_health(&self, tid: TraceId) -> Option<TraceHealth>;
}

/// Runs one health epoch against a store: fetches the ledger's demotion
/// decisions and applies each through the store's own quarantine — the
/// single policy path shared by both cache implementations. A decision
/// is skipped (not an error) when the entry has been relinked to a
/// *different* trace since the outcomes were recorded: demoting the
/// newcomer on the old trace's evidence would be wrong. Returns the
/// number of demotions applied.
pub fn run_health_epoch(store: &mut dyn TraceStore) -> u32 {
    let mut applied = 0;
    for d in store.epoch_demotions() {
        if store.lookup_entry(d.entry) == Some(d.tid)
            && store.quarantine(d.entry, d.cooldown).is_some()
        {
            applied += 1;
        }
    }
    applied
}

impl TraceStore for TraceCache {
    fn lookup_entry(&self, entry: Branch) -> Option<TraceId> {
        TraceCache::lookup_entry(self, entry)
    }

    fn lookup_entry_cached(
        &mut self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId> {
        TraceCache::lookup_entry_cached(self, bcg, node)
    }

    fn quarantine(&mut self, entry: Branch, cooldown: u32) -> Option<TraceId> {
        TraceCache::quarantine(self, entry, cooldown)
    }

    fn record_outcomes(&mut self, batch: &[OutcomeRecord]) {
        for rec in batch {
            self.health_mut().record(rec);
        }
    }

    fn record_outcome_runs(&mut self, runs: &[(OutcomeRecord, u64)]) {
        for (rec, n) in runs {
            self.health_mut().record_run(rec, *n);
        }
    }

    fn epoch_demotions(&mut self) -> Vec<Demotion> {
        self.health_mut().epoch()
    }

    fn health_stats(&self) -> HealthStats {
        self.health().stats()
    }

    fn trace_health(&self, tid: TraceId) -> Option<TraceHealth> {
        self.health().health_of(tid).cloned()
    }
}

impl<A> TraceStore for Arc<SharedTraceCache<A>> {
    fn lookup_entry(&self, entry: Branch) -> Option<TraceId> {
        SharedTraceCache::lookup_entry(self, entry)
    }

    fn lookup_entry_cached(
        &mut self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId> {
        SharedTraceCache::lookup_entry_cached(self, bcg, node)
    }

    fn quarantine(&mut self, entry: Branch, cooldown: u32) -> Option<TraceId> {
        SharedTraceCache::quarantine(self, entry, cooldown)
    }

    fn record_outcomes(&mut self, batch: &[OutcomeRecord]) {
        SharedTraceCache::record_outcomes(self, batch)
    }

    fn record_outcome_runs(&mut self, runs: &[(OutcomeRecord, u64)]) {
        SharedTraceCache::record_outcome_runs(self, runs)
    }

    fn epoch_demotions(&mut self) -> Vec<Demotion> {
        SharedTraceCache::epoch_demotions(self)
    }

    fn health_stats(&self) -> HealthStats {
        SharedTraceCache::health_stats(self)
    }

    fn trace_health(&self, tid: TraceId) -> Option<TraceHealth> {
        SharedTraceCache::trace_health(self, tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthPolicy, TraceOutcome};
    use jvm_bytecode::{BlockId, FuncId};

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    /// Feeds `n` outcomes for `tid` at `entry` through the trait.
    fn feed(
        store: &mut (impl TraceStore + ?Sized),
        tid: TraceId,
        entry: Branch,
        outcome: TraceOutcome,
        n: u32,
    ) {
        let batch: Vec<OutcomeRecord> = (0..n)
            .map(|_| OutcomeRecord {
                tid,
                entry,
                outcome,
            })
            .collect();
        store.record_outcomes(&batch);
    }

    /// The demotion ladder, driven through the trait — the same body
    /// runs against both cache implementations; only the constructor
    /// entry point (`insert`) is implementation-specific.
    fn ladder_demotes_and_cooldown_readmits<S: TraceStore>(
        store: &mut S,
        insert: impl Fn(&mut S, Branch, Vec<BlockId>) -> Result<TraceId, u32>,
    ) {
        let entry = (blk(0), blk(1));
        let path = vec![blk(1), blk(2)];
        let tid = insert(store, entry, path.clone()).expect("fresh insert");
        assert_eq!(store.lookup_entry(entry), Some(tid));

        // Two unhealthy epochs walk healthy → probation → demoted.
        feed(store, tid, entry, TraceOutcome::SideExit { site: 1 }, 14);
        feed(store, tid, entry, TraceOutcome::Completed, 2);
        assert_eq!(run_health_epoch(store), 0, "first bad epoch: probation");
        assert_eq!(store.lookup_entry(entry), Some(tid));
        feed(store, tid, entry, TraceOutcome::SideExit { site: 1 }, 14);
        feed(store, tid, entry, TraceOutcome::Completed, 2);
        assert_eq!(run_health_epoch(store), 1, "second bad epoch: demoted");
        assert_eq!(store.lookup_entry(entry), None, "demotion unlinks");
        let s = store.health_stats();
        assert_eq!(s.demotions, 1);
        assert_eq!(s.probations, 1);

        // Cooldown: the exact (entry, path) is refused `cooldown` times,
        // then re-admitted through the normal constructor path.
        let base = HealthPolicy::default().cooldown;
        for i in 0..base {
            let left = insert(store, entry, path.clone())
                .expect_err(&format!("attempt {i} must be refused"));
            assert_eq!(left, base - 1 - i);
        }
        let readmitted = insert(store, entry, path.clone()).expect("post-cooldown re-admission");
        assert_ne!(readmitted, tid, "re-admission mints a fresh id");
        assert_eq!(store.lookup_entry(entry), Some(readmitted));
        // Hysteresis: the re-admitted trace starts on probation, so one
        // more unhealthy epoch demotes it — with an escalated cooldown.
        assert_eq!(store.health_stats().readmitted_watched, 1);
        feed(
            store,
            readmitted,
            entry,
            TraceOutcome::SideExit { site: 1 },
            14,
        );
        feed(store, readmitted, entry, TraceOutcome::Completed, 2);
        assert_eq!(run_health_epoch(store), 1, "probation start ⇒ one epoch");
        let mut refusals = 0;
        while insert(store, entry, path.clone()).is_err() {
            refusals += 1;
            assert!(refusals < 100, "cooldown must decay");
        }
        assert_eq!(refusals, base << 1, "second flap doubles the cooldown");
    }

    #[test]
    fn private_cache_ladder_via_trait() {
        let mut cache = TraceCache::new();
        ladder_demotes_and_cooldown_readmits(&mut cache, |cache: &mut TraceCache, entry, path| {
            match cache.try_insert_and_link(entry, path, 0.99) {
                Ok((id, _)) => Ok(id),
                Err(crate::TraceCacheError::Quarantined { remaining, .. }) => Err(remaining),
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        });
    }

    #[test]
    fn shared_cache_ladder_via_trait() {
        let mut cache: Arc<SharedTraceCache<()>> = Arc::new(SharedTraceCache::new());
        ladder_demotes_and_cooldown_readmits(
            &mut cache,
            |shared: &mut Arc<SharedTraceCache<()>>, entry, path| match shared
                .try_insert_and_link(entry, path, 0.99)
            {
                Ok((id, _)) => Ok(id),
                Err(crate::TraceCacheError::Quarantined { remaining, .. }) => Err(remaining),
                Err(e) => panic!("unexpected error: {e:?}"),
            },
        );
    }

    #[test]
    fn stale_demotion_spares_a_relinked_entry() {
        let mut cache = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (old, _) = cache.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        // The old trace earns a streak demotion...
        feed(
            &mut cache,
            old,
            entry,
            TraceOutcome::SideExit { site: 0 },
            16,
        );
        // ...but the constructor relinks the entry to a new trace first.
        let (new, _) = cache.insert_and_link(entry, vec![blk(1), blk(3)], 0.99);
        assert_ne!(old, new);
        assert_eq!(run_health_epoch(&mut cache), 0, "stale decision skipped");
        assert_eq!(
            TraceStore::lookup_entry(&cache, entry),
            Some(new),
            "the newcomer survives the old trace's evidence"
        );
        assert_eq!(cache.iter_quarantine().count(), 0);
    }
}

//! Signal-driven trace construction (§4.2 of the paper).
//!
//! When the profiler reports that a branch's state or predicted successor
//! changed, the constructor:
//!
//! 1. **finds affected entry points** by back-tracking the BCG from the
//!    changed node along strongly-correlated predecessor edges (a
//!    predecessor belongs to the same trace region if it is
//!    `Strong`/`Unique` and its maximum-likelihood successor is the
//!    current node);
//! 2. **walks the maximum-likelihood path** forward from each entry point
//!    until it meets a node already on the path (a loop — unrolled once)
//!    or a non-traceable node;
//! 3. **cuts the path into traces** whose cumulative completion
//!    probability (the product of the branch correlations along the
//!    chain, §3.7) stays at or above the threshold, hash-consing each
//!    into the [`TraceCache`] and linking it at its entry branch.
//!
//! Finally every node touched is stamped with the constructor's generation
//! counter so that the remaining signals of the same batch don't trigger
//! redundant reconstructions ("to prevent cascades of state changes",
//! §4.2).

use std::collections::{HashMap, HashSet};

use jvm_bytecode::BlockId;
use trace_bcg::{BranchCorrelationGraph, NodeIdx, Signal};

use crate::cache::TraceCache;

/// Tunables of the trace constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstructorConfig {
    /// Minimum cumulative completion probability of an emitted trace; use
    /// the same value as [`trace_bcg::BcgConfig::threshold`].
    pub threshold: f64,
    /// Hard cap on blocks per trace.
    pub max_trace_blocks: usize,
    /// Hard cap on nodes visited during one forward path walk.
    pub max_path_nodes: usize,
    /// Hard cap on entry points processed per signal.
    pub max_entry_points: usize,
    /// Traces shorter than this many blocks are not worth caching (a
    /// one-block trace is just ordinary block dispatch).
    pub min_trace_blocks: usize,
    /// How many *extra* copies of a terminating loop's body are appended
    /// when the path ends in a loop. The paper unrolls once (`1`); larger
    /// values generalise the rule (an ablation knob — longer loop traces
    /// at the cost of more partial executions when iteration counts are
    /// low). Still subject to `threshold` and `max_trace_blocks`.
    pub loop_unroll: usize,
}

impl ConstructorConfig {
    /// Defaults matching the paper's 97% threshold.
    pub fn paper_default() -> Self {
        ConstructorConfig {
            threshold: 0.97,
            max_trace_blocks: 64,
            max_path_nodes: 256,
            max_entry_points: 32,
            min_trace_blocks: 2,
            loop_unroll: 1,
        }
    }

    /// Returns this configuration with a different completion threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }
}

impl Default for ConstructorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Counters describing constructor activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstructorStats {
    /// Signals that triggered reconstruction work.
    pub signals_handled: u64,
    /// Signals skipped because their node was already brought up to date
    /// earlier in the same batch (cascade suppression).
    pub signals_suppressed: u64,
    /// Entry points discovered by back-tracking.
    pub entry_points: u64,
    /// Forward path walks performed.
    pub paths_walked: u64,
    /// Loops detected and unrolled once.
    pub loops_unrolled: u64,
    /// Entry links written (new or re-linked).
    pub links_written: u64,
    /// New trace objects constructed.
    pub traces_created: u64,
    /// Entry links removed because the graph no longer supports a trace
    /// there.
    pub links_removed: u64,
    /// Install ops refused by the cache's quarantine blacklist (the
    /// faulting `(entry, path)` key is still cooling down).
    pub links_quarantine_rejected: u64,
}

/// The trace constructor. Owns no graph or cache — it is driven with
/// borrowed access so the integrated VM can keep profiler, constructor
/// and cache as independent components.
///
/// ```
/// use jvm_bytecode::{BlockId, FuncId};
/// use trace_bcg::{BcgConfig, BranchCorrelationGraph};
/// use trace_cache::{ConstructorConfig, TraceCache, TraceConstructor};
///
/// let mut bcg = BranchCorrelationGraph::new(BcgConfig::default().with_start_delay(4));
/// let mut cache = TraceCache::new();
/// let mut ctor = TraceConstructor::new(ConstructorConfig::default());
/// // Drive the profiler with a hot three-block loop; react to signals.
/// let b = |i| BlockId::new(FuncId(0), i);
/// for _ in 0..400 {
///     for i in [0, 1, 2] {
///         bcg.observe(b(i));
///         if bcg.has_signals() {
///             let signals = bcg.take_signals();
///             ctor.handle_batch(&signals, &mut bcg, &mut cache);
///         }
///     }
/// }
/// assert!(cache.link_count() > 0, "the loop was traced");
/// ```
#[derive(Debug)]
pub struct TraceConstructor {
    config: ConstructorConfig,
    generation: u64,
    stats: ConstructorStats,
}

impl TraceConstructor {
    /// Creates a constructor with the given configuration.
    pub fn new(config: ConstructorConfig) -> Self {
        TraceConstructor {
            config,
            generation: 0,
            stats: ConstructorStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ConstructorConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> ConstructorStats {
        self.stats
    }

    /// Reacts to a batch of profiler signals, updating the cache. Returns
    /// the number of new trace objects created.
    pub fn handle_batch(
        &mut self,
        signals: &[Signal],
        bcg: &mut BranchCorrelationGraph,
        cache: &mut TraceCache,
    ) -> u64 {
        self.generation += 1;
        let mut created = 0;
        for sig in signals {
            if bcg.node(sig.node).generation() == self.generation {
                self.stats.signals_suppressed += 1;
                continue;
            }
            created += self.handle_one(sig.node, bcg, cache);
        }
        created
    }

    fn handle_one(
        &mut self,
        origin: NodeIdx,
        bcg: &mut BranchCorrelationGraph,
        cache: &mut TraceCache,
    ) -> u64 {
        self.stats.signals_handled += 1;
        let mut plan = TracePlan::default();
        plan_for_signal(origin, bcg, &self.config, &mut plan);
        self.stats.entry_points += plan.counters.entry_points;
        self.stats.paths_walked += plan.counters.paths_walked;
        self.stats.loops_unrolled += plan.counters.loops_unrolled;
        // Everything examined is now up to date. (Marks are only read
        // across signals, at the `handle_batch` suppression check, so
        // stamping after planning is equivalent to stamping mid-walk.)
        for &n in &plan.touched {
            bcg.mark_generation(n, self.generation);
        }
        let mut created = 0;
        for op in plan.ops {
            match op {
                LinkOp::Install {
                    entry,
                    blocks,
                    completion,
                } => match cache.try_insert_and_link(entry, blocks, completion) {
                    Ok((_, new)) => {
                        self.stats.links_written += 1;
                        if new {
                            self.stats.traces_created += 1;
                            created += 1;
                        }
                    }
                    Err(_) => {
                        // Quarantined: the path faulted recently; skip the
                        // install and let the cooldown decay.
                        self.stats.links_quarantine_rejected += 1;
                    }
                },
                LinkOp::Remove { entry } => {
                    if cache.unlink(entry).is_some() {
                        self.stats.links_removed += 1;
                    }
                }
            }
        }
        created
    }
}

/// Read-only view of a branch correlation graph, as the trace planner
/// needs it. Implemented by the live [`BranchCorrelationGraph`] (the
/// in-thread constructor) and by [`crate::BcgSnapshot`] (the off-thread
/// constructor, which plans against a frozen copy so the dispatch thread
/// keeps mutating the real graph meanwhile).
pub trait CorrelationView {
    /// The branch `(X, Y)` of node `n`.
    fn branch(&self, n: NodeIdx) -> trace_bcg::Branch;
    /// Whether a trace may be extended *through* `n`.
    fn is_traceable(&self, n: NodeIdx) -> bool;
    /// Whether `n` is hot enough to join a trace at all.
    fn is_hot(&self, n: NodeIdx) -> bool;
    /// Possibly-stale predecessor indices (the planner re-validates).
    fn predecessors(&self, n: NodeIdx) -> &[NodeIdx];
    /// Maximum-likelihood successor as `(target node, target block,
    /// count)`. `None` when the node has no successors — or, for a
    /// snapshot, when the target fell outside the captured region (the
    /// walk then ends early, which only shortens traces).
    fn max_successor(&self, n: NodeIdx) -> Option<(NodeIdx, BlockId, u16)>;
    /// Correlation ratio of `n` toward `block` (0.0 if never observed).
    fn correlation_to(&self, n: NodeIdx, block: BlockId) -> f64;
}

impl CorrelationView for BranchCorrelationGraph {
    fn branch(&self, n: NodeIdx) -> trace_bcg::Branch {
        self.node(n).branch()
    }
    fn is_traceable(&self, n: NodeIdx) -> bool {
        self.node(n).state().is_traceable()
    }
    fn is_hot(&self, n: NodeIdx) -> bool {
        self.node(n).state().is_hot()
    }
    fn predecessors(&self, n: NodeIdx) -> &[NodeIdx] {
        self.node(n).predecessors()
    }
    fn max_successor(&self, n: NodeIdx) -> Option<(NodeIdx, BlockId, u16)> {
        self.node(n)
            .max_successor()
            .map(|s| (s.node, s.to_block, s.count))
    }
    fn correlation_to(&self, n: NodeIdx, block: BlockId) -> f64 {
        self.node(n).correlation_to(block)
    }
}

/// A cache mutation the planner decided on. Pure data: applying ops in
/// order to a [`TraceCache`] (or a [`crate::SharedTraceCache`]) yields
/// the same link table the original in-place constructor produced.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkOp {
    /// Hash-cons `blocks` and link it at `entry`.
    Install {
        entry: trace_bcg::Branch,
        blocks: Vec<BlockId>,
        completion: f64,
    },
    /// Drop any stale link at `entry`.
    Remove { entry: trace_bcg::Branch },
}

/// Planner activity counters, folded into [`ConstructorStats`] by the
/// caller.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanCounters {
    pub entry_points: u64,
    pub paths_walked: u64,
    pub loops_unrolled: u64,
}

/// Output of planning one signal: cache ops, nodes examined (for
/// generation stamping / cascade suppression), and counters.
#[derive(Debug, Default)]
pub struct TracePlan {
    pub ops: Vec<LinkOp>,
    pub touched: Vec<NodeIdx>,
    pub counters: PlanCounters,
}

impl TracePlan {
    /// Clears accumulated state, retaining buffers.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.touched.clear();
        self.counters = PlanCounters::default();
    }
}

/// Runs the full §4.2 pipeline — back-track to entry points, walk each
/// maximum-likelihood path, cut into threshold-satisfying traces — for
/// one signal about `origin`, appending results to `plan`.
pub fn plan_for_signal<V: CorrelationView>(
    origin: NodeIdx,
    view: &V,
    config: &ConstructorConfig,
    plan: &mut TracePlan,
) {
    let entries = find_entry_points(origin, view, config);
    plan.counters.entry_points += entries.len() as u64;
    for entry in entries {
        let (path, loop_start) = walk_path(entry, view, config);
        plan.counters.paths_walked += 1;
        if loop_start.is_some() {
            plan.counters.loops_unrolled += 1;
        }
        plan.touched.extend_from_slice(&path);
        cut_and_emit(&path, loop_start, view, config, &mut plan.ops);
    }
}

/// Step 1: back-track along strongly-correlated edges to the set of
/// trace entry points that may reach the changed node. If the region
/// is a pure cycle with no external entry, the origin itself serves
/// as entry.
fn find_entry_points<V: CorrelationView>(
    origin: NodeIdx,
    view: &V,
    config: &ConstructorConfig,
) -> Vec<NodeIdx> {
    let mut visited: HashSet<NodeIdx> = HashSet::new();
    let mut stack = vec![origin];
    visited.insert(origin);
    let mut entries = Vec::new();
    while let Some(n) = stack.pop() {
        if entries.len() >= config.max_entry_points {
            break;
        }
        let mut has_strong_pred = false;
        for &p in view.predecessors(n) {
            // Stale predecessor entries are filtered here: the edge
            // must still exist as p's maximum-likelihood successor and
            // p must itself be traceable.
            if view.is_traceable(p) && view.max_successor(p).is_some_and(|(t, _, _)| t == n) {
                has_strong_pred = true;
                if visited.insert(p) {
                    stack.push(p);
                }
            }
        }
        if !has_strong_pred {
            entries.push(n);
        }
    }
    if entries.is_empty() {
        entries.push(origin);
    }
    entries
}

/// Step 2: follow the path of maximum likelihood from `entry` until a
/// loop (returns its start index), a non-traceable node, or a cap.
fn walk_path<V: CorrelationView>(
    entry: NodeIdx,
    view: &V,
    config: &ConstructorConfig,
) -> (Vec<NodeIdx>, Option<usize>) {
    let mut path = vec![entry];
    let mut pos_of: HashMap<NodeIdx, usize> = HashMap::new();
    pos_of.insert(entry, 0);
    loop {
        let cur = *path.last().expect("path nonempty");
        // Only traceable nodes may be extended *through*; a weak node
        // can end a trace but never predicts past itself.
        if !view.is_traceable(cur) {
            break;
        }
        let Some((next, _, count)) = view.max_successor(cur) else {
            break;
        };
        if count == 0 {
            break;
        }
        if let Some(&k) = pos_of.get(&next) {
            return (path, Some(k));
        }
        // Rare code never enters a trace (start-state filtering).
        if !view.is_hot(next) {
            break;
        }
        path.push(next);
        pos_of.insert(next, path.len() - 1);
        if path.len() >= config.max_path_nodes {
            break;
        }
    }
    (path, None)
}

/// Step 3: cut the node path into traces above the completion
/// threshold and emit install ops. A terminating loop is processed
/// first, unrolled once (§4.2).
fn cut_and_emit<V: CorrelationView>(
    path: &[NodeIdx],
    loop_start: Option<usize>,
    view: &V,
    config: &ConstructorConfig,
    ops: &mut Vec<LinkOp>,
) {
    match loop_start {
        None => cut_chain(path, path.len(), view, config, ops),
        Some(k) => {
            // The loop body is path[k..]; build the unrolled chain of
            // 1 + loop_unroll body copies — the link probability
            // joining consecutive copies is the back-edge correlation,
            // which the generic per-edge computation below derives
            // like any other link. Only segments *starting* in the
            // first copy are emitted (later-copy starts would
            // duplicate entry links).
            let body = &path[k..];
            let copies = 1 + config.loop_unroll;
            let mut unrolled: Vec<NodeIdx> = Vec::with_capacity(body.len() * copies);
            for _ in 0..copies {
                unrolled.extend_from_slice(body);
            }
            cut_chain(&unrolled, body.len(), view, config, ops);
            // Then the remaining prefix path[..k] (it flows into the
            // loop head, so cut path[..=k] with the head as terminal
            // block, emitting only starts before k).
            if k > 0 {
                cut_chain(&path[..=k], k, view, config, ops);
            }
        }
    }
}

/// Cuts a node chain into threshold-satisfying segments, emitting a
/// trace for every segment starting before `emit_limit`.
fn cut_chain<V: CorrelationView>(
    chain: &[NodeIdx],
    emit_limit: usize,
    view: &V,
    config: &ConstructorConfig,
    ops: &mut Vec<LinkOp>,
) {
    if chain.len() < 2 {
        // Nothing traceable here; drop any stale link at the lone
        // node's branch.
        if let Some(&n) = chain.first() {
            ops.push(LinkOp::Remove {
                entry: view.branch(n),
            });
        }
        return;
    }
    // link_prob[i] = P(chain[i+1]'s branch | chain[i]'s branch).
    let link_prob: Vec<f64> = (0..chain.len() - 1)
        .map(|i| view.correlation_to(chain[i], view.branch(chain[i + 1]).1))
        .collect();

    let mut i = 0;
    while i < chain.len() && i < emit_limit {
        let mut j = i;
        let mut prob = 1.0;
        while j + 1 < chain.len() && (j + 1 - i) < config.max_trace_blocks {
            let extended = prob * link_prob[j];
            if extended < config.threshold {
                break;
            }
            prob = extended;
            j += 1;
        }
        let len = j + 1 - i;
        if len >= config.min_trace_blocks {
            let entry = view.branch(chain[i]);
            let blocks: Vec<BlockId> = chain[i..=j].iter().map(|&n| view.branch(n).1).collect();
            #[cfg(feature = "debug-invariants")]
            {
                assert!(
                    len <= config.max_trace_blocks,
                    "emitted trace of {len} blocks exceeds the cap"
                );
                assert!(
                    len == 1 || prob >= config.threshold,
                    "emitted trace completion {prob} below threshold {}",
                    config.threshold
                );
                assert_eq!(entry.1, blocks[0], "entry must land on block 0");
            }
            ops.push(LinkOp::Install {
                entry,
                blocks,
                completion: prob,
            });
            i = j + 1;
        } else {
            // The graph does not support a trace starting here; remove
            // any stale link so dispatch stops using it.
            ops.push(LinkOp::Remove {
                entry: view.branch(chain[i]),
            });
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{BlockId, FuncId};
    use trace_bcg::{BcgConfig, BranchCorrelationGraph};

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn bcg_with(delay: u32, threshold: f64) -> BranchCorrelationGraph {
        BranchCorrelationGraph::new(
            BcgConfig::default()
                .with_start_delay(delay)
                .with_threshold(threshold),
        )
    }

    /// Drives the full profiler → constructor pipeline over a block
    /// stream and returns the populated cache.
    fn build_cache(
        pattern: &[u32],
        reps: usize,
        delay: u32,
        threshold: f64,
    ) -> (BranchCorrelationGraph, TraceCache, TraceConstructor) {
        let mut bcg = bcg_with(delay, threshold);
        let mut cache = TraceCache::new();
        let mut ctor =
            TraceConstructor::new(ConstructorConfig::default().with_threshold(threshold));
        for _ in 0..reps {
            for &b in pattern {
                bcg.observe(blk(b));
                if bcg.has_signals() {
                    let sigs = bcg.take_signals();
                    ctor.handle_batch(&sigs, &mut bcg, &mut cache);
                }
            }
        }
        (bcg, cache, ctor)
    }

    #[test]
    fn tight_loop_yields_unrolled_trace() {
        let (_bcg, cache, ctor) = build_cache(&[0, 1, 2], 600, 4, 0.97);
        assert!(ctor.stats().loops_unrolled > 0, "cycle must be detected");
        assert!(cache.link_count() > 0, "loop must be cached");
        // Some linked trace must cover at least one full iteration, i.e.
        // at least 3 blocks, and — unrolled — up to two iterations.
        let max_len = cache.iter_links().map(|(_, t)| t.len()).max().unwrap();
        assert!(max_len >= 3, "max trace length {max_len}");
        assert!(max_len <= ConstructorConfig::default().max_trace_blocks);
        // Every cached trace satisfies the completion threshold estimate.
        for (_, t) in cache.iter_links() {
            assert!(t.expected_completion() >= 0.97 - 1e-9);
        }
    }

    #[test]
    fn straightline_chain_becomes_single_trace() {
        // A unique chain 0->1->2->3->4 entered repeatedly from 9.
        let (_bcg, cache, _) = build_cache(&[9, 0, 1, 2, 3, 4], 400, 4, 0.97);
        // There must be a linked trace whose blocks form a contiguous run
        // of the chain.
        let found = cache
            .iter_links()
            .any(|(_, t)| t.len() >= 4 && t.blocks().windows(2).all(|w| w[1].block != w[0].block));
        assert!(found, "expected a long straight-line trace");
    }

    #[test]
    fn weak_branch_ends_traces() {
        // (1,2) is followed by 3 or 4 with 50/50 probability: no trace may
        // extend through node (1,2).
        let mut bcg = bcg_with(1, 0.97);
        let mut cache = TraceCache::new();
        let mut ctor = TraceConstructor::new(ConstructorConfig::default());
        for i in 0..2000 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(2));
            bcg.observe(blk(if i % 2 == 0 { 3 } else { 4 }));
            let sigs = bcg.take_signals();
            if !sigs.is_empty() {
                ctor.handle_batch(&sigs, &mut bcg, &mut cache);
            }
        }
        for (_, t) in cache.iter_links() {
            // No trace may predict past block 2: block 2 can only be the
            // final block of a trace.
            let pos = t.blocks().iter().position(|&b| b == blk(2));
            if let Some(p) = pos {
                assert_eq!(p, t.len() - 1, "block 2 must terminate the trace, got {t}");
            }
        }
    }

    #[test]
    fn rare_code_is_kept_out_of_traces() {
        // With a large start delay, nothing ever becomes hot, so no traces
        // may be constructed.
        let (_bcg, cache, _) = build_cache(&[0, 1, 2], 50, 4096, 0.97);
        assert_eq!(cache.link_count(), 0);
        assert_eq!(cache.trace_count(), 0);
    }

    #[test]
    fn cascade_suppression_skips_same_generation_nodes() {
        let mut bcg = bcg_with(1, 0.97);
        let mut cache = TraceCache::new();
        let mut ctor = TraceConstructor::new(ConstructorConfig::default());
        // Warm a loop so all nodes exist and are hot.
        for _ in 0..300 {
            for b in [0u32, 1, 2, 3] {
                bcg.observe(blk(b));
            }
        }
        let sigs = bcg.take_signals();
        assert!(sigs.len() >= 2, "expect several signals from warmup");
        ctor.handle_batch(&sigs, &mut bcg, &mut cache);
        let s = ctor.stats();
        assert!(
            s.signals_suppressed > 0,
            "later signals about the same region must be suppressed: {s:?}"
        );
    }

    #[test]
    fn entry_points_reach_back_through_strong_chain() {
        // Chain 5->0->1->2 where everything is unique; a signal about the
        // last node must produce an entry reaching back to the chain head.
        let (bcg, cache, _ctor) = build_cache(&[5, 0, 1, 2], 400, 4, 0.97);
        let _ = bcg;
        // The head's entry branch should be linked.
        let has_head_entry = cache
            .iter_links()
            .any(|((_, to), _)| to == blk(5) || to == blk(0));
        assert!(has_head_entry, "expected entry near the chain head");
    }

    #[test]
    fn traces_shorter_than_min_blocks_are_not_emitted() {
        let (_bcg, cache, _) = build_cache(&[0, 1], 400, 1, 0.97);
        for (_, t) in cache.iter_links() {
            assert!(t.len() >= 2);
        }
    }

    #[test]
    fn larger_unroll_factor_lengthens_loop_traces() {
        let mut lens = Vec::new();
        for unroll in [0usize, 1, 4] {
            let mut bcg = bcg_with(4, 0.97);
            let mut cache = TraceCache::new();
            let mut ctor = TraceConstructor::new(ConstructorConfig {
                loop_unroll: unroll,
                ..ConstructorConfig::default()
            });
            for _ in 0..600 {
                for b in [0u32, 1, 2] {
                    bcg.observe(blk(b));
                    if bcg.has_signals() {
                        let sigs = bcg.take_signals();
                        ctor.handle_batch(&sigs, &mut bcg, &mut cache);
                    }
                }
            }
            let max_len = cache.iter_links().map(|(_, t)| t.len()).max().unwrap_or(0);
            lens.push(max_len);
        }
        assert!(
            lens[0] <= lens[1] && lens[1] <= lens[2],
            "trace length must grow with unroll factor: {lens:?}"
        );
        assert!(lens[2] > lens[1], "unroll=4 should beat unroll=1: {lens:?}");
    }

    /// Golden pin for self-loop unrolling: a path whose maximum-likelihood
    /// walk terminates in a *self*-loop (block 0 branching back to itself)
    /// must emit the one-block body unrolled exactly once — the trace is
    /// exactly `[0, 0]`, never `[0]` (below min length) nor `[0, 0, 0]`
    /// (over-unrolled). The full link layout is pinned so any change to
    /// entry-point discovery, loop detection, or cutting shows up here.
    #[test]
    fn self_loop_body_is_unrolled_exactly_once_golden_layout() {
        // Stream: 9 then a run of twenty 0s, repeated. Node (0,0)'s
        // successors are 0 (18/19) and 9 (1/19); threshold 0.90 keeps it
        // Strong with prediction 0, so walks end in the (0,0) self-loop.
        let mut pattern = vec![9u32];
        pattern.extend(std::iter::repeat_n(0, 20));
        let (_bcg, cache, ctor) = build_cache(&pattern, 300, 4, 0.90);

        assert!(ctor.stats().loops_unrolled > 0, "self-loop must be found");
        let mut links: Vec<(u32, u32, Vec<u32>)> = cache
            .iter_links()
            .map(|((from, to), t)| {
                (
                    from.block,
                    to.block,
                    t.blocks().iter().map(|b| b.block).collect(),
                )
            })
            .collect();
        links.sort();
        // Golden layout: the self-loop entry (0,0) carries the body
        // unrolled once; the loop prefix 9 -> 0 -> 0 is linked at its two
        // upstream entries with the loop head as terminal block.
        assert_eq!(
            links,
            vec![
                (0, 0, vec![0, 0]),
                (0, 9, vec![9, 0, 0]),
                (9, 0, vec![0, 0]),
            ],
            "golden self-loop trace layout changed"
        );
        // And the unrolled trace is a distinct hash-consed object. Its
        // completion estimate is stamped at *first* construction (when the
        // self-edge was the only successor observed, probability 1); reuse
        // keeps the original object, so it stays at or above threshold.
        let id = cache.lookup_entry((blk(0), blk(0))).unwrap();
        let t = cache.trace(id);
        assert_eq!(t.len(), 2, "body of one block must unroll to two");
        assert!(
            t.expected_completion() >= 0.90,
            "completion {} must satisfy the threshold",
            t.expected_completion()
        );
    }

    #[test]
    fn handle_batch_returns_created_count() {
        let mut bcg = bcg_with(1, 0.97);
        let mut cache = TraceCache::new();
        let mut ctor = TraceConstructor::new(ConstructorConfig::default());
        for _ in 0..300 {
            for b in [0u32, 1, 2] {
                bcg.observe(blk(b));
            }
        }
        let sigs = bcg.take_signals();
        let created = ctor.handle_batch(&sigs, &mut bcg, &mut cache);
        assert_eq!(created, ctor.stats().traces_created);
        assert_eq!(cache.trace_count() as u64, created);
    }
}

//! Deterministic fault injection for the trace-serving stack.
//!
//! The robustness layer (budgeted eviction, quarantine, supervised
//! construction) only earns trust if its failure paths are *exercised*.
//! A [`FaultPlan`] is a seeded, thread-safe oracle the production code
//! consults at well-defined sites; each site draws from its own
//! counter-indexed pseudo-random sequence, so a given `(seed, config)`
//! produces the same fault pattern on every run regardless of how sites
//! interleave across threads.
//!
//! The plan is deliberately dependency-free: callers derive seeds with
//! their own stream splitter (e.g. `trace_workloads::prng::seed_stream`)
//! and hand the plan down via `Arc`.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip the corruption flag on a freshly built artifact.
    CorruptArtifact = 0,
    /// Fail an allocation-sized budget check: one insert behaves as if
    /// the byte budget were zero, forcing maximal eviction pressure.
    BudgetCheck = 1,
    /// Kill the constructor worker mid-batch (a panic the supervisor
    /// must absorb).
    KillConstructor = 2,
    /// Drop a signal batch at the queue (the dispatcher must re-park it
    /// via `defer_signals`).
    DropBatch = 3,
    /// Duplicate a signal batch at the queue (construction must be
    /// idempotent under replay).
    DuplicateBatch = 4,
}

/// Number of distinct [`FaultSite`]s.
const SITES: usize = 5;

/// Per-site injection probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability an artifact build is marked corrupt.
    pub corrupt_artifact: f64,
    /// Probability an insert's budget check is failed.
    pub fail_budget_check: f64,
    /// Probability a batch kills the constructor worker.
    pub kill_constructor: f64,
    /// Probability a queue submit drops its batch.
    pub drop_batch: f64,
    /// Probability a queue submit is duplicated.
    pub duplicate_batch: f64,
}

impl FaultConfig {
    /// No faults; `fire` always answers `false`.
    pub fn none() -> Self {
        FaultConfig {
            corrupt_artifact: 0.0,
            fail_budget_check: 0.0,
            kill_constructor: 0.0,
            drop_batch: 0.0,
            duplicate_batch: 0.0,
        }
    }

    /// The standard chaos mix: every class enabled at a low rate.
    pub fn standard() -> Self {
        FaultConfig {
            corrupt_artifact: 0.05,
            fail_budget_check: 0.05,
            kill_constructor: 0.02,
            drop_batch: 0.05,
            duplicate_batch: 0.05,
        }
    }

    /// Kills the constructor on its very first batch — the degraded-mode
    /// regression configuration.
    pub fn constructor_killer() -> Self {
        FaultConfig {
            kill_constructor: 1.0,
            ..FaultConfig::none()
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::CorruptArtifact => self.corrupt_artifact,
            FaultSite::BudgetCheck => self.fail_budget_check,
            FaultSite::KillConstructor => self.kill_constructor,
            FaultSite::DropBatch => self.drop_batch,
            FaultSite::DuplicateBatch => self.duplicate_batch,
        }
    }
}

/// Snapshot of a plan's draw/fire counters, per site in
/// [`FaultSite`] discriminant order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Times each site consulted the plan.
    pub draws: [u64; SITES],
    /// Times each site was told to fault.
    pub fired: [u64; SITES],
}

impl FaultStats {
    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.fired.iter().sum()
    }
}

/// A seeded fault oracle shared (via `Arc`) between the cache, the
/// construction queue and the supervised constructor service.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
    draws: [AtomicU64; SITES],
    fired: [AtomicU64; SITES],
}

/// Per-site salt so the five sequences are uncorrelated.
const SITE_SALT: [u64; SITES] = [
    0x9E6C_63D0_985E_5F21,
    0xC2B2_AE3D_27D4_EB4F,
    0x165F_A76B_3A4C_9D01,
    0xD6E8_FEB8_6659_FD93,
    0x8F1B_BCDC_BFA5_3E0B,
];

/// SplitMix64 finalizer — a full-avalanche mix of the 64-bit input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan drawing from `seed` with the given per-site rates.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        FaultPlan {
            seed,
            cfg,
            draws: Default::default(),
            fired: Default::default(),
        }
    }

    /// The configured rates.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// Consults the plan at a site: the `n`-th draw at a given site is a
    /// pure function of `(seed, site, n)`, so the decision sequence is
    /// reproducible independent of cross-site interleaving.
    pub fn fire(&self, site: FaultSite) -> bool {
        let i = site as usize;
        let n = self.draws[i].fetch_add(1, Relaxed);
        let rate = self.cfg.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let x = splitmix64(self.seed ^ SITE_SALT[i] ^ n.wrapping_mul(0xA24B_AED4_963E_E407));
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let hit = u < rate;
        if hit {
            self.fired[i].fetch_add(1, Relaxed);
        }
        hit
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        let mut s = FaultStats::default();
        for i in 0..SITES {
            s.draws[i] = self.draws[i].load(Relaxed);
            s.fired[i] = self.fired[i].load(Relaxed);
        }
        s
    }

    /// Faults fired at one site.
    pub fn fired_at(&self, site: FaultSite) -> u64 {
        self.fired[site as usize].load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let p = FaultPlan::new(42, FaultConfig::none());
        for _ in 0..1000 {
            assert!(!p.fire(FaultSite::CorruptArtifact));
            assert!(!p.fire(FaultSite::DropBatch));
        }
        assert_eq!(p.stats().total_fired(), 0);
        assert_eq!(p.stats().draws[FaultSite::CorruptArtifact as usize], 1000);
    }

    #[test]
    fn full_rate_always_fires() {
        let p = FaultPlan::new(
            7,
            FaultConfig {
                kill_constructor: 1.0,
                ..FaultConfig::none()
            },
        );
        for _ in 0..10 {
            assert!(p.fire(FaultSite::KillConstructor));
        }
        assert_eq!(p.fired_at(FaultSite::KillConstructor), 10);
    }

    #[test]
    fn sequences_are_deterministic_and_seed_sensitive() {
        let draw = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::new(seed, FaultConfig::standard());
            (0..256).map(|_| p.fire(FaultSite::DropBatch)).collect()
        };
        assert_eq!(draw(1), draw(1), "same seed must replay identically");
        assert_ne!(draw(1), draw(2), "different seeds must differ");
    }

    #[test]
    fn sites_draw_independent_sequences() {
        // Interleaving draws across sites must not perturb either
        // site's own sequence.
        let solo = {
            let p = FaultPlan::new(99, FaultConfig::standard());
            (0..128)
                .map(|_| p.fire(FaultSite::CorruptArtifact))
                .collect::<Vec<_>>()
        };
        let interleaved = {
            let p = FaultPlan::new(99, FaultConfig::standard());
            (0..128)
                .map(|_| {
                    let _ = p.fire(FaultSite::DropBatch);
                    let _ = p.fire(FaultSite::BudgetCheck);
                    p.fire(FaultSite::CorruptArtifact)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(solo, interleaved);
    }

    #[test]
    fn standard_rates_fire_roughly_in_proportion() {
        let p = FaultPlan::new(12345, FaultConfig::standard());
        for _ in 0..10_000 {
            let _ = p.fire(FaultSite::DropBatch);
        }
        let fired = p.fired_at(FaultSite::DropBatch);
        assert!(
            (200..=900).contains(&fired),
            "5% of 10k draws should fire ~500 times, got {fired}"
        );
    }
}

//! Graphviz export of the trace cache.
//!
//! Renders every linked trace as a chain of block nodes — entry branches
//! as dashed arrows, the trace's expected completion probability on the
//! chain head. Useful for eyeballing what the constructor stitched
//! together.

use std::collections::HashMap;
use std::fmt::Write as _;

use jvm_bytecode::BlockId;

use crate::cache::TraceCache;

/// Renders the cache's linked traces as Graphviz `dot`.
pub fn to_dot(cache: &TraceCache) -> String {
    let mut out = String::from(
        "digraph traces {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    // One shared node per (trace, position) so repeated blocks (unrolled
    // loops) stay visually distinct, plus one anchor per entry branch.
    let mut next_id = 0usize;
    let mut ids: HashMap<(u32, usize), usize> = HashMap::new();
    let mut entries: Vec<(BlockId, u32)> = Vec::new();
    let mut rendered: std::collections::HashSet<u32> = std::collections::HashSet::new();

    for (entry, trace) in cache.iter_links() {
        let t = trace.id().index() as u32;
        entries.push((entry.0, t));
        if !rendered.insert(t) {
            continue; // chain already rendered for another entry
        }
        for (pos, b) in trace.blocks().iter().enumerate() {
            let id = *ids.entry((t, pos)).or_insert_with(|| {
                let id = next_id;
                next_id += 1;
                let _ = writeln!(out, "  b{id} [label=\"{b}\"];");
                id
            });
            if pos > 0 {
                let prev = ids[&(t, pos - 1)];
                let _ = writeln!(out, "  b{prev} -> b{id};");
            } else {
                let _ = writeln!(
                    out,
                    "  t{t} [label=\"{} p={:.2}\", shape=plaintext];",
                    trace.id(),
                    trace.expected_completion()
                );
                let _ = writeln!(out, "  t{t} -> b{id} [style=dotted];");
            }
        }
    }
    for (i, (from, t)) in entries.iter().enumerate() {
        let _ = writeln!(out, "  e{i} [label=\"{from}\", shape=ellipse];");
        if let Some(&head) = ids.get(&(*t, 0)) {
            let _ = writeln!(out, "  e{i} -> b{head} [style=dashed, label=\"entry\"];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    #[test]
    fn renders_chains_and_entries() {
        let mut cache = TraceCache::new();
        cache.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2), blk(1)], 0.98);
        cache.insert_and_link((blk(5), blk(6)), vec![blk(6), blk(7)], 0.99);
        let out = to_dot(&cache);
        assert!(out.starts_with("digraph traces {"));
        assert!(out.contains("entry"));
        assert!(out.contains("p=0.98"));
        // The unrolled repeat of block 1 gets its own visual node.
        assert!(out.matches("label=\"fn#0:b1\"").count() >= 2);
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_cache_renders_empty_graph() {
        let out = to_dot(&TraceCache::new());
        assert!(out.contains("digraph traces"));
        assert!(!out.contains("->"));
    }
}

//! Traces.

use std::fmt;

use jvm_bytecode::BlockId;

/// Identifier of a trace within a [`crate::TraceCache`].
///
/// Stable for the cache's lifetime: relinking an entry branch to a new
/// trace never invalidates old ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub(crate) u32);

impl TraceId {
    /// Raw index into the cache's trace table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only meaningful against the cache
    /// that assigned the index; exposed for harnesses that carry ids
    /// across data structures (e.g. compiled-trace tables).
    pub fn from_raw(raw: u32) -> Self {
        TraceId(raw)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A trace: a sequence of basic blocks expected to execute in order, to
/// completion, with probability at least the construction threshold.
///
/// A trace is dispatched when the *entry branch* `(X, blocks[0])` linked to
/// it in the cache is taken; it completes when every block in `blocks` is
/// then executed in sequence. Traces are an "extended basic block" (§3.1):
/// one dispatch covers all of `blocks`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    pub(crate) id: TraceId,
    pub(crate) blocks: Vec<BlockId>,
    pub(crate) expected_completion: f64,
}

impl Trace {
    /// The trace's id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The block sequence; `blocks()[0]` is the entry block.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of basic blocks in the trace.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Traces are never empty; this always returns `false`.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The completion probability the constructor estimated from the
    /// branch correlation graph when the trace was built (§3.7).
    pub fn expected_completion(&self) -> f64 {
        self.expected_completion
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.id)?;
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "] p={:.3}", self.expected_completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    #[test]
    fn accessors() {
        let t = Trace {
            id: TraceId(3),
            blocks: vec![blk(1), blk(2)],
            expected_completion: 0.98,
        };
        assert_eq!(t.id(), TraceId(3));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.blocks()[1], blk(2));
        assert_eq!(t.expected_completion(), 0.98);
    }

    #[test]
    fn display_shows_chain_and_probability() {
        let t = Trace {
            id: TraceId(0),
            blocks: vec![blk(1), blk(2)],
            expected_completion: 0.5,
        };
        let s = t.to_string();
        assert!(s.contains("t0"));
        assert!(s.contains("->"));
        assert!(s.contains("0.500"));
    }
}

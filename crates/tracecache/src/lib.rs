//! # trace-cache
//!
//! The trace cache — the second half of the paper's contribution (§3.6–§4.2).
//!
//! The cache holds **traces**: sequences of basic blocks expected to execute
//! to completion with probability at least the configured threshold. It is
//! driven entirely by [`trace_bcg`] signals:
//!
//! 1. when the profiler reports that a branch's state or prediction
//!    changed, the [`constructor`] back-tracks the branch correlation graph
//!    along strongly-correlated edges to find every *trace entry point*
//!    that might be affected;
//! 2. from each entry point it follows the path of maximum likelihood
//!    until it meets a branch already on the path (a loop, which is
//!    unrolled once) or a weakly-correlated branch;
//! 3. the path is cut into traces whose *cumulative completion
//!    probability* — the product of the branch correlations along the
//!    chain (§3.7) — stays at or above the threshold, and each trace is
//!    hash-consed into the [`cache`] and linked at its entry branch.
//!
//! Execution-side, the [`runtime`] monitors the same dispatch stream the
//! profiler sees and measures what the paper's evaluation measures: trace
//! entries, completions, early exits, and the instruction-stream coverage
//! of trace-resident code.

//!
//! For concurrent deployments, [`shared`] provides a lock-striped
//! [`SharedTraceCache`] many VMs dispatch against, and [`offthread`]
//! moves construction to a background thread fed by bounded snapshot
//! batches.
//!
//! The robustness layer spans several modules: both caches enforce a
//! payload byte budget with second-chance eviction and keep a
//! quarantine blacklist for faulting traces ([`cache`], [`shared`]);
//! recoverable failures surface as [`TraceCacheError`] ([`error`]);
//! [`offthread`] supervises the constructor worker (restart with
//! backoff, then permanent degraded mode) behind [`ServiceHealth`]
//! gauges; and [`faults`] provides the deterministic [`FaultPlan`]
//! oracle the conformance chaos campaigns drive all of it with.

pub mod cache;
pub mod constructor;
pub mod dot;
pub mod error;
pub mod faults;
pub mod health;
pub mod metrics;
pub mod offthread;
pub mod runtime;
pub mod shared;
pub mod store;
pub mod trace;

pub use cache::{trace_cost, CacheStats, TraceCache, TRACE_BYTES_OVERHEAD};
pub use constructor::{
    plan_for_signal, ConstructorConfig, ConstructorStats, CorrelationView, LinkOp, PlanCounters,
    TraceConstructor, TracePlan,
};
pub use error::TraceCacheError;
pub use faults::{FaultConfig, FaultPlan, FaultSite, FaultStats};
pub use health::{
    Demotion, DemotionCause, HealthLedger, HealthPolicy, HealthState, HealthStats, OutcomeRecord,
    TraceHealth, TraceOutcome, GUARD_SITES_TRACKED,
};
pub use metrics::TraceExecStats;
pub use offthread::{
    construction_channel, run_constructor_service, run_supervised_constructor_service, BcgSnapshot,
    BuilderStats, ConstructionQueue, ConstructionReceiver, OffThreadBuilder, QueueStats,
    ServiceHealth, ServiceHealthSnapshot, SupervisorConfig,
};
pub use runtime::TraceRuntime;
pub use shared::{SharedCacheStats, SharedTrace, SharedTraceCache};
pub use store::{run_health_epoch, TraceStore};
pub use trace::{Trace, TraceId};

//! The hash-consed trace store.

use std::collections::{HashMap, VecDeque};

use jvm_bytecode::BlockId;
use trace_bcg::node::NO_TRACE_LINK;
use trace_bcg::{Branch, BranchCorrelationGraph, BranchTable, NodeIdx, PackedBranch};

use crate::error::TraceCacheError;
use crate::health::HealthLedger;
use crate::trace::{Trace, TraceId};

/// Fixed per-trace bookkeeping charge in the byte-budget accounting:
/// covers the trace object, its hash-cons index entry, and the entry
/// link(s). A named constant so the conformance model can mirror the
/// accounting exactly.
pub const TRACE_BYTES_OVERHEAD: usize = 64;

/// The byte cost a trace of `blocks` blocks charges against the cache
/// budget (artifact bytes, if any, are added on top by the shared
/// cache). Deliberately a closed form over the block count — not real
/// allocator numbers — so the eviction *policy* is reproducible in the
/// conformance model.
pub fn trace_cost(blocks: usize) -> usize {
    blocks * std::mem::size_of::<BlockId>() + TRACE_BYTES_OVERHEAD
}

/// Cache bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// New trace objects constructed.
    pub traces_constructed: u64,
    /// Insertions that found an identical block sequence already cached
    /// ("the trace is retrieved and linked", §4.2).
    pub traces_reused: u64,
    /// Entry-branch links that replaced a different trace (cache
    /// instability events; the paper's stability criterion wants these
    /// rare, §3.6).
    pub links_replaced: u64,
    /// Entry links removed by the budget's second-chance sweep.
    pub links_evicted: u64,
    /// Trace objects tombstoned because their last link was evicted (or
    /// they were quarantined) and their storage reclaimed.
    pub traces_evicted: u64,
    /// Traces tombstoned by [`TraceCache::quarantine`].
    pub traces_quarantined: u64,
    /// Construction attempts refused because the `(entry, path)` key is
    /// quarantined.
    pub quarantine_rejected: u64,
    /// Budget-enforcement passes that ended while still over budget
    /// (a single trace larger than the whole budget).
    pub budget_overruns: u64,
    /// Entry branches currently linked.
    pub links_live: usize,
}

/// The trace cache: trace objects hash-consed by block sequence, plus the
/// dispatch table linking entry branches to traces.
///
/// Separating *trace objects* from *entry links* mirrors the paper: several
/// entry branches may be "linked into the code" against the same cached
/// sequence, and relinking an entry never destroys a trace object (old
/// ids stay valid for the execution monitor).
///
/// # Memory budget and eviction
///
/// [`set_budget`](Self::set_budget) bounds the payload bytes the cache
/// may hold ([`payload_bytes`](Self::payload_bytes), the closed-form
/// [`trace_cost`] accounting). When an insert pushes the cache over
/// budget, entry links are evicted by a deterministic second-chance
/// (clock) sweep in insertion order: a link touched again since it was
/// last considered gets one more round, otherwise it is unlinked. A
/// trace whose last link goes is *tombstoned* — removed from the
/// hash-cons index (so a rebuild mints a fresh id; ids are never
/// reused) and its storage reclaimed. Every eviction bumps
/// [`version`](Self::version), so inline BCG link slots and in-flight
/// cached dispatches revalidate and fall back to block dispatch.
///
/// # Quarantine
///
/// [`quarantine`](Self::quarantine) tombstones a faulting trace and
/// blacklists its `(entry, path)` key;
/// [`try_insert_and_link`](Self::try_insert_and_link) then refuses to
/// rebuild that exact trace at that entry until the cooldown decays
/// (one tick per refused attempt), so a trace that keeps faulting
/// cannot thrash the constructor.
///
/// ```
/// use jvm_bytecode::{BlockId, FuncId};
/// use trace_cache::TraceCache;
///
/// let b = |i| BlockId::new(FuncId(0), i);
/// let mut cache = TraceCache::new();
/// let (id, created) = cache.insert_and_link((b(0), b(1)), vec![b(1), b(2)], 0.98);
/// assert!(created);
/// // Dispatch check: taking branch (b0, b1) enters the trace.
/// assert_eq!(cache.lookup_entry((b(0), b(1))), Some(id));
/// assert_eq!(cache.trace(id).len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TraceCache {
    traces: Vec<Trace>,
    /// Byte cost charged for each trace; zeroed when tombstoned.
    costs: Vec<usize>,
    /// Live entry-link keys per trace (the reverse of `by_entry`).
    entry_keys: Vec<Vec<u64>>,
    /// Hash-consing index; only touched at construction time, so a std
    /// `HashMap` keyed by the full block sequence is fine here.
    /// Tombstoned traces are removed, so a rebuild mints a fresh id.
    by_blocks: HashMap<Vec<BlockId>, TraceId>,
    /// The dispatch table: entry branch → linked trace. Queried at every
    /// block boundary, hence the packed-key open-addressed table.
    by_entry: BranchTable<TraceId>,
    /// Second-chance sweep order: live link keys, oldest first. May hold
    /// stale keys (unlinked outside eviction); `referenced` is the
    /// source of truth and stale keys are dropped when popped.
    clock: VecDeque<u64>,
    /// Live link keys → second-chance bit (set when an insert touches an
    /// already-linked entry).
    referenced: HashMap<u64, bool>,
    /// Blacklist: entry key → (exact block path, refusals remaining).
    quarantined: HashMap<u64, (Vec<BlockId>, u32)>,
    /// Sum of `costs` over live traces.
    payload: usize,
    /// Byte budget on `payload`; `None` disables eviction entirely.
    budget: Option<usize>,
    stats: CacheStats,
    /// Bumped on every link mutation; lets executors cache lookups.
    version: u64,
    /// Whole-lifetime trace-health telemetry and demotion ladder; fed
    /// and scored through the [`crate::TraceStore`] trait.
    health: HealthLedger,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct trace objects ever constructed (including
    /// tombstoned ones — ids are never reused).
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Number of live entry links.
    pub fn link_count(&self) -> usize {
        self.by_entry.len()
    }

    /// A counter bumped on every entry-link mutation. An executor that
    /// caches `lookup_entry` results must revalidate when this changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.links_live = self.by_entry.len();
        s
    }

    /// The health ledger (telemetry + demotion ladder).
    pub fn health(&self) -> &HealthLedger {
        &self.health
    }

    /// Mutable health-ledger access (the [`crate::TraceStore`] impl
    /// records outcomes and runs epochs through this).
    pub fn health_mut(&mut self) -> &mut HealthLedger {
        &mut self.health
    }

    /// Sets (or clears) the payload byte budget and immediately enforces
    /// it.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
        // `u64::MAX` is no packed branch, so nothing is protected here.
        self.enforce_budget(u64::MAX);
        #[cfg(feature = "debug-invariants")]
        self.assert_cache_invariants();
    }

    /// The configured payload budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Bytes currently charged against the budget: the [`trace_cost`]
    /// sum over live (non-tombstoned) traces.
    pub fn payload_bytes(&self) -> usize {
        self.payload
    }

    /// The trace with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn trace(&self, id: TraceId) -> &Trace {
        &self.traces[id.index()]
    }

    /// The trace with the given id, surfacing unknown and evicted ids as
    /// errors instead of panicking / handing back a tombstone. Dispatch
    /// paths use this and fall back to block dispatch on `Err`.
    #[inline]
    pub fn trace_checked(&self, id: TraceId) -> Result<&Trace, TraceCacheError> {
        match self.traces.get(id.index()) {
            None => Err(TraceCacheError::UnknownTrace(id)),
            Some(t) if t.blocks.is_empty() => Err(TraceCacheError::Evicted(id)),
            Some(t) => Ok(t),
        }
    }

    /// Whether the id was assigned and later tombstoned (evicted or
    /// quarantined).
    pub fn is_evicted(&self, id: TraceId) -> bool {
        self.traces
            .get(id.index())
            .is_some_and(|t| t.blocks.is_empty())
    }

    /// The trace linked at an entry branch, if any. This is the dispatch
    /// check performed when the interpreter takes a branch.
    #[inline]
    pub fn lookup_entry(&self, entry: Branch) -> Option<TraceId> {
        self.by_entry.get(PackedBranch::pack(entry))
    }

    /// The dispatch check via a BCG node's inline trace-link slot.
    ///
    /// `node` must be the BCG node of the branch being tested (the value
    /// [`BranchCorrelationGraph::observe`] just returned). While the
    /// node's stamp matches [`Self::version`], the slot answers directly
    /// — positive *or negative* — without hashing; the first lookup
    /// after any link mutation falls back to [`Self::lookup_entry`] and
    /// restamps the slot. Since almost every dispatch is a miss, caching
    /// negatives is what removes the per-block-boundary table probe.
    #[inline]
    pub fn lookup_entry_cached(
        &self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId> {
        let (stamp, raw) = bcg.node(node).trace_link();
        if stamp == self.version {
            let cached = if raw == NO_TRACE_LINK {
                None
            } else {
                Some(TraceId(raw))
            };
            #[cfg(feature = "debug-invariants")]
            assert_eq!(
                cached,
                self.lookup_entry(bcg.node(node).branch()),
                "inline trace-link slot diverged from the entry table at \
                 version {} for branch {:?}",
                self.version,
                bcg.node(node).branch()
            );
            return cached;
        }
        let found = self.lookup_entry(bcg.node(node).branch());
        bcg.set_trace_link(node, self.version, found.map_or(NO_TRACE_LINK, |t| t.0));
        found
    }

    /// Iterates over all `(entry branch, trace)` links.
    pub fn iter_links(&self) -> impl Iterator<Item = (Branch, &Trace)> {
        self.by_entry
            .iter()
            .map(|(b, id)| (b.unpack(), self.trace(id)))
    }

    /// Iterates over every trace object ever constructed — including
    /// unlinked ones, and tombstoned ones (which report empty blocks).
    pub fn iter_traces(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Iterates over the quarantine blacklist: `(entry, path, refusals
    /// remaining)`, sorted by packed entry key (for deterministic
    /// comparison harnesses).
    pub fn iter_quarantine(&self) -> impl Iterator<Item = (Branch, &[BlockId], u32)> {
        let mut keys: Vec<&u64> = self.quarantined.keys().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| {
            let (blocks, remaining) = &self.quarantined[k];
            (PackedBranch(*k).unpack(), blocks.as_slice(), *remaining)
        })
    }

    /// Hash-conses a block sequence into the cache and links it at
    /// `entry`, then enforces the byte budget (the just-written link is
    /// never the victim). Returns the trace id and whether a new trace
    /// object was constructed.
    ///
    /// This path does **not** consult the quarantine blacklist — the
    /// constructor goes through [`Self::try_insert_and_link`].
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or `entry.1 != blocks[0]` — the entry
    /// branch must land on the trace's first block.
    pub fn insert_and_link(
        &mut self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
    ) -> (TraceId, bool) {
        assert!(!blocks.is_empty(), "trace must contain at least one block");
        assert_eq!(
            entry.1, blocks[0],
            "entry branch must target the trace's first block"
        );
        let (id, created) = match self.by_blocks.get(&blocks) {
            Some(&id) => {
                self.stats.traces_reused += 1;
                (id, false)
            }
            None => {
                let id = TraceId(self.traces.len() as u32);
                let cost = trace_cost(blocks.len());
                self.traces.push(Trace {
                    id,
                    blocks: blocks.clone(),
                    expected_completion,
                });
                self.costs.push(cost);
                self.entry_keys.push(Vec::new());
                self.payload += cost;
                self.by_blocks.insert(blocks, id);
                self.stats.traces_constructed += 1;
                (id, true)
            }
        };
        let key = PackedBranch::pack(entry).0;
        match self.by_entry.insert(PackedBranch(key), id) {
            Some(old) if old != id => {
                self.stats.links_replaced += 1;
                self.entry_keys[old.index()].retain(|&k| k != key);
                self.reclaim_if_unlinked(old);
            }
            _ => {}
        }
        // Second-chance bookkeeping: a first-time link enters the sweep
        // unreferenced; touching a live link grants it another round.
        match self.referenced.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(true);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(false);
                self.clock.push_back(key);
            }
        }
        if !self.entry_keys[id.index()].contains(&key) {
            self.entry_keys[id.index()].push(key);
        }
        self.health.note_admission(id, entry);
        self.version += 1;
        self.enforce_budget(key);
        #[cfg(feature = "debug-invariants")]
        self.assert_cache_invariants();
        (id, created)
    }

    /// [`Self::insert_and_link`] behind the quarantine blacklist: if the
    /// exact `(entry, path)` key is quarantined the insert is refused,
    /// the cooldown ticks down by one, and at zero the key is
    /// re-admitted (the *next* attempt succeeds).
    pub fn try_insert_and_link(
        &mut self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
    ) -> Result<(TraceId, bool), TraceCacheError> {
        let key = PackedBranch::pack(entry).0;
        if let Some((qblocks, remaining)) = self.quarantined.get_mut(&key) {
            if *qblocks == blocks {
                *remaining -= 1;
                let left = *remaining;
                if left == 0 {
                    self.quarantined.remove(&key);
                }
                self.stats.quarantine_rejected += 1;
                return Err(TraceCacheError::Quarantined {
                    entry,
                    remaining: left,
                });
            }
        }
        Ok(self.insert_and_link(entry, blocks, expected_completion))
    }

    /// Removes the link at an entry branch, if any. Used when a trace's
    /// entry is found to no longer satisfy the criteria.
    pub fn unlink(&mut self, entry: Branch) -> Option<TraceId> {
        let key = PackedBranch::pack(entry).0;
        let removed = self.by_entry.remove(PackedBranch(key));
        if let Some(id) = removed {
            self.referenced.remove(&key);
            self.entry_keys[id.index()].retain(|&k| k != key);
            self.reclaim_if_unlinked(id);
            self.version += 1;
            #[cfg(feature = "debug-invariants")]
            self.assert_cache_invariants();
        }
        removed
    }

    /// Tombstones the trace linked at `entry` and blacklists its
    /// `(entry, path)` key for `cooldown` refused construction attempts.
    /// *Every* entry link of the trace is removed (the version bump
    /// forces in-flight cached dispatches to revalidate); only the
    /// faulting entry is blacklisted. Returns the tombstoned id, or
    /// `None` if nothing is linked at `entry`.
    pub fn quarantine(&mut self, entry: Branch, cooldown: u32) -> Option<TraceId> {
        let key = PackedBranch::pack(entry).0;
        let id = self.by_entry.get(PackedBranch(key))?;
        self.quarantined.insert(
            key,
            (self.traces[id.index()].blocks.clone(), cooldown.max(1)),
        );
        for k in std::mem::take(&mut self.entry_keys[id.index()]) {
            self.by_entry.remove(PackedBranch(k));
            self.referenced.remove(&k);
        }
        self.tombstone(id);
        self.stats.traces_quarantined += 1;
        self.version += 1;
        #[cfg(feature = "debug-invariants")]
        self.assert_cache_invariants();
        Some(id)
    }

    /// Restores a quarantine blacklist entry verbatim (snapshot load):
    /// registers the `(entry, path)` key with `cooldown` refusals
    /// remaining without touching any live trace or link — unlike
    /// [`Self::quarantine`], there is nothing to tombstone, because the
    /// offending trace died in the process that wrote the snapshot. A
    /// zero cooldown is clamped to 1, mirroring [`Self::quarantine`].
    pub fn restore_quarantine(&mut self, entry: Branch, blocks: Vec<BlockId>, cooldown: u32) {
        let key = PackedBranch::pack(entry).0;
        self.quarantined.insert(key, (blocks, cooldown.max(1)));
    }

    /// Tombstones a trace: reclaims its payload bytes and removes it
    /// from the hash-cons index so a rebuild mints a fresh id.
    fn tombstone(&mut self, id: TraceId) {
        let i = id.index();
        debug_assert!(self.entry_keys[i].is_empty());
        self.payload -= self.costs[i];
        self.costs[i] = 0;
        let blocks = std::mem::take(&mut self.traces[i].blocks);
        self.by_blocks.remove(&blocks);
        self.stats.traces_evicted += 1;
        self.health.forget(id);
    }

    /// In budget mode an unlinked trace can never be chosen by the
    /// sweep, so it is reclaimed as soon as its last link goes. Without
    /// a budget the legacy contract holds: unlinked traces stay
    /// retrievable by id.
    fn reclaim_if_unlinked(&mut self, id: TraceId) {
        if self.budget.is_some()
            && self.entry_keys[id.index()].is_empty()
            && !self.traces[id.index()].blocks.is_empty()
        {
            self.tombstone(id);
        }
    }

    /// Evicts links (second-chance, insertion order) until the payload
    /// fits the budget. `protect` — the just-written link — is never
    /// evicted; if it alone remains and the cache is still over budget,
    /// the overrun is counted and the trace stands.
    fn enforce_budget(&mut self, protect: u64) {
        let Some(budget) = self.budget else {
            return;
        };
        while self.payload > budget {
            let mut victim = None;
            // Two passes over the clock suffice: the first clears
            // second-chance bits (and drops stale keys), the second must
            // then land on an unreferenced, unprotected key if any
            // exists.
            let mut remaining = 2 * self.clock.len() + 1;
            while remaining > 0 {
                remaining -= 1;
                let Some(key) = self.clock.pop_front() else {
                    break;
                };
                match self.referenced.get(&key).copied() {
                    None => continue, // stale: unlinked outside the sweep
                    Some(_) if key == protect => self.clock.push_back(key),
                    Some(true) => {
                        self.referenced.insert(key, false);
                        self.clock.push_back(key);
                    }
                    Some(false) => {
                        victim = Some(key);
                        break;
                    }
                }
            }
            let Some(key) = victim else {
                self.stats.budget_overruns += 1;
                break;
            };
            let id = self
                .by_entry
                .remove(PackedBranch(key))
                .expect("sweep key must be linked");
            self.referenced.remove(&key);
            self.entry_keys[id.index()].retain(|&k| k != key);
            self.stats.links_evicted += 1;
            if self.entry_keys[id.index()].is_empty() {
                self.tombstone(id);
            }
            self.version += 1;
        }
    }

    /// Machine-checked structural invariants, asserted after every link
    /// mutation when the `debug-invariants` feature is on:
    ///
    /// - **hash-consing uniqueness** — the block-sequence index has
    ///   exactly one entry per *live* trace object, every entry
    ///   round-trips to a trace with that exact sequence, and no two
    ///   live trace objects share a sequence (§4.2: an identical trace
    ///   "is retrieved and linked", never duplicated);
    /// - **id coherence** — `traces[i].id == i`;
    /// - **link validity** — every entry link targets an in-range,
    ///   *live* trace whose first block is the entry branch's target,
    ///   and the trace is non-empty with a completion estimate in
    ///   `(0, 1]`;
    /// - **budget accounting** — the payload counter equals the
    ///   recomputed cost of the live traces, and every live link is
    ///   tracked by the second-chance sweep.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_cache_invariants(&self) {
        let live = self.traces.iter().filter(|t| !t.blocks.is_empty()).count();
        assert_eq!(
            self.by_blocks.len(),
            live,
            "hash-consing index must have exactly one entry per live trace"
        );
        let mut payload = 0usize;
        for (i, t) in self.traces.iter().enumerate() {
            assert_eq!(t.id.index(), i, "trace id must equal its slot");
            if t.blocks.is_empty() {
                assert_eq!(self.costs[i], 0, "tombstoned trace {i} must cost nothing");
                assert!(
                    self.entry_keys[i].is_empty(),
                    "tombstoned trace {i} must hold no links"
                );
                continue;
            }
            assert_eq!(
                self.costs[i],
                trace_cost(t.blocks.len()),
                "trace {i} cost must match the closed form"
            );
            payload += self.costs[i];
            assert!(
                t.expected_completion > 0.0 && t.expected_completion <= 1.0,
                "completion estimate {} out of (0, 1] for trace {i}",
                t.expected_completion
            );
            assert_eq!(
                self.by_blocks.get(&t.blocks),
                Some(&t.id),
                "trace {i} must be findable under its own block sequence"
            );
        }
        assert_eq!(payload, self.payload, "payload accounting drifted");
        assert_eq!(
            self.referenced.len(),
            self.by_entry.len(),
            "sweep must track exactly the live links"
        );
        for (entry, id) in self.by_entry.iter() {
            let (_, to) = entry.unpack();
            assert!(
                id.index() < self.traces.len(),
                "entry link targets out-of-range trace {id:?}"
            );
            let t = &self.traces[id.index()];
            assert!(
                !t.blocks.is_empty(),
                "entry link targets tombstoned trace {id:?}"
            );
            assert_eq!(
                t.blocks[0], to,
                "entry link must land on its trace's first block"
            );
            assert!(
                self.referenced.contains_key(&entry.0),
                "live link missing from the sweep"
            );
            assert!(
                self.entry_keys[id.index()].contains(&entry.0),
                "reverse link list out of sync"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    #[test]
    fn insert_links_and_retrieves() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, created) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert!(created);
        assert_eq!(c.lookup_entry(entry), Some(id));
        assert_eq!(c.trace(id).blocks(), &[blk(1), blk(2)]);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 1);
    }

    #[test]
    fn hash_consing_reuses_identical_sequences() {
        let mut c = TraceCache::new();
        let (a, created_a) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        // Same sequence, different entry context.
        let (b, created_b) = c.insert_and_link((blk(9), blk(1)), vec![blk(1), blk(2)], 0.98);
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a, b);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 2);
        assert_eq!(c.stats().traces_reused, 1);
    }

    #[test]
    fn relinking_replaces_and_counts_instability() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (a, _) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        let (b, _) = c.insert_and_link(entry, vec![blk(1), blk(3)], 0.99);
        assert_ne!(a, b);
        assert_eq!(c.lookup_entry(entry), Some(b));
        assert_eq!(c.stats().links_replaced, 1);
        // Relinking the identical trace is not instability.
        let _ = c.insert_and_link(entry, vec![blk(1), blk(3)], 0.99);
        assert_eq!(c.stats().links_replaced, 1);
        // Old trace object still retrievable by id.
        assert_eq!(c.trace(a).blocks(), &[blk(1), blk(2)]);
    }

    #[test]
    fn unlink_removes_entry_but_keeps_trace() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, _) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.unlink(entry), Some(id));
        assert_eq!(c.lookup_entry(entry), None);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.unlink(entry), None);
    }

    #[test]
    #[should_panic(expected = "entry branch must target")]
    fn entry_must_match_first_block() {
        let mut c = TraceCache::new();
        let _ = c.insert_and_link((blk(0), blk(5)), vec![blk(1), blk(2)], 0.99);
    }

    #[test]
    fn iterators_cover_links_and_traces() {
        let mut c = TraceCache::new();
        c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.9);
        c.insert_and_link((blk(2), blk(3)), vec![blk(3), blk(4)], 0.9);
        assert_eq!(c.iter_links().count(), 2);
        assert_eq!(c.iter_traces().count(), 2);
    }

    /// Builds a BCG whose node for `(blk(0), blk(1))` exists, returning
    /// the graph and that node's index.
    fn bcg_with_branch() -> (trace_bcg::BranchCorrelationGraph, NodeIdx) {
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        bcg.observe(blk(0));
        let n = bcg.observe(blk(1)).expect("branch node");
        (bcg, n)
    }

    #[test]
    fn cached_lookup_caches_negative_results() {
        let (mut bcg, n) = bcg_with_branch();
        let c = TraceCache::new();
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        // Slot is stamped with the current version and the no-link mark.
        assert_eq!(bcg.node(n).trace_link(), (c.version(), NO_TRACE_LINK));
        // Second query answers from the slot (same stamp, still None).
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
    }

    #[test]
    fn insert_and_link_invalidates_cached_negative() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        // The version bump makes the stale negative stamp miss, so the
        // next cached lookup revalidates and finds the new link.
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(bcg.node(n).trace_link(), (c.version(), id.0));
    }

    #[test]
    fn unlink_invalidates_cached_positive() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(c.unlink((blk(0), blk(1))), Some(id));
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        assert_eq!(bcg.node(n).trace_link(), (c.version(), NO_TRACE_LINK));
    }

    #[test]
    fn unrelated_link_mutations_restamp_but_preserve_answers() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        // A mutation elsewhere bumps the version; the slot revalidates to
        // the same positive answer.
        c.insert_and_link((blk(7), blk(8)), vec![blk(8), blk(9)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(bcg.node(n).trace_link(), (c.version(), id.0));
    }

    #[test]
    fn relinking_entry_updates_cached_answer_across_versions() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (a, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(a));
        let (b, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(3)], 0.99);
        assert_ne!(a, b);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(b));
    }

    #[test]
    fn cached_lookup_always_agrees_with_direct_lookup() {
        // Churn links while interleaving cached and direct lookups: the
        // slot path must never diverge from the table.
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        let mut nodes = Vec::new();
        bcg.observe(blk(0));
        for i in 1..8u32 {
            nodes.push((blk(i - 1), blk(i), bcg.observe(blk(i)).unwrap()));
        }
        let mut c = TraceCache::new();
        for round in 0..50u32 {
            let i = (round % 7) as usize;
            let (from, to, _) = nodes[i];
            if round % 3 == 0 {
                c.insert_and_link((from, to), vec![to, blk(to.block + 1)], 0.99);
            } else if round % 3 == 1 {
                c.unlink((from, to));
            }
            for &(from, to, n) in &nodes {
                assert_eq!(
                    c.lookup_entry_cached(&mut bcg, n),
                    c.lookup_entry((from, to)),
                    "slot diverged at round {round}"
                );
            }
        }
    }

    // --- budget / eviction / quarantine ---

    /// Budget sized for exactly `n` two-block traces.
    fn budget_for(n: usize) -> usize {
        n * trace_cost(2)
    }

    #[test]
    fn budget_evicts_oldest_unreferenced_link_first() {
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(2)));
        let e = |i: u32| (blk(10 * i), blk(10 * i + 1));
        let t = |i: u32| vec![blk(10 * i + 1), blk(10 * i + 2)];
        let (a, _) = c.insert_and_link(e(0), t(0), 0.99);
        let (b, _) = c.insert_and_link(e(1), t(1), 0.99);
        assert!(c.payload_bytes() <= budget_for(2));
        // Third insert forces out the oldest (a).
        let (d, _) = c.insert_and_link(e(2), t(2), 0.99);
        assert!(c.payload_bytes() <= budget_for(2));
        assert_eq!(c.lookup_entry(e(0)), None, "oldest link must be evicted");
        assert_eq!(c.lookup_entry(e(1)), Some(b));
        assert_eq!(c.lookup_entry(e(2)), Some(d));
        assert!(c.is_evicted(a));
        assert!(c.trace_checked(a).is_err());
        let s = c.stats();
        assert_eq!(s.links_evicted, 1);
        assert_eq!(s.traces_evicted, 1);
        assert_eq!(s.budget_overruns, 0);
    }

    #[test]
    fn second_chance_spares_a_retouched_link() {
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(2)));
        let e = |i: u32| (blk(10 * i), blk(10 * i + 1));
        let t = |i: u32| vec![blk(10 * i + 1), blk(10 * i + 2)];
        let (a, _) = c.insert_and_link(e(0), t(0), 0.99);
        let (_b, _) = c.insert_and_link(e(1), t(1), 0.99);
        // Re-touch the oldest: it gets a second chance, so the sweep
        // skips it and evicts e(1) instead.
        let _ = c.insert_and_link(e(0), t(0), 0.99);
        let _ = c.insert_and_link(e(2), t(2), 0.99);
        assert_eq!(c.lookup_entry(e(0)), Some(a), "retouched link survives");
        assert_eq!(c.lookup_entry(e(1)), None, "unreferenced link evicted");
    }

    #[test]
    fn budget_exactly_at_trace_size_admits_one_trace() {
        let mut c = TraceCache::new();
        c.set_budget(Some(trace_cost(2)));
        let (a, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.payload_bytes(), trace_cost(2));
        assert_eq!(c.stats().budget_overruns, 0);
        // The next trace displaces the first: still exactly at budget.
        let (b, _) = c.insert_and_link((blk(5), blk(6)), vec![blk(6), blk(7)], 0.99);
        assert_eq!(c.payload_bytes(), trace_cost(2));
        assert!(c.is_evicted(a));
        assert_eq!(c.lookup_entry((blk(5), blk(6))), Some(b));
    }

    #[test]
    fn oversized_trace_overruns_but_stands_alone() {
        let mut c = TraceCache::new();
        c.set_budget(Some(trace_cost(2)));
        let blocks: Vec<BlockId> = (1..=20).map(blk).collect();
        let (id, _) = c.insert_and_link((blk(0), blk(1)), blocks, 0.99);
        assert_eq!(c.lookup_entry((blk(0), blk(1))), Some(id));
        assert!(c.payload_bytes() > trace_cost(2));
        assert_eq!(c.stats().budget_overruns, 1);
    }

    #[test]
    fn eviction_bumps_version_and_invalidates_cached_links() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(1)));
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        // The next insert evicts (blk0, blk1); the stamped slot must
        // revalidate to None, never serve the dangling id.
        let _ = c.insert_and_link((blk(5), blk(6)), vec![blk(6), blk(7)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        assert!(c.is_evicted(id));
    }

    #[test]
    fn evicted_sequence_rebuilds_under_a_fresh_id() {
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(1)));
        let (a, created) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert!(created);
        let _ = c.insert_and_link((blk(5), blk(6)), vec![blk(6), blk(7)], 0.99);
        assert!(c.is_evicted(a));
        let (b, created) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert!(created, "tombstoned sequence must rebuild, not dedup");
        assert_ne!(a, b, "ids are never reused");
    }

    #[test]
    fn unlinked_trace_reclaimed_only_in_budget_mode() {
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(8)));
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.unlink((blk(0), blk(1))), Some(id));
        assert!(c.is_evicted(id), "budget mode reclaims unlinked traces");
        assert_eq!(c.payload_bytes(), 0);
    }

    #[test]
    fn quarantine_tombstones_blacklists_and_readmits_after_cooldown() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let path = vec![blk(1), blk(2)];
        let (id, _) = c.insert_and_link(entry, path.clone(), 0.99);
        // Second entry onto the same trace: quarantine removes both.
        let _ = c.insert_and_link((blk(9), blk(1)), path.clone(), 0.99);
        assert_eq!(c.quarantine(entry, 2), Some(id));
        assert_eq!(c.lookup_entry(entry), None);
        assert_eq!(c.lookup_entry((blk(9), blk(1))), None, "all links removed");
        assert!(c.is_evicted(id));
        assert_eq!(c.iter_quarantine().count(), 1);
        // Two refused attempts decay the cooldown...
        assert!(matches!(
            c.try_insert_and_link(entry, path.clone(), 0.99),
            Err(TraceCacheError::Quarantined { remaining: 1, .. })
        ));
        assert!(matches!(
            c.try_insert_and_link(entry, path.clone(), 0.99),
            Err(TraceCacheError::Quarantined { remaining: 0, .. })
        ));
        // ...and the third succeeds with a fresh id.
        let (nid, created) = c.try_insert_and_link(entry, path.clone(), 0.99).unwrap();
        assert!(created);
        assert_ne!(nid, id);
        assert_eq!(c.lookup_entry(entry), Some(nid));
        assert_eq!(c.stats().quarantine_rejected, 2);
        assert_eq!(c.iter_quarantine().count(), 0);
    }

    #[test]
    fn quarantine_only_blocks_the_exact_path() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        c.quarantine(entry, 4);
        // A different path at the same entry is admitted.
        let (id, _) = c
            .try_insert_and_link(entry, vec![blk(1), blk(3)], 0.99)
            .expect("different path must be admitted");
        assert_eq!(c.lookup_entry(entry), Some(id));
        // The blacklisted path is still refused.
        assert!(c
            .try_insert_and_link(entry, vec![blk(1), blk(2)], 0.99)
            .is_err());
    }

    #[test]
    fn quarantine_without_link_is_a_noop() {
        let mut c = TraceCache::new();
        assert_eq!(c.quarantine((blk(0), blk(1)), 3), None);
        assert_eq!(c.iter_quarantine().count(), 0);
    }

    #[test]
    fn clearing_budget_disables_eviction() {
        let mut c = TraceCache::new();
        c.set_budget(Some(budget_for(1)));
        c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        c.set_budget(None);
        for i in 1..10u32 {
            c.insert_and_link(
                (blk(10 * i), blk(10 * i + 1)),
                vec![blk(10 * i + 1), blk(10 * i + 2)],
                0.99,
            );
        }
        assert_eq!(c.link_count(), 10);
        assert_eq!(c.stats().links_evicted, 0);
    }
}

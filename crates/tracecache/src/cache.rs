//! The hash-consed trace store.

use std::collections::HashMap;

use jvm_bytecode::BlockId;
use trace_bcg::node::NO_TRACE_LINK;
use trace_bcg::{Branch, BranchCorrelationGraph, BranchTable, NodeIdx, PackedBranch};

use crate::trace::{Trace, TraceId};

/// Cache bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// New trace objects constructed.
    pub traces_constructed: u64,
    /// Insertions that found an identical block sequence already cached
    /// ("the trace is retrieved and linked", §4.2).
    pub traces_reused: u64,
    /// Entry-branch links that replaced a different trace (cache
    /// instability events; the paper's stability criterion wants these
    /// rare, §3.6).
    pub links_replaced: u64,
    /// Entry branches currently linked.
    pub links_live: usize,
}

/// The trace cache: trace objects hash-consed by block sequence, plus the
/// dispatch table linking entry branches to traces.
///
/// Separating *trace objects* from *entry links* mirrors the paper: several
/// entry branches may be "linked into the code" against the same cached
/// sequence, and relinking an entry never destroys a trace object (old
/// ids stay valid for the execution monitor).
///
/// ```
/// use jvm_bytecode::{BlockId, FuncId};
/// use trace_cache::TraceCache;
///
/// let b = |i| BlockId::new(FuncId(0), i);
/// let mut cache = TraceCache::new();
/// let (id, created) = cache.insert_and_link((b(0), b(1)), vec![b(1), b(2)], 0.98);
/// assert!(created);
/// // Dispatch check: taking branch (b0, b1) enters the trace.
/// assert_eq!(cache.lookup_entry((b(0), b(1))), Some(id));
/// assert_eq!(cache.trace(id).len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TraceCache {
    traces: Vec<Trace>,
    /// Hash-consing index; only touched at construction time, so a std
    /// `HashMap` keyed by the full block sequence is fine here.
    by_blocks: HashMap<Vec<BlockId>, TraceId>,
    /// The dispatch table: entry branch → linked trace. Queried at every
    /// block boundary, hence the packed-key open-addressed table.
    by_entry: BranchTable<TraceId>,
    stats: CacheStats,
    /// Bumped on every link mutation; lets executors cache lookups.
    version: u64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct trace objects ever constructed.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Number of live entry links.
    pub fn link_count(&self) -> usize {
        self.by_entry.len()
    }

    /// A counter bumped on every entry-link mutation. An executor that
    /// caches `lookup_entry` results must revalidate when this changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Cache statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.links_live = self.by_entry.len();
        s
    }

    /// The trace with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn trace(&self, id: TraceId) -> &Trace {
        &self.traces[id.index()]
    }

    /// The trace linked at an entry branch, if any. This is the dispatch
    /// check performed when the interpreter takes a branch.
    #[inline]
    pub fn lookup_entry(&self, entry: Branch) -> Option<TraceId> {
        self.by_entry.get(PackedBranch::pack(entry))
    }

    /// The dispatch check via a BCG node's inline trace-link slot.
    ///
    /// `node` must be the BCG node of the branch being tested (the value
    /// [`BranchCorrelationGraph::observe`] just returned). While the
    /// node's stamp matches [`Self::version`], the slot answers directly
    /// — positive *or negative* — without hashing; the first lookup
    /// after any link mutation falls back to [`Self::lookup_entry`] and
    /// restamps the slot. Since almost every dispatch is a miss, caching
    /// negatives is what removes the per-block-boundary table probe.
    #[inline]
    pub fn lookup_entry_cached(
        &self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId> {
        let (stamp, raw) = bcg.node(node).trace_link();
        if stamp == self.version {
            let cached = if raw == NO_TRACE_LINK {
                None
            } else {
                Some(TraceId(raw))
            };
            #[cfg(feature = "debug-invariants")]
            assert_eq!(
                cached,
                self.lookup_entry(bcg.node(node).branch()),
                "inline trace-link slot diverged from the entry table at \
                 version {} for branch {:?}",
                self.version,
                bcg.node(node).branch()
            );
            return cached;
        }
        let found = self.lookup_entry(bcg.node(node).branch());
        bcg.set_trace_link(node, self.version, found.map_or(NO_TRACE_LINK, |t| t.0));
        found
    }

    /// Iterates over all `(entry branch, trace)` links.
    pub fn iter_links(&self) -> impl Iterator<Item = (Branch, &Trace)> {
        self.by_entry
            .iter()
            .map(|(b, id)| (b.unpack(), self.trace(id)))
    }

    /// Iterates over every trace object ever constructed (including ones
    /// no longer linked).
    pub fn iter_traces(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Hash-conses a block sequence into the cache and links it at
    /// `entry`. Returns the trace id and whether a new trace object was
    /// constructed.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or `entry.1 != blocks[0]` — the entry
    /// branch must land on the trace's first block.
    pub fn insert_and_link(
        &mut self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
    ) -> (TraceId, bool) {
        assert!(!blocks.is_empty(), "trace must contain at least one block");
        assert_eq!(
            entry.1, blocks[0],
            "entry branch must target the trace's first block"
        );
        let (id, created) = match self.by_blocks.get(&blocks) {
            Some(&id) => {
                self.stats.traces_reused += 1;
                (id, false)
            }
            None => {
                let id = TraceId(self.traces.len() as u32);
                self.traces.push(Trace {
                    id,
                    blocks: blocks.clone(),
                    expected_completion,
                });
                self.by_blocks.insert(blocks, id);
                self.stats.traces_constructed += 1;
                (id, true)
            }
        };
        match self.by_entry.insert(PackedBranch::pack(entry), id) {
            Some(old) if old != id => self.stats.links_replaced += 1,
            _ => {}
        }
        self.version += 1;
        #[cfg(feature = "debug-invariants")]
        self.assert_cache_invariants();
        (id, created)
    }

    /// Removes the link at an entry branch, if any. Used when a trace's
    /// entry is found to no longer satisfy the criteria.
    pub fn unlink(&mut self, entry: Branch) -> Option<TraceId> {
        let removed = self.by_entry.remove(PackedBranch::pack(entry));
        if removed.is_some() {
            self.version += 1;
            #[cfg(feature = "debug-invariants")]
            self.assert_cache_invariants();
        }
        removed
    }

    /// Machine-checked structural invariants, asserted after every link
    /// mutation when the `debug-invariants` feature is on:
    ///
    /// - **hash-consing uniqueness** — the block-sequence index has
    ///   exactly one entry per trace object, every entry round-trips to a
    ///   trace with that exact sequence, and no two trace objects share a
    ///   sequence (§4.2: an identical trace "is retrieved and linked",
    ///   never duplicated);
    /// - **id coherence** — `traces[i].id == i`;
    /// - **link validity** — every entry link targets an in-range trace
    ///   whose first block is the entry branch's target, and the trace is
    ///   non-empty with a completion estimate in `(0, 1]`.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_cache_invariants(&self) {
        assert_eq!(
            self.by_blocks.len(),
            self.traces.len(),
            "hash-consing index must have exactly one entry per trace"
        );
        for (i, t) in self.traces.iter().enumerate() {
            assert_eq!(t.id.index(), i, "trace id must equal its slot");
            assert!(!t.blocks.is_empty(), "cached trace must be non-empty");
            assert!(
                t.expected_completion > 0.0 && t.expected_completion <= 1.0,
                "completion estimate {} out of (0, 1] for trace {i}",
                t.expected_completion
            );
            assert_eq!(
                self.by_blocks.get(&t.blocks),
                Some(&t.id),
                "trace {i} must be findable under its own block sequence"
            );
        }
        for (entry, id) in self.by_entry.iter() {
            let (_, to) = entry.unpack();
            assert!(
                id.index() < self.traces.len(),
                "entry link targets out-of-range trace {id:?}"
            );
            assert_eq!(
                self.traces[id.index()].blocks[0],
                to,
                "entry link must land on its trace's first block"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    #[test]
    fn insert_links_and_retrieves() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, created) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert!(created);
        assert_eq!(c.lookup_entry(entry), Some(id));
        assert_eq!(c.trace(id).blocks(), &[blk(1), blk(2)]);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 1);
    }

    #[test]
    fn hash_consing_reuses_identical_sequences() {
        let mut c = TraceCache::new();
        let (a, created_a) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        // Same sequence, different entry context.
        let (b, created_b) = c.insert_and_link((blk(9), blk(1)), vec![blk(1), blk(2)], 0.98);
        assert!(created_a);
        assert!(!created_b);
        assert_eq!(a, b);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 2);
        assert_eq!(c.stats().traces_reused, 1);
    }

    #[test]
    fn relinking_replaces_and_counts_instability() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (a, _) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        let (b, _) = c.insert_and_link(entry, vec![blk(1), blk(3)], 0.99);
        assert_ne!(a, b);
        assert_eq!(c.lookup_entry(entry), Some(b));
        assert_eq!(c.stats().links_replaced, 1);
        // Relinking the identical trace is not instability.
        let _ = c.insert_and_link(entry, vec![blk(1), blk(3)], 0.99);
        assert_eq!(c.stats().links_replaced, 1);
        // Old trace object still retrievable by id.
        assert_eq!(c.trace(a).blocks(), &[blk(1), blk(2)]);
    }

    #[test]
    fn unlink_removes_entry_but_keeps_trace() {
        let mut c = TraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, _) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.unlink(entry), Some(id));
        assert_eq!(c.lookup_entry(entry), None);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.unlink(entry), None);
    }

    #[test]
    #[should_panic(expected = "entry branch must target")]
    fn entry_must_match_first_block() {
        let mut c = TraceCache::new();
        let _ = c.insert_and_link((blk(0), blk(5)), vec![blk(1), blk(2)], 0.99);
    }

    #[test]
    fn iterators_cover_links_and_traces() {
        let mut c = TraceCache::new();
        c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.9);
        c.insert_and_link((blk(2), blk(3)), vec![blk(3), blk(4)], 0.9);
        assert_eq!(c.iter_links().count(), 2);
        assert_eq!(c.iter_traces().count(), 2);
    }

    /// Builds a BCG whose node for `(blk(0), blk(1))` exists, returning
    /// the graph and that node's index.
    fn bcg_with_branch() -> (trace_bcg::BranchCorrelationGraph, NodeIdx) {
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        bcg.observe(blk(0));
        let n = bcg.observe(blk(1)).expect("branch node");
        (bcg, n)
    }

    #[test]
    fn cached_lookup_caches_negative_results() {
        let (mut bcg, n) = bcg_with_branch();
        let c = TraceCache::new();
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        // Slot is stamped with the current version and the no-link mark.
        assert_eq!(bcg.node(n).trace_link(), (c.version(), NO_TRACE_LINK));
        // Second query answers from the slot (same stamp, still None).
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
    }

    #[test]
    fn insert_and_link_invalidates_cached_negative() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        // The version bump makes the stale negative stamp miss, so the
        // next cached lookup revalidates and finds the new link.
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(bcg.node(n).trace_link(), (c.version(), id.0));
    }

    #[test]
    fn unlink_invalidates_cached_positive() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(c.unlink((blk(0), blk(1))), Some(id));
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        assert_eq!(bcg.node(n).trace_link(), (c.version(), NO_TRACE_LINK));
    }

    #[test]
    fn unrelated_link_mutations_restamp_but_preserve_answers() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        // A mutation elsewhere bumps the version; the slot revalidates to
        // the same positive answer.
        c.insert_and_link((blk(7), blk(8)), vec![blk(8), blk(9)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(bcg.node(n).trace_link(), (c.version(), id.0));
    }

    #[test]
    fn relinking_entry_updates_cached_answer_across_versions() {
        let (mut bcg, n) = bcg_with_branch();
        let mut c = TraceCache::new();
        let (a, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(a));
        let (b, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(3)], 0.99);
        assert_ne!(a, b);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(b));
    }

    #[test]
    fn cached_lookup_always_agrees_with_direct_lookup() {
        // Churn links while interleaving cached and direct lookups: the
        // slot path must never diverge from the table.
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        let mut nodes = Vec::new();
        bcg.observe(blk(0));
        for i in 1..8u32 {
            nodes.push((blk(i - 1), blk(i), bcg.observe(blk(i)).unwrap()));
        }
        let mut c = TraceCache::new();
        for round in 0..50u32 {
            let i = (round % 7) as usize;
            let (from, to, _) = nodes[i];
            if round % 3 == 0 {
                c.insert_and_link((from, to), vec![to, blk(to.block + 1)], 0.99);
            } else if round % 3 == 1 {
                c.unlink((from, to));
            }
            for &(from, to, n) in &nodes {
                assert_eq!(
                    c.lookup_entry_cached(&mut bcg, n),
                    c.lookup_entry((from, to)),
                    "slot diverged at round {round}"
                );
            }
        }
    }
}

//! Whole-lifetime trace health: telemetry, scoring, and the demotion
//! ladder.
//!
//! The paper admits a trace when its completion probability at
//! *construction time* clears the threshold (§3.7) — and never revisits
//! that decision. A trace whose branch behavior shifts after admission
//! (a workload phase change, or a warm-boot snapshot restored into
//! drifted behavior) degrades into a side-exit treadmill that is
//! strictly worse than interpreting. This module closes the loop:
//!
//! * **Telemetry** ([`TraceHealth`]): per-trace lifetime entries,
//!   completions, per-guard side-exit counts, and the consecutive
//!   early-exit streak, recorded from [`OutcomeRecord`]s the executor
//!   batches per dispatch.
//! * **Scoring**: an EWMA of the per-epoch completion rate, synced to
//!   the profiler's decay epoch (the 256-exec window of §4.1.1) so the
//!   health clock and the counter-decay clock tick together.
//! * **The demotion ladder**: healthy → probation (re-checked next
//!   epoch) → demoted. A demotion hands the `(entry, path)` key to the
//!   cache's quarantine with a cooldown, so re-admission goes back
//!   through the constructor and the paper's admission rules re-apply.
//! * **Hysteresis**: the cooldown escalates exponentially with each
//!   demotion at the same entry, and a re-admitted trace at a
//!   previously-demoted entry starts on probation — so a trace cannot
//!   flap demote/re-admit more than once per cooldown.
//!
//! Health counters are deliberately **excluded from snapshots**: a
//! warm-booted trace must prove itself against live behavior, not be
//! trusted on stale evidence. The ledger creates entries lazily on the
//! first recorded outcome, so restored traces are picked up the moment
//! they run.

use std::collections::HashMap;

use trace_bcg::{Branch, PackedBranch};

use crate::trace::TraceId;

/// Cap on per-guard side-exit sites tracked individually per trace;
/// exits deeper than this are folded into the last bucket.
pub const GUARD_SITES_TRACKED: usize = 32;

/// Tunable thresholds of the health scorer and demotion ladder.
///
/// The defaults are transcribed verbatim into the conformance model
/// (`ModelHealth`); change them in both places or the lockstep harness
/// will flag the divergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Weight of the newest epoch's completion rate in the EWMA:
    /// `ewma = alpha * rate + (1 - alpha) * ewma`.
    pub ewma_alpha: f64,
    /// EWMA completion rate below which a healthy trace enters
    /// probation, and a probationary trace is demoted.
    pub probation_rate: f64,
    /// Minimum entries in an epoch for its completion rate to count —
    /// fewer and the epoch is skipped (too little evidence to judge).
    pub min_epoch_entries: u64,
    /// Consecutive early exits (no completion in between) at an epoch
    /// boundary that demote the trace outright, from any ladder state.
    pub streak_limit: u32,
    /// Base quarantine cooldown (refused construction attempts) handed
    /// to the cache on demotion.
    pub cooldown: u32,
    /// Cap on the hysteresis escalation: the effective cooldown is
    /// `cooldown << min(flaps - 1, max_cooldown_shift)`.
    pub max_cooldown_shift: u32,
    /// Ledger entries idle (zero entries) for this many consecutive
    /// epochs are pruned; the trace re-registers on its next outcome.
    pub idle_epochs_pruned: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            ewma_alpha: 0.5,
            probation_rate: 0.5,
            min_epoch_entries: 8,
            streak_limit: 16,
            cooldown: 4,
            max_cooldown_shift: 4,
            idle_epochs_pruned: 4,
        }
    }
}

/// Ladder state of a tracked trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Completing as admitted.
    #[default]
    Healthy,
    /// Flagged unhealthy last epoch; demoted if still unhealthy at the
    /// next epoch check.
    Probation,
}

/// Why a trace was demoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DemotionCause {
    /// EWMA completion rate stayed below the probation threshold for
    /// two consecutive judged epochs.
    LowCompletion,
    /// The consecutive early-exit streak hit the limit.
    ExitStreak,
}

/// Lifetime telemetry for one live trace.
#[derive(Debug, Clone)]
pub struct TraceHealth {
    /// Entry branch of the most recent dispatch (the key handed to
    /// quarantine on demotion).
    pub entry: Branch,
    /// Lifetime dispatches into the trace.
    pub entries: u64,
    /// Lifetime completions.
    pub completions: u64,
    /// Lifetime early exits.
    pub early_exits: u64,
    /// Side exits per guard site (block position within the trace);
    /// sites past [`GUARD_SITES_TRACKED`] fold into the last bucket.
    pub guard_exits: Vec<u32>,
    /// Consecutive early exits since the last completion.
    pub streak: u32,
    /// EWMA of the per-epoch completion rate (see [`HealthPolicy`]).
    pub ewma: f64,
    /// Judged epochs so far (epochs with enough entries to score).
    pub judged_epochs: u64,
    /// Entries in the current (unfinished) epoch window.
    pub epoch_entries: u64,
    /// Completions in the current epoch window.
    pub epoch_completions: u64,
    /// Consecutive epochs with zero entries (prune clock).
    pub idle_epochs: u32,
    /// Current ladder state.
    pub state: HealthState,
}

impl TraceHealth {
    fn new(entry: Branch, state: HealthState) -> Self {
        TraceHealth {
            entry,
            entries: 0,
            completions: 0,
            early_exits: 0,
            guard_exits: Vec::new(),
            streak: 0,
            ewma: 1.0,
            judged_epochs: 0,
            epoch_entries: 0,
            epoch_completions: 0,
            idle_epochs: 0,
            state,
        }
    }

    /// Lifetime completion rate; 1.0 before any entry.
    pub fn completion_rate(&self) -> f64 {
        if self.entries == 0 {
            1.0
        } else {
            self.completions as f64 / self.entries as f64
        }
    }

    /// The guard site with the most side exits, as `(site, count)`.
    pub fn hottest_exit(&self) -> Option<(usize, u32)> {
        self.guard_exits
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, &c)| (i, c))
    }
}

/// What a trace dispatch did, from the health monitor's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// The trace ran every block (a program-finishing dispatch counts
    /// as a completion too).
    Completed,
    /// A guard failed at `site` (the number of blocks completed before
    /// the exit; 0 = immediate entry exit).
    SideExit {
        /// Blocks completed before the exit.
        site: u32,
    },
}

/// One trace dispatch outcome, batched by the executor and flushed to
/// the store at epoch boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// The trace that ran.
    pub tid: TraceId,
    /// The entry branch it was dispatched from.
    pub entry: Branch,
    /// What happened.
    pub outcome: TraceOutcome,
}

/// A demotion decision: unlink + tombstone the trace and blacklist its
/// `(entry, path)` key for `cooldown` refused construction attempts.
#[derive(Debug, Clone, Copy)]
pub struct Demotion {
    /// The trace to demote.
    pub tid: TraceId,
    /// Its entry branch (quarantine key).
    pub entry: Branch,
    /// Cooldown after hysteresis escalation.
    pub cooldown: u32,
    /// Why.
    pub cause: DemotionCause,
}

/// Ledger counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Outcome records ingested.
    pub recorded: u64,
    /// Recorded completions.
    pub completions: u64,
    /// Recorded side exits.
    pub side_exits: u64,
    /// Health epochs run.
    pub epochs: u64,
    /// Healthy → probation transitions.
    pub probations: u64,
    /// Probation → healthy recoveries.
    pub recoveries: u64,
    /// Demotion decisions issued.
    pub demotions: u64,
    /// Demotions caused by the early-exit streak limit.
    pub streak_demotions: u64,
    /// Re-admissions at a previously-demoted entry (start on probation).
    pub readmitted_watched: u64,
    /// Demotions whose cooldown was escalated by hysteresis (the entry
    /// had flapped before).
    pub cooldown_escalations: u64,
    /// Idle ledger entries pruned.
    pub pruned: u64,
    /// Traces currently tracked.
    pub tracked: u64,
}

/// The health ledger: per-trace telemetry plus the flap memory that
/// implements hysteresis. Owned by the cache (both implementations) so
/// the policy is written once and dispatched through
/// [`crate::TraceStore`].
#[derive(Debug, Default)]
pub struct HealthLedger {
    policy: HealthPolicy,
    traces: HashMap<u32, TraceHealth>,
    /// Packed entry key → demotions at that entry so far. The memory
    /// behind hysteresis: never pruned (one `u64 → u32` per entry that
    /// ever misbehaved).
    flaps: HashMap<u64, u32>,
    stats: HealthStats,
}

impl HealthLedger {
    /// A ledger with the given policy.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthLedger {
            policy,
            ..Default::default()
        }
    }

    /// The active policy.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Counter snapshot (with `tracked` filled in).
    pub fn stats(&self) -> HealthStats {
        let mut s = self.stats;
        s.tracked = self.traces.len() as u64;
        s
    }

    /// Telemetry for a tracked trace.
    pub fn health_of(&self, tid: TraceId) -> Option<&TraceHealth> {
        self.traces.get(&tid.0)
    }

    /// Iterates tracked traces in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TraceId, &TraceHealth)> {
        let mut ids: Vec<u32> = self.traces.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(|i| (TraceId(i), &self.traces[&i]))
    }

    /// Demotions at this entry so far (the hysteresis flap count).
    pub fn flaps(&self, entry: Branch) -> u32 {
        self.flaps
            .get(&PackedBranch::pack(entry).0)
            .copied()
            .unwrap_or(0)
    }

    /// Called on every successful cache admission. An entry that has
    /// flapped before starts its new trace on probation — the second
    /// half of the hysteresis: the very next unhealthy epoch demotes it
    /// again (with a longer cooldown) instead of granting the usual
    /// healthy-epoch grace.
    pub fn note_admission(&mut self, tid: TraceId, entry: Branch) {
        if self.flaps.contains_key(&PackedBranch::pack(entry).0) {
            self.traces
                .insert(tid.0, TraceHealth::new(entry, HealthState::Probation));
            self.stats.readmitted_watched += 1;
        }
    }

    /// Drops a trace from the ledger (it was tombstoned outside the
    /// health path: budget eviction, fast-trigger quarantine, …).
    pub fn forget(&mut self, tid: TraceId) {
        self.traces.remove(&tid.0);
    }

    /// Ingests one dispatch outcome. Unknown traces (including ones
    /// restored from a snapshot — health is never serialized) register
    /// lazily here.
    pub fn record(&mut self, rec: &OutcomeRecord) {
        self.record_run(rec, 1);
    }

    /// Records `n` identical consecutive outcomes in one step — exactly
    /// equivalent to calling [`HealthLedger::record`] `n` times with
    /// `rec`, but with a single ledger lookup. The executor's outcome
    /// buffer is run-length encoded (a hot loop produces long runs of
    /// identical outcomes for the same trace), and this is its flush
    /// path: `n` completions add `n` to the counters and reset the
    /// streak once; `n` side exits extend the streak by `n`.
    pub fn record_run(&mut self, rec: &OutcomeRecord, n: u64) {
        if n == 0 {
            return;
        }
        let h = self
            .traces
            .entry(rec.tid.0)
            .or_insert_with(|| TraceHealth::new(rec.entry, HealthState::Healthy));
        h.entry = rec.entry;
        h.entries += n;
        h.epoch_entries += n;
        self.stats.recorded += n;
        match rec.outcome {
            TraceOutcome::Completed => {
                h.completions += n;
                h.epoch_completions += n;
                h.streak = 0;
                self.stats.completions += n;
            }
            TraceOutcome::SideExit { site } => {
                h.early_exits += n;
                h.streak = h.streak.saturating_add(n.min(u32::MAX as u64) as u32);
                let slot = (site as usize).min(GUARD_SITES_TRACKED - 1);
                if h.guard_exits.len() <= slot {
                    h.guard_exits.resize(slot + 1, 0);
                }
                h.guard_exits[slot] =
                    h.guard_exits[slot].saturating_add(n.min(u32::MAX as u64) as u32);
                self.stats.side_exits += n;
            }
        }
    }

    /// Closes the current epoch window: scores every tracked trace,
    /// walks the demotion ladder, and returns the demotion decisions in
    /// ascending trace-id order (deterministic, so the conformance
    /// model can mirror it exactly). The caller applies them through
    /// [`crate::run_health_epoch`].
    pub fn epoch(&mut self) -> Vec<Demotion> {
        self.stats.epochs += 1;
        let p = self.policy;
        let mut demotions = Vec::new();
        let mut ids: Vec<u32> = self.traces.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let h = self.traces.get_mut(&id).expect("id collected above");
            if h.epoch_entries == 0 {
                h.idle_epochs += 1;
                if h.idle_epochs >= p.idle_epochs_pruned {
                    self.traces.remove(&id);
                    self.stats.pruned += 1;
                }
                continue;
            }
            h.idle_epochs = 0;
            let judged = h.epoch_entries >= p.min_epoch_entries;
            if judged {
                let rate = h.epoch_completions as f64 / h.epoch_entries as f64;
                h.ewma = if h.judged_epochs == 0 {
                    rate
                } else {
                    p.ewma_alpha * rate + (1.0 - p.ewma_alpha) * h.ewma
                };
                h.judged_epochs += 1;
            }
            h.epoch_entries = 0;
            h.epoch_completions = 0;
            let cause = if h.streak >= p.streak_limit {
                Some(DemotionCause::ExitStreak)
            } else if judged && h.ewma < p.probation_rate {
                match h.state {
                    HealthState::Healthy => {
                        h.state = HealthState::Probation;
                        self.stats.probations += 1;
                        None
                    }
                    HealthState::Probation => Some(DemotionCause::LowCompletion),
                }
            } else {
                if judged && h.state == HealthState::Probation {
                    h.state = HealthState::Healthy;
                    self.stats.recoveries += 1;
                }
                None
            };
            if let Some(cause) = cause {
                let entry = h.entry;
                let key = PackedBranch::pack(entry).0;
                let flaps = self.flaps.entry(key).or_insert(0);
                *flaps += 1;
                let shift = (*flaps - 1).min(p.max_cooldown_shift);
                if shift > 0 {
                    self.stats.cooldown_escalations += 1;
                }
                self.stats.demotions += 1;
                if cause == DemotionCause::ExitStreak {
                    self.stats.streak_demotions += 1;
                }
                demotions.push(Demotion {
                    tid: TraceId(id),
                    entry,
                    cooldown: p.cooldown << shift,
                    cause,
                });
                self.traces.remove(&id);
            }
        }
        demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{BlockId, FuncId};

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn entry() -> Branch {
        (blk(0), blk(1))
    }

    fn rec(tid: u32, outcome: TraceOutcome) -> OutcomeRecord {
        OutcomeRecord {
            tid: TraceId(tid),
            entry: entry(),
            outcome,
        }
    }

    fn feed(l: &mut HealthLedger, tid: u32, completions: u64, exits: u64) {
        for _ in 0..completions {
            l.record(&rec(tid, TraceOutcome::Completed));
        }
        for _ in 0..exits {
            l.record(&rec(tid, TraceOutcome::SideExit { site: 1 }));
        }
    }

    #[test]
    fn healthy_trace_stays_healthy() {
        let mut l = HealthLedger::default();
        for _ in 0..3 {
            feed(&mut l, 0, 16, 1);
            assert!(l.epoch().is_empty());
        }
        let h = l.health_of(TraceId(0)).unwrap();
        assert_eq!(h.state, HealthState::Healthy);
        assert!(h.ewma > 0.9);
        assert_eq!(l.stats().probations, 0);
    }

    #[test]
    fn ladder_demotes_after_probation_not_before() {
        let mut l = HealthLedger::default();
        // First bad epoch: probation, no demotion.
        feed(&mut l, 0, 2, 14);
        assert!(l.epoch().is_empty());
        assert_eq!(
            l.health_of(TraceId(0)).unwrap().state,
            HealthState::Probation
        );
        assert_eq!(l.stats().probations, 1);
        // Second bad epoch: demoted.
        feed(&mut l, 0, 2, 14);
        let d = l.epoch();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].tid, TraceId(0));
        assert_eq!(d[0].cause, DemotionCause::LowCompletion);
        assert_eq!(d[0].cooldown, HealthPolicy::default().cooldown);
        assert!(l.health_of(TraceId(0)).is_none(), "demoted ⇒ untracked");
    }

    #[test]
    fn probation_recovers_on_a_good_epoch() {
        let mut l = HealthLedger::default();
        feed(&mut l, 0, 2, 14);
        assert!(l.epoch().is_empty());
        feed(&mut l, 0, 16, 0);
        assert!(l.epoch().is_empty());
        assert_eq!(l.health_of(TraceId(0)).unwrap().state, HealthState::Healthy);
        assert_eq!(l.stats().recoveries, 1);
        // EWMA carries history: one good epoch after a terrible one
        // leaves the average mid-range.
        let ewma = l.health_of(TraceId(0)).unwrap().ewma;
        assert!(ewma > 0.5 && ewma < 1.0, "ewma {ewma}");
    }

    #[test]
    fn exit_streak_demotes_from_any_state() {
        let mut l = HealthLedger::default();
        // 16 straight side exits in the very first epoch: demoted
        // without passing through probation.
        feed(&mut l, 0, 0, 16);
        let d = l.epoch();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cause, DemotionCause::ExitStreak);
        assert_eq!(l.stats().streak_demotions, 1);
    }

    #[test]
    fn completion_resets_streak() {
        let mut l = HealthLedger::default();
        for _ in 0..3 {
            feed(&mut l, 0, 0, 10);
            feed(&mut l, 0, 1, 0);
        }
        // 30 exits but never 16 consecutive: streak never fires. The
        // EWMA ladder fires instead (rate ≈ 0.09): probation epoch 1.
        assert!(l.epoch().is_empty());
        assert_eq!(l.health_of(TraceId(0)).unwrap().streak, 0);
    }

    #[test]
    fn sparse_epochs_are_not_judged() {
        let mut l = HealthLedger::default();
        // Under min_epoch_entries: a 0% completion rate is not judged.
        for _ in 0..4 {
            feed(&mut l, 0, 0, 4);
            feed(&mut l, 0, 1, 0); // resets streak
            assert!(l.epoch().is_empty());
        }
        assert_eq!(l.health_of(TraceId(0)).unwrap().state, HealthState::Healthy);
        assert_eq!(l.health_of(TraceId(0)).unwrap().judged_epochs, 0);
    }

    #[test]
    fn hysteresis_escalates_cooldown_and_watches_readmission() {
        let mut l = HealthLedger::default();
        let base = HealthPolicy::default().cooldown;
        // First demotion at this entry: base cooldown.
        feed(&mut l, 0, 0, 16);
        let d = l.epoch();
        assert_eq!(d[0].cooldown, base);
        assert_eq!(l.flaps(entry()), 1);
        // Re-admission at the same entry: starts on probation...
        l.note_admission(TraceId(1), entry());
        assert_eq!(
            l.health_of(TraceId(1)).unwrap().state,
            HealthState::Probation
        );
        assert_eq!(l.stats().readmitted_watched, 1);
        // ...so ONE unhealthy epoch demotes it, with a doubled cooldown.
        feed(&mut l, 1, 2, 14);
        let d = l.epoch();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].cooldown, base << 1);
        assert_eq!(l.stats().cooldown_escalations, 1);
        // Escalation is capped.
        for i in 2..10u32 {
            l.note_admission(TraceId(i), entry());
            feed(&mut l, i, 2, 14);
            let d = l.epoch();
            assert_eq!(d.len(), 1);
            let cap = base << HealthPolicy::default().max_cooldown_shift;
            assert!(
                d[0].cooldown <= cap,
                "cooldown {} > cap {cap}",
                d[0].cooldown
            );
        }
    }

    #[test]
    fn fresh_entry_admission_is_untracked_until_it_runs() {
        let mut l = HealthLedger::default();
        l.note_admission(TraceId(0), entry());
        assert!(l.health_of(TraceId(0)).is_none(), "no flap ⇒ lazy");
        l.record(&rec(0, TraceOutcome::Completed));
        assert!(l.health_of(TraceId(0)).is_some());
    }

    #[test]
    fn idle_entries_are_pruned() {
        let mut l = HealthLedger::default();
        feed(&mut l, 0, 16, 0);
        for _ in 0..HealthPolicy::default().idle_epochs_pruned + 1 {
            let _ = l.epoch();
        }
        assert!(l.health_of(TraceId(0)).is_none());
        assert_eq!(l.stats().pruned, 1);
    }

    #[test]
    fn guard_exit_sites_are_counted_and_capped() {
        let mut l = HealthLedger::default();
        l.record(&rec(0, TraceOutcome::SideExit { site: 2 }));
        l.record(&rec(0, TraceOutcome::SideExit { site: 2 }));
        l.record(&rec(0, TraceOutcome::SideExit { site: 500 }));
        let h = l.health_of(TraceId(0)).unwrap();
        assert_eq!(h.guard_exits[2], 2);
        assert_eq!(h.guard_exits[GUARD_SITES_TRACKED - 1], 1);
        assert_eq!(h.hottest_exit(), Some((2, 2)));
    }

    #[test]
    fn demotions_come_out_in_id_order() {
        let mut l = HealthLedger::default();
        for tid in [5u32, 1, 3] {
            for _ in 0..16 {
                l.record(&OutcomeRecord {
                    tid: TraceId(tid),
                    entry: (blk(10 * tid), blk(10 * tid + 1)),
                    outcome: TraceOutcome::SideExit { site: 0 },
                });
            }
        }
        let d = l.epoch();
        let ids: Vec<u32> = d.iter().map(|d| d.tid.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}

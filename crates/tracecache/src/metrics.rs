//! Trace execution metrics.
//!
//! These counters back the paper's five dependent values (§5.2): average
//! executed trace length, instruction stream coverage, dynamic trace
//! completion rate, and — combined with profiler statistics — the state
//! signal rate and trace event interval.

/// Counters accumulated by the [`crate::TraceRuntime`] dispatch monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceExecStats {
    /// Traces entered (each entry is one trace dispatch).
    pub entered: u64,
    /// Traces that executed to completion.
    pub completed: u64,
    /// Traces exited before their last block.
    pub exited_early: u64,
    /// Blocks executed inside completed traces.
    pub blocks_in_completed: u64,
    /// Blocks executed inside partially executed traces before exit.
    pub blocks_in_partial: u64,
    /// Instructions executed inside completed traces.
    pub instrs_in_completed: u64,
    /// Instructions executed inside partially executed traces.
    pub instrs_in_partial: u64,
    /// Blocks dispatched outside any trace.
    pub blocks_outside: u64,
    /// Block-dispatch count at the first trace entry of the run in which
    /// traces were first entered (`0` = no trace has ever been entered).
    /// Warm-up metric: a cold VM pays the full profile-build interval
    /// before this fires; a warm-booted VM should reach it almost
    /// immediately.
    pub first_entry_dispatch: u64,
}

impl TraceExecStats {
    /// Average executed trace length in blocks, over *completed* traces
    /// (the paper's Table I quantity). 0.0 when nothing completed.
    pub fn avg_completed_length(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.blocks_in_completed as f64 / self.completed as f64
        }
    }

    /// Dynamic trace completion rate: completed / entered (Table III).
    /// 0.0 when nothing was entered.
    pub fn completion_rate(&self) -> f64 {
        if self.entered == 0 {
            0.0
        } else {
            self.completed as f64 / self.entered as f64
        }
    }

    /// Instruction stream coverage by **completed** traces, given the
    /// total instructions the program executed (Table II).
    pub fn coverage_completed(&self, total_instructions: u64) -> f64 {
        if total_instructions == 0 {
            0.0
        } else {
            self.instrs_in_completed as f64 / total_instructions as f64
        }
    }

    /// Instruction stream coverage including partially executed traces
    /// (the paper's "the trace cache captures 90.7%" refinement).
    pub fn coverage_incl_partial(&self, total_instructions: u64) -> f64 {
        if total_instructions == 0 {
            0.0
        } else {
            (self.instrs_in_completed + self.instrs_in_partial) as f64 / total_instructions as f64
        }
    }

    /// Total dispatches under the trace-dispatch model: one per trace
    /// entered plus one per out-of-trace block (the Table VII quantity).
    pub fn trace_dispatches(&self) -> u64 {
        self.entered + self.blocks_outside
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceExecStats {
        TraceExecStats {
            entered: 10,
            completed: 9,
            exited_early: 1,
            blocks_in_completed: 45,
            blocks_in_partial: 2,
            instrs_in_completed: 450,
            instrs_in_partial: 20,
            blocks_outside: 30,
            first_entry_dispatch: 3,
        }
    }

    #[test]
    fn derived_quantities() {
        let s = sample();
        assert_eq!(s.avg_completed_length(), 5.0);
        assert_eq!(s.completion_rate(), 0.9);
        assert_eq!(s.coverage_completed(1000), 0.45);
        assert_eq!(s.coverage_incl_partial(1000), 0.47);
        assert_eq!(s.trace_dispatches(), 40);
    }

    #[test]
    fn empty_stats_degenerate_gracefully() {
        let s = TraceExecStats::default();
        assert_eq!(s.avg_completed_length(), 0.0);
        assert_eq!(s.completion_rate(), 0.0);
        assert_eq!(s.coverage_completed(0), 0.0);
        assert_eq!(s.trace_dispatches(), 0);
    }
}

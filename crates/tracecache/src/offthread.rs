//! Off-thread trace construction.
//!
//! The in-thread pipeline reacts to profiler signals by back-tracking,
//! walking and cutting the BCG *on the dispatch thread* — construction
//! cost lands squarely in the interpreter's hot loop. This module moves
//! it off-thread:
//!
//! 1. When a dispatch thread drains a signal batch, it captures a
//!    [`BcgSnapshot`] — a bounded, self-contained copy of the graph
//!    region the planner could possibly examine — and `try_send`s it
//!    down a bounded [`ConstructionQueue`].
//! 2. A background thread ([`run_constructor_service`]) drains the
//!    queue, runs the identical planning algorithm
//!    ([`crate::plan_for_signal`]) against the frozen snapshot, lowers
//!    artifacts, and publishes results into a
//!    [`SharedTraceCache`](crate::SharedTraceCache).
//!
//! # Graceful degradation
//!
//! The queue is bounded and the dispatch thread never blocks on it. If
//! the queue is full the batch is **dropped** — and because the profiler
//! only signals on *changes*, a dropped signal would otherwise be lost
//! forever (the node's state won't change again while it stays hot).
//! The dispatch thread therefore parks the dropped batch back into the
//! BCG with [`BranchCorrelationGraph::defer_signals`]; the profiler
//! re-raises the parked signals at its next decay cycle, when the queue
//! has likely drained. Construction is delayed, never silently skipped.
//!
//! # Staleness
//!
//! The snapshot is a moment-in-time copy: by the time the constructor
//! plans it, the live graph has moved on. That is the same tolerance the
//! paper already demands of the single-threaded design (signals are
//! processed after the dispatch that caused them), just with a longer
//! window. A trace built from a stale snapshot is still a *valid* trace
//! — guards catch any path the program no longer takes — and the next
//! signal about the region replaces the link.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use jvm_bytecode::BlockId;
use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx, NodeState, Signal};

use crate::constructor::{plan_for_signal, ConstructorConfig, CorrelationView, LinkOp, TracePlan};
use crate::faults::{FaultPlan, FaultSite};
use crate::shared::SharedTraceCache;

/// Sentinel for successor targets that fell outside the captured region.
const SNAP_NONE: NodeIdx = NodeIdx(u32::MAX);

/// Default cap on nodes per snapshot; regions the planner can examine
/// are far smaller in practice (`max_path_nodes` bounds each walk).
pub const SNAPSHOT_NODE_LIMIT: usize = 4096;

#[derive(Debug, Clone)]
struct SnapNode {
    branch: Branch,
    state: NodeState,
    total_weight: u32,
    /// `(to_block, count, target)` with `target` remapped to a snapshot
    /// index, or [`SNAP_NONE`] if the target was not captured. Slot
    /// order matches the live node, preserving max-successor tie
    /// breaking.
    succs: Vec<(BlockId, u16, NodeIdx)>,
    /// Predecessors that were captured, remapped. (Uncaptured preds are
    /// by construction unqualified for back-tracking.)
    preds: Vec<NodeIdx>,
}

/// A bounded, immutable copy of the BCG region reachable from a signal
/// batch — everything [`plan_for_signal`] could examine: the transitive
/// qualified-predecessor closure (entry-point back-tracking) and the
/// maximum-likelihood forward closure (path walking).
///
/// Node indices are snapshot-local; the snapshot implements
/// [`CorrelationView`] so the planner runs on it unchanged.
#[derive(Debug, Clone)]
pub struct BcgSnapshot {
    nodes: Vec<SnapNode>,
    /// Snapshot-local indices of the signal origins, in batch order.
    origins: Vec<NodeIdx>,
    truncated: bool,
}

impl BcgSnapshot {
    /// Captures the region around `signals` with the default node cap.
    pub fn capture(bcg: &BranchCorrelationGraph, signals: &[Signal]) -> Self {
        Self::capture_bounded(bcg, signals, SNAPSHOT_NODE_LIMIT)
    }

    /// Captures with an explicit node cap. If the cap is hit the
    /// snapshot is marked [`truncated`](Self::is_truncated); planning
    /// still works but walks may end early (shorter traces, never wrong
    /// ones).
    pub fn capture_bounded(bcg: &BranchCorrelationGraph, signals: &[Signal], limit: usize) -> Self {
        let mut map: HashMap<NodeIdx, u32> = HashMap::new();
        let mut order: Vec<NodeIdx> = Vec::new();
        let mut work: Vec<NodeIdx> = Vec::new();
        let mut truncated = false;
        let mut include = |n: NodeIdx,
                           map: &mut HashMap<NodeIdx, u32>,
                           order: &mut Vec<NodeIdx>,
                           work: &mut Vec<NodeIdx>|
         -> bool {
            if map.contains_key(&n) {
                return true;
            }
            if order.len() >= limit {
                truncated = true;
                return false;
            }
            map.insert(n, order.len() as u32);
            order.push(n);
            work.push(n);
            true
        };

        let mut origins = Vec::with_capacity(signals.len());
        for sig in signals {
            if include(sig.node, &mut map, &mut order, &mut work) {
                origins.push(NodeIdx(map[&sig.node]));
            }
        }
        while let Some(n) = work.pop() {
            let node = bcg.node(n);
            // Backward: predecessors that qualify for entry-point
            // back-tracking (same filter as the planner applies).
            for &p in node.predecessors() {
                let pn = bcg.node(p);
                if pn.state().is_traceable() && pn.max_successor().is_some_and(|s| s.node == n) {
                    include(p, &mut map, &mut order, &mut work);
                }
            }
            // Forward: the maximum-likelihood successor (the only edge a
            // path walk can follow out of `n`).
            if node.state().is_traceable() {
                if let Some(ms) = node.max_successor() {
                    if ms.count > 0 {
                        include(ms.node, &mut map, &mut order, &mut work);
                    }
                }
            }
        }

        let nodes = order
            .iter()
            .map(|&orig| {
                let node = bcg.node(orig);
                SnapNode {
                    branch: node.branch(),
                    state: node.state(),
                    total_weight: node.total_weight(),
                    succs: node
                        .successors()
                        .iter()
                        .map(|s| {
                            let target = map.get(&s.node).map_or(SNAP_NONE, |&i| NodeIdx(i));
                            (s.to_block, s.count, target)
                        })
                        .collect(),
                    preds: node
                        .predecessors()
                        .iter()
                        .filter_map(|p| map.get(p).map(|&i| NodeIdx(i)))
                        .collect(),
                }
            })
            .collect();
        BcgSnapshot {
            nodes,
            origins,
            truncated,
        }
    }

    /// Snapshot-local indices of the signal origins.
    pub fn origins(&self) -> &[NodeIdx] {
        &self.origins
    }

    /// Nodes captured.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot captured nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the node cap cut the region short.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Approximate heap bytes held by this snapshot (queue accounting).
    pub fn memory_estimate(&self) -> usize {
        use std::mem::size_of;
        self.nodes.capacity() * size_of::<SnapNode>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.succs.capacity() * size_of::<(BlockId, u16, NodeIdx)>()
                        + n.preds.capacity() * size_of::<NodeIdx>()
                })
                .sum::<usize>()
            + self.origins.capacity() * size_of::<NodeIdx>()
    }
}

impl CorrelationView for BcgSnapshot {
    fn branch(&self, n: NodeIdx) -> Branch {
        self.nodes[n.index()].branch
    }
    fn is_traceable(&self, n: NodeIdx) -> bool {
        self.nodes[n.index()].state.is_traceable()
    }
    fn is_hot(&self, n: NodeIdx) -> bool {
        self.nodes[n.index()].state.is_hot()
    }
    fn predecessors(&self, n: NodeIdx) -> &[NodeIdx] {
        &self.nodes[n.index()].preds
    }
    fn max_successor(&self, n: NodeIdx) -> Option<(NodeIdx, BlockId, u16)> {
        // Same tie semantics as `Node::max_successor` (last maximum in
        // slot order). A target outside the snapshot ends the walk.
        self.nodes[n.index()]
            .succs
            .iter()
            .max_by_key(|s| s.1)
            .and_then(|&(block, count, target)| {
                (target != SNAP_NONE).then_some((target, block, count))
            })
    }
    fn correlation_to(&self, n: NodeIdx, block: BlockId) -> f64 {
        let node = &self.nodes[n.index()];
        if node.total_weight == 0 {
            return 0.0;
        }
        node.succs
            .iter()
            .find(|s| s.0 == block)
            .map_or(0.0, |s| f64::from(s.1) / f64::from(node.total_weight))
    }
}

/// Queue counters, shared between senders and the receiver.
#[derive(Debug, Default)]
struct QueueShared {
    depth: AtomicUsize,
    max_depth: AtomicUsize,
    submitted: AtomicU64,
    dropped: AtomicU64,
    /// Estimated bytes of the snapshots currently in flight.
    bytes: AtomicUsize,
    /// Optional fault oracle: [`FaultSite::DropBatch`] and
    /// [`FaultSite::DuplicateBatch`] fire per submit.
    faults: OnceLock<Arc<FaultPlan>>,
}

/// Snapshot of [`ConstructionQueue`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Batches currently enqueued.
    pub depth: usize,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Batches accepted.
    pub submitted: u64,
    /// Batches rejected because the queue was full (or the constructor
    /// exited); the dispatcher re-parks these via `defer_signals`.
    pub dropped: u64,
    /// Estimated bytes of the snapshots currently in flight (the
    /// channel's contribution to a shared session's memory footprint).
    pub bytes: usize,
}

/// The dispatch-thread side of the bounded construction channel.
/// Cloneable: every worker VM holds one.
#[derive(Debug, Clone)]
pub struct ConstructionQueue {
    tx: SyncSender<BcgSnapshot>,
    shared: Arc<QueueShared>,
}

impl ConstructionQueue {
    /// Attaches a fault plan (shared by all clones of this queue); first
    /// call wins. A [`FaultSite::DropBatch`] hit makes `submit` drop the
    /// batch as if the queue were full — the dispatcher's existing
    /// `defer_signals` path re-parks it. A [`FaultSite::DuplicateBatch`]
    /// hit replays a successful submit once (construction must be
    /// idempotent under replay thanks to hash-consing).
    pub fn set_faults(&self, plan: Arc<FaultPlan>) {
        let _ = self.shared.faults.set(plan);
    }

    /// Non-blocking submit. Returns `false` if the queue is full or the
    /// constructor is gone — the caller must re-park the batch's signals
    /// ([`BranchCorrelationGraph::defer_signals`]) so the next decay
    /// cycle re-raises them.
    pub fn submit(&self, snapshot: BcgSnapshot) -> bool {
        if let Some(plan) = self.shared.faults.get() {
            if plan.fire(FaultSite::DropBatch) {
                self.shared.dropped.fetch_add(1, Relaxed);
                return false;
            }
            if plan.fire(FaultSite::DuplicateBatch) {
                // Replay first so the duplicate can't be the *only* copy
                // that fits when the queue is nearly full.
                let _ = self.submit_inner(snapshot.clone());
            }
        }
        self.submit_inner(snapshot)
    }

    fn submit_inner(&self, snapshot: BcgSnapshot) -> bool {
        // Gauge up *before* sending: once the batch is in the channel the
        // receiver may dequeue — and decrement — ahead of us, transiently
        // wrapping the depth below zero.
        let d = self.shared.depth.fetch_add(1, Relaxed) + 1;
        let bytes = snapshot.memory_estimate();
        self.shared.bytes.fetch_add(bytes, Relaxed);
        match self.tx.try_send(snapshot) {
            Ok(()) => {
                self.shared.max_depth.fetch_max(d, Relaxed);
                self.shared.submitted.fetch_add(1, Relaxed);
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.depth.fetch_sub(1, Relaxed);
                self.shared.bytes.fetch_sub(bytes, Relaxed);
                self.shared.dropped.fetch_add(1, Relaxed);
                false
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            depth: self.shared.depth.load(Relaxed),
            max_depth: self.shared.max_depth.load(Relaxed),
            submitted: self.shared.submitted.load(Relaxed),
            dropped: self.shared.dropped.load(Relaxed),
            bytes: self.shared.bytes.load(Relaxed),
        }
    }
}

/// The constructor-thread side of the channel.
pub struct ConstructionReceiver {
    rx: Receiver<BcgSnapshot>,
    shared: Arc<QueueShared>,
}

impl ConstructionReceiver {
    /// Blocks for the next batch; `None` when every sender is gone.
    pub fn recv(&self) -> Option<BcgSnapshot> {
        let snap = self.rx.recv().ok()?;
        self.shared.depth.fetch_sub(1, Relaxed);
        self.shared.bytes.fetch_sub(snap.memory_estimate(), Relaxed);
        Some(snap)
    }
}

/// Creates a bounded construction channel holding at most `capacity`
/// in-flight snapshot batches.
pub fn construction_channel(capacity: usize) -> (ConstructionQueue, ConstructionReceiver) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let shared = Arc::new(QueueShared::default());
    (
        ConstructionQueue {
            tx,
            shared: Arc::clone(&shared),
        },
        ConstructionReceiver { rx, shared },
    )
}

/// Builder activity counters (the off-thread analogue of
/// [`crate::ConstructorStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuilderStats {
    /// Snapshot batches processed.
    pub jobs: u64,
    /// Signals that triggered planning.
    pub signals_handled: u64,
    /// Signals skipped because their node was already examined earlier
    /// in the same batch (cascade suppression).
    pub signals_suppressed: u64,
    /// Entry points discovered by back-tracking.
    pub entry_points: u64,
    /// Forward path walks performed.
    pub paths_walked: u64,
    /// Loops detected and unrolled.
    pub loops_unrolled: u64,
    /// Entry links written to the shared cache.
    pub links_written: u64,
    /// New trace objects the shared cache constructed for our inserts.
    pub traces_created: u64,
    /// Stale links removed.
    pub links_removed: u64,
    /// Install ops refused by the shared cache's quarantine blacklist.
    pub links_quarantine_rejected: u64,
    /// Jobs whose snapshot hit the node cap.
    pub snapshots_truncated: u64,
}

impl BuilderStats {
    /// Field-wise accumulation (used by the supervisor to fold counters
    /// across worker incarnations).
    fn merge(&mut self, o: BuilderStats) {
        self.jobs += o.jobs;
        self.signals_handled += o.signals_handled;
        self.signals_suppressed += o.signals_suppressed;
        self.entry_points += o.entry_points;
        self.paths_walked += o.paths_walked;
        self.loops_unrolled += o.loops_unrolled;
        self.links_written += o.links_written;
        self.traces_created += o.traces_created;
        self.links_removed += o.links_removed;
        self.links_quarantine_rejected += o.links_quarantine_rejected;
        self.snapshots_truncated += o.snapshots_truncated;
    }
}

/// Plans traces from snapshots and publishes them to a shared cache.
pub struct OffThreadBuilder {
    config: ConstructorConfig,
    stats: BuilderStats,
    plan: TracePlan,
}

impl OffThreadBuilder {
    /// A builder with the given planner configuration.
    pub fn new(config: ConstructorConfig) -> Self {
        OffThreadBuilder {
            config,
            stats: BuilderStats::default(),
            plan: TracePlan::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> BuilderStats {
        self.stats
    }

    /// Processes one snapshot batch: plans every origin signal (with
    /// within-batch cascade suppression, like the in-thread
    /// constructor) and applies the resulting ops to `cache`, lowering
    /// artifacts for newly constructed traces via `build`.
    pub fn handle_job<A>(
        &mut self,
        snapshot: &BcgSnapshot,
        cache: &SharedTraceCache<A>,
        build: &mut impl FnMut(&[BlockId]) -> Option<A>,
    ) {
        self.stats.jobs += 1;
        if snapshot.is_truncated() {
            self.stats.snapshots_truncated += 1;
        }
        let mut touched: HashSet<NodeIdx> = HashSet::new();
        for &origin in snapshot.origins() {
            if touched.contains(&origin) {
                self.stats.signals_suppressed += 1;
                continue;
            }
            self.stats.signals_handled += 1;
            self.plan.clear();
            plan_for_signal(origin, snapshot, &self.config, &mut self.plan);
            self.stats.entry_points += self.plan.counters.entry_points;
            self.stats.paths_walked += self.plan.counters.paths_walked;
            self.stats.loops_unrolled += self.plan.counters.loops_unrolled;
            touched.extend(self.plan.touched.iter().copied());
            for op in &self.plan.ops {
                match op {
                    LinkOp::Install {
                        entry,
                        blocks,
                        completion,
                    } => {
                        match cache.try_insert_and_link_with(
                            *entry,
                            blocks.clone(),
                            *completion,
                            |b| build(b),
                        ) {
                            Ok((_, new)) => {
                                self.stats.links_written += 1;
                                if new {
                                    self.stats.traces_created += 1;
                                }
                            }
                            Err(_) => {
                                // Quarantined path still cooling down;
                                // skip the install.
                                self.stats.links_quarantine_rejected += 1;
                            }
                        }
                    }
                    LinkOp::Remove { entry } => {
                        if cache.unlink(*entry).is_some() {
                            self.stats.links_removed += 1;
                        }
                    }
                }
            }
        }
    }
}

/// Runs the constructor service until every [`ConstructionQueue`] clone
/// is dropped, then returns the builder's counters. Spawn this on a
/// background thread (e.g. inside `std::thread::scope`).
pub fn run_constructor_service<A>(
    rx: ConstructionReceiver,
    cache: &SharedTraceCache<A>,
    config: ConstructorConfig,
    mut build: impl FnMut(&[BlockId]) -> Option<A>,
) -> BuilderStats {
    let mut builder = OffThreadBuilder::new(config);
    while let Some(snapshot) = rx.recv() {
        builder.handle_job(&snapshot, cache, &mut build);
    }
    builder.stats()
}

/// Service lifecycle state, shared (via `Arc`) between the supervised
/// constructor thread and every dispatcher.
///
/// The gauge fixes the silent-death window of the unsupervised service:
/// a dispatcher used to learn the constructor was gone only when its
/// *next* `submit` hit a disconnected channel. With the supervisor
/// marking itself degraded the moment restarts are exhausted,
/// dispatchers check [`is_degraded`](Self::is_degraded) *before*
/// capturing a snapshot and stop queueing immediately.
#[derive(Debug, Default)]
pub struct ServiceHealth {
    /// 0 = running, 1 = permanently degraded.
    state: AtomicU8,
    restarts: AtomicU64,
    panics: AtomicU64,
    batches_poisoned: AtomicU64,
    degraded_discards: AtomicU64,
}

/// Point-in-time copy of [`ServiceHealth`] gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceHealthSnapshot {
    /// Whether the service is permanently degraded (no constructor will
    /// ever process another batch; VMs run at interpreter speed).
    pub degraded: bool,
    /// Worker restarts performed by the supervisor.
    pub restarts: u64,
    /// Worker panics absorbed (injected or real).
    pub panics: u64,
    /// Batches consumed by a panicking worker. The batch itself is lost,
    /// but the profiler's decay cycle re-raises the signals it carried
    /// (same contract as a queue-full drop).
    pub batches_poisoned: u64,
    /// Signal batches a dispatcher discarded because the service was
    /// already degraded (no snapshot was captured for them).
    pub degraded_discards: u64,
}

impl ServiceHealth {
    /// A healthy gauge set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the service is permanently degraded.
    pub fn is_degraded(&self) -> bool {
        self.state.load(Acquire) != 0
    }

    /// Marks the service permanently degraded.
    pub fn mark_degraded(&self) {
        self.state.store(1, Release);
    }

    /// Records a dispatcher-side batch discard in degraded mode.
    pub fn note_degraded_discard(&self) {
        self.degraded_discards.fetch_add(1, Relaxed);
    }

    fn note_panic(&self) {
        self.panics.fetch_add(1, Relaxed);
        self.batches_poisoned.fetch_add(1, Relaxed);
    }

    fn note_restart(&self) {
        self.restarts.fetch_add(1, Relaxed);
    }

    /// Gauge snapshot.
    pub fn snapshot(&self) -> ServiceHealthSnapshot {
        ServiceHealthSnapshot {
            degraded: self.is_degraded(),
            restarts: self.restarts.load(Relaxed),
            panics: self.panics.load(Relaxed),
            batches_poisoned: self.batches_poisoned.load(Relaxed),
            degraded_discards: self.degraded_discards.load(Relaxed),
        }
    }
}

/// Restart policy of the supervised constructor service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker restarts before the service goes permanently degraded.
    pub max_restarts: u32,
    /// Backoff before the first restart, doubling per restart.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_restarts: 5,
            backoff_base_ms: 10,
            backoff_max_ms: 500,
        }
    }
}

impl SupervisorConfig {
    /// Backoff before restart number `n` (1-based).
    fn backoff(&self, n: u32) -> Duration {
        let shift = n.saturating_sub(1).min(16);
        Duration::from_millis(
            self.backoff_base_ms
                .saturating_mul(1 << shift)
                .min(self.backoff_max_ms),
        )
    }
}

/// [`run_constructor_service`] under supervision: each batch is handled
/// inside `catch_unwind`, a panicking worker is replaced (counters
/// preserved) after an exponential backoff, and once `max_restarts` is
/// exhausted the service marks itself permanently degraded and exits —
/// dropping the receiver, so in-flight `submit`s fail fast and
/// dispatchers fall back to `defer_signals`.
///
/// A batch that poisons the worker is *consumed*: its snapshot is lost,
/// but the signals it carried are re-raised by the profiler's decay
/// cycle exactly as for a queue-full drop (see the module docs), so
/// construction is delayed, never silently skipped.
///
/// An optional [`FaultPlan`] injects [`FaultSite::KillConstructor`]
/// panics ahead of each batch (the deterministic chaos hook).
pub fn run_supervised_constructor_service<A>(
    rx: ConstructionReceiver,
    cache: &SharedTraceCache<A>,
    config: ConstructorConfig,
    supervisor: SupervisorConfig,
    health: &ServiceHealth,
    faults: Option<Arc<FaultPlan>>,
    mut build: impl FnMut(&[BlockId]) -> Option<A>,
) -> BuilderStats {
    let mut total = BuilderStats::default();
    let mut builder = OffThreadBuilder::new(config);
    let mut restarts_used = 0u32;
    while let Some(snapshot) = rx.recv() {
        let kill = faults
            .as_ref()
            .is_some_and(|p| p.fire(FaultSite::KillConstructor));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if kill {
                panic!("injected constructor kill (FaultSite::KillConstructor)");
            }
            builder.handle_job(&snapshot, cache, &mut build);
        }));
        if outcome.is_err() {
            health.note_panic();
            if restarts_used >= supervisor.max_restarts {
                health.mark_degraded();
                break;
            }
            restarts_used += 1;
            health.note_restart();
            // The worker's internal state may be torn mid-job; its
            // counters are plain sums and stay valid. Fold them in and
            // start a fresh incarnation.
            total.merge(builder.stats());
            builder = OffThreadBuilder::new(config);
            let backoff = supervisor.backoff(restarts_used);
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
        }
    }
    total.merge(builder.stats());
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceCache, TraceConstructor};
    use jvm_bytecode::FuncId;
    use trace_bcg::BcgConfig;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn bcg_with(delay: u32, threshold: f64) -> BranchCorrelationGraph {
        BranchCorrelationGraph::new(
            BcgConfig::default()
                .with_start_delay(delay)
                .with_threshold(threshold),
        )
    }

    /// The frozen-snapshot planner must reproduce the live in-thread
    /// constructor exactly when both see the same batches: drive one
    /// profiler, feed every batch to both pipelines, and compare the
    /// final link tables.
    #[test]
    fn snapshot_planning_matches_live_constructor() {
        for pattern in [
            vec![0u32, 1, 2],
            vec![9, 0, 1, 2, 3, 4],
            vec![5, 0, 1, 2],
            {
                let mut p = vec![9u32];
                p.extend(std::iter::repeat_n(0, 20));
                p
            },
        ] {
            let mut bcg = bcg_with(4, 0.97);
            let mut private = TraceCache::new();
            let mut ctor = TraceConstructor::new(ConstructorConfig::default());
            let shared: SharedTraceCache<()> = SharedTraceCache::new();
            let mut builder = OffThreadBuilder::new(ConstructorConfig::default());
            let mut buf = Vec::new();
            for _ in 0..400 {
                for &b in &pattern {
                    bcg.observe(blk(b));
                    if bcg.has_signals() {
                        bcg.drain_signals_into(&mut buf);
                        let snap = BcgSnapshot::capture(&bcg, &buf);
                        assert!(!snap.is_truncated());
                        ctor.handle_batch(&buf, &mut bcg, &mut private);
                        builder.handle_job(&snap, &shared, &mut |_| None);
                    }
                }
            }
            // Identical link tables: every private link exists in the
            // shared cache with the same block sequence, and vice versa.
            let mut private_links: Vec<(Branch, Vec<BlockId>)> = private
                .iter_links()
                .map(|(e, t)| (e, t.blocks().to_vec()))
                .collect();
            private_links.sort_by_key(|(e, _)| (e.0.func.0, e.0.block, e.1.func.0, e.1.block));
            assert_eq!(
                private.link_count(),
                shared.link_count(),
                "link counts diverged for pattern {pattern:?}"
            );
            for (entry, blocks) in private_links {
                let id = shared
                    .lookup_entry(entry)
                    .unwrap_or_else(|| panic!("missing shared link at {entry:?}"));
                let t = shared.trace(id).unwrap();
                assert_eq!(&t.blocks[..], &blocks[..], "blocks diverged at {entry:?}");
            }
            let s = builder.stats();
            let c = ctor.stats();
            assert_eq!(s.signals_handled, c.signals_handled);
            assert_eq!(s.entry_points, c.entry_points);
            assert_eq!(s.paths_walked, c.paths_walked);
            assert_eq!(s.loops_unrolled, c.loops_unrolled);
            assert_eq!(s.links_written, c.links_written);
        }
    }

    #[test]
    fn snapshot_is_self_contained_and_bounded() {
        let mut bcg = bcg_with(1, 0.97);
        let mut buf = Vec::new();
        for _ in 0..300 {
            for b in 0..12u32 {
                bcg.observe(blk(b));
            }
        }
        bcg.drain_signals_into(&mut buf);
        assert!(!buf.is_empty());
        let snap = BcgSnapshot::capture(&bcg, &buf);
        assert!(!snap.is_empty());
        assert!(snap.memory_estimate() > 0);
        // A tiny cap truncates but still yields a usable snapshot.
        let small = BcgSnapshot::capture_bounded(&bcg, &buf, 2);
        assert!(small.is_truncated());
        assert!(small.len() <= 2);
        let cache: SharedTraceCache<()> = SharedTraceCache::new();
        let mut builder = OffThreadBuilder::new(ConstructorConfig::default());
        builder.handle_job(&small, &cache, &mut |_| None);
        assert_eq!(builder.stats().snapshots_truncated, 1);
    }

    #[test]
    fn queue_bounds_and_counts_drops() {
        let (tx, rx) = construction_channel(1);
        let mut bcg = bcg_with(1, 0.97);
        for _ in 0..50 {
            for b in 0..3u32 {
                bcg.observe(blk(b));
            }
        }
        let sigs = bcg.take_signals();
        let snap = BcgSnapshot::capture(&bcg, &sigs);
        assert!(tx.submit(snap.clone()));
        assert!(!tx.submit(snap.clone()), "second submit must hit the cap");
        let s = tx.stats();
        assert_eq!((s.submitted, s.dropped, s.depth, s.max_depth), (1, 1, 1, 1));
        assert!(rx.recv().is_some());
        assert_eq!(tx.stats().depth, 0);
        assert!(tx.submit(snap));
        drop(tx);
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_none(), "closed channel must end the service");
    }

    /// The degradation contract end to end: a full queue drops the
    /// batch, the dispatcher parks it, the next decay cycle re-raises
    /// it, and a later submit finally constructs the trace.
    #[test]
    fn dropped_batches_are_reraised_and_eventually_built() {
        let (tx, rx) = construction_channel(1);
        let mut bcg = bcg_with(1, 0.97);
        let mut buf = Vec::new();
        for _ in 0..300 {
            for b in 0..3u32 {
                bcg.observe(blk(b));
            }
        }
        bcg.drain_signals_into(&mut buf);
        assert!(!buf.is_empty());
        // Occupy the queue's only slot so the real batch is dropped.
        let filler = BcgSnapshot::capture(&bcg, &[]);
        assert!(tx.submit(filler));
        if !tx.submit(BcgSnapshot::capture(&bcg, &buf)) {
            bcg.defer_signals(&buf);
        }
        assert!(bcg.deferred_len() > 0);
        assert!(!bcg.has_signals());
        // The decay cycle re-raises the parked signals...
        let n01 = bcg.node_index((blk(0), blk(1))).expect("loop branch node");
        bcg.force_decay(n01);
        assert!(bcg.has_signals());
        bcg.drain_signals_into(&mut buf);
        // ...and with queue space available the batch now goes through.
        let _ = rx.recv();
        assert!(tx.submit(BcgSnapshot::capture(&bcg, &buf)));
        let cache: SharedTraceCache<()> = SharedTraceCache::new();
        drop(tx);
        let stats = run_constructor_service(rx, &cache, ConstructorConfig::default(), |_| None);
        assert!(stats.jobs >= 1);
        assert!(
            cache.link_count() > 0,
            "re-raised batch must build the loop trace"
        );
    }

    /// Builds a snapshot carrying real signals from a warmed loop.
    fn loop_snapshot() -> BcgSnapshot {
        let mut bcg = bcg_with(1, 0.97);
        for _ in 0..300 {
            for b in 0..3u32 {
                bcg.observe(blk(b));
            }
        }
        let sigs = bcg.take_signals();
        assert!(!sigs.is_empty());
        BcgSnapshot::capture(&bcg, &sigs)
    }

    #[test]
    fn injected_drop_fault_rejects_submits() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (tx, rx) = construction_channel(8);
        tx.set_faults(Arc::new(FaultPlan::new(
            3,
            FaultConfig {
                drop_batch: 1.0,
                ..FaultConfig::none()
            },
        )));
        let snap = loop_snapshot();
        assert!(!tx.submit(snap.clone()));
        assert!(!tx.submit(snap));
        let s = tx.stats();
        assert_eq!((s.submitted, s.dropped, s.depth), (0, 2, 0));
        drop(tx);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn injected_duplicate_fault_replays_the_batch() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (tx, rx) = construction_channel(8);
        tx.set_faults(Arc::new(FaultPlan::new(
            3,
            FaultConfig {
                duplicate_batch: 1.0,
                ..FaultConfig::none()
            },
        )));
        assert!(tx.submit(loop_snapshot()));
        let s = tx.stats();
        assert_eq!((s.submitted, s.depth), (2, 2), "batch must be replayed");
        // Replay is idempotent: the service hash-conses both copies into
        // the same traces.
        let cache: SharedTraceCache<()> = SharedTraceCache::new();
        drop(tx);
        let stats = run_constructor_service(rx, &cache, ConstructorConfig::default(), |_| None);
        assert_eq!(stats.jobs, 2);
        assert!(cache.stats().traces_deduped > 0 || cache.trace_count() > 0);
    }

    #[test]
    fn supervisor_restarts_then_degrades_permanently() {
        use crate::faults::{FaultConfig, FaultPlan};
        let (tx, rx) = construction_channel(16);
        let cache: SharedTraceCache<()> = SharedTraceCache::new();
        let health = Arc::new(ServiceHealth::new());
        let plan = Arc::new(FaultPlan::new(1, FaultConfig::constructor_killer()));
        let supervisor = SupervisorConfig {
            max_restarts: 2,
            backoff_base_ms: 0,
            backoff_max_ms: 0,
        };
        let snap = loop_snapshot();
        for _ in 0..3 {
            assert!(tx.submit(snap.clone()));
        }
        let h = Arc::clone(&health);
        let stats = std::thread::scope(|s| {
            let handle = s.spawn(|| {
                run_supervised_constructor_service(
                    rx,
                    &cache,
                    ConstructorConfig::default(),
                    supervisor,
                    &h,
                    Some(plan),
                    |_| None,
                )
            });
            handle.join().expect("supervisor itself must not panic")
        });
        // Kill, restart; kill, restart; kill, restarts exhausted →
        // degraded, receiver dropped.
        let hs = health.snapshot();
        assert!(hs.degraded, "service must end degraded: {hs:?}");
        assert_eq!(hs.restarts, 2);
        assert_eq!(hs.panics, 3);
        assert_eq!(hs.batches_poisoned, 3);
        assert_eq!(stats.jobs, 0, "every batch died before processing");
        assert_eq!(cache.link_count(), 0);
        // Senders now fail fast; the dispatcher defers instead.
        assert!(!tx.submit(snap));
    }

    #[test]
    fn supervised_service_without_faults_builds_normally() {
        let (tx, rx) = construction_channel(16);
        let cache: SharedTraceCache<()> = SharedTraceCache::new();
        let health = ServiceHealth::new();
        assert!(tx.submit(loop_snapshot()));
        drop(tx);
        let stats = run_supervised_constructor_service(
            rx,
            &cache,
            ConstructorConfig::default(),
            SupervisorConfig::default(),
            &health,
            None,
            |_| None,
        );
        assert!(stats.jobs == 1 && stats.links_written > 0);
        assert!(cache.link_count() > 0);
        let hs = health.snapshot();
        assert!(!hs.degraded && hs.panics == 0 && hs.restarts == 0);
    }

    #[test]
    fn supervisor_survives_a_real_builder_panic_and_keeps_serving() {
        let (tx, rx) = construction_channel(16);
        let cache: SharedTraceCache<u32> = SharedTraceCache::new();
        let health = ServiceHealth::new();
        let snap = loop_snapshot();
        assert!(tx.submit(snap.clone()));
        assert!(tx.submit(snap));
        drop(tx);
        // The *build* callback panics on the first batch only — a stand-in
        // for a lowering bug — and the second batch must still be served.
        let mut first = true;
        let stats = run_supervised_constructor_service(
            rx,
            &cache,
            ConstructorConfig::default(),
            SupervisorConfig {
                max_restarts: 3,
                backoff_base_ms: 0,
                backoff_max_ms: 0,
            },
            &health,
            None,
            |blocks| {
                if std::mem::take(&mut first) {
                    panic!("lowering bug");
                }
                Some(blocks.len() as u32)
            },
        );
        let hs = health.snapshot();
        assert!(!hs.degraded, "one panic must not degrade: {hs:?}");
        assert_eq!((hs.panics, hs.restarts), (1, 1));
        assert!(stats.links_written > 0, "second batch must be served");
        assert!(cache.link_count() > 0);
    }
}

//! The trace-dispatch execution monitor.
//!
//! The paper's experimental framework "added our trace cache dispatch
//! approach to SableVM and allowed us to examine the behaviour of the
//! trace cache" (§5): the interpreter still executes blocks, while the
//! monitor tracks which blocks *would have been* covered by trace
//! dispatches, how many traces are entered, and whether each entered
//! trace runs to completion. [`TraceRuntime`] is that monitor: it consumes
//! the same dispatch stream the profiler sees and compares it against the
//! cache's linked traces.

use jvm_bytecode::{BlockId, Program};
use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx};

use crate::cache::TraceCache;
use crate::metrics::TraceExecStats;
use crate::trace::TraceId;

#[derive(Debug, Clone, Copy)]
struct ActiveTrace {
    id: TraceId,
    /// Position of the *next* expected block.
    pos: usize,
    /// Blocks matched so far.
    blocks: u64,
    /// Instructions covered so far.
    instrs: u64,
}

/// Monitors the dynamic block stream against the trace cache.
///
/// ```
/// use jvm_bytecode::{BlockId, ProgramBuilder};
/// use trace_cache::{TraceCache, TraceRuntime};
///
/// // A two-block program and a trace covering both blocks.
/// let mut pb = ProgramBuilder::new();
/// let f = pb.declare_function("main", 0, false);
/// {
///     let fb = pb.function_mut(f);
///     let l = fb.new_label();
///     fb.goto(l);
///     fb.bind(l);
///     fb.ret_void();
/// }
/// let program = pb.build(f)?;
/// let b = |i| BlockId::new(f, i);
/// let mut cache = TraceCache::new();
/// cache.insert_and_link((b(0), b(0)), vec![b(0), b(1)], 1.0);
///
/// let mut rt = TraceRuntime::new();
/// for blk in [b(0), b(0), b(1)] {
///     rt.on_block(blk, &cache, &program);
/// }
/// rt.finish_stream();
/// assert_eq!(rt.stats().entered, 1);
/// assert_eq!(rt.stats().completed, 1);
/// # Ok::<(), jvm_bytecode::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct TraceRuntime {
    prev: Option<BlockId>,
    active: Option<ActiveTrace>,
    stats: TraceExecStats,
}

impl TraceRuntime {
    /// Creates an idle monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated metrics.
    pub fn stats(&self) -> TraceExecStats {
        self.stats
    }

    /// Identifier of the trace currently executing, if any.
    pub fn active_trace(&self) -> Option<TraceId> {
        self.active.map(|a| a.id)
    }

    /// Resets the stream context (between runs) but keeps the metrics.
    /// An in-flight trace is abandoned as a partial execution.
    pub fn begin_stream(&mut self) {
        if let Some(active) = self.active.take() {
            self.abandon(active);
        }
        self.prev = None;
    }

    /// Finishes the stream: an in-flight trace is abandoned as partial.
    /// Call once after the program exits so counters balance.
    pub fn finish_stream(&mut self) {
        self.begin_stream();
    }

    fn abandon(&mut self, active: ActiveTrace) {
        self.stats.exited_early += 1;
        self.stats.blocks_in_partial += active.blocks;
        self.stats.instrs_in_partial += active.instrs;
    }

    /// Observes one dispatched block. `program` supplies per-block
    /// instruction counts; `cache` supplies the entry links (probed
    /// through the hash table at every block boundary — prefer
    /// [`Self::on_block_at_node`] when a BCG node is at hand).
    pub fn on_block(&mut self, block: BlockId, cache: &TraceCache, program: &Program) {
        self.step(block, cache, program, |entry| cache.lookup_entry(entry));
    }

    /// Observes one dispatched block, answering the trace-entry check
    /// with a caller-supplied lookup instead of the cache's own table.
    /// The monitor state machine is identical to [`Self::on_block`];
    /// `link` must agree with `cache.lookup_entry` for the stats to be
    /// meaningful. Benchmarks use this to compare entry-lookup
    /// strategies on the same dispatch stream.
    pub fn on_block_with(
        &mut self,
        block: BlockId,
        cache: &TraceCache,
        program: &Program,
        link: impl FnOnce(Branch) -> Option<TraceId>,
    ) {
        self.step(block, cache, program, link);
    }

    /// Observes one dispatched block using the BCG node's inline
    /// trace-link slot for the entry check.
    ///
    /// `node` is what [`BranchCorrelationGraph::observe`] returned for
    /// this block — the node of the branch `(previous block, block)` —
    /// so the entry check becomes a version compare on the node instead
    /// of a hash probe. Behaviour is identical to [`Self::on_block`];
    /// the differential tests assert it.
    pub fn on_block_at_node(
        &mut self,
        block: BlockId,
        node: Option<NodeIdx>,
        bcg: &mut BranchCorrelationGraph,
        cache: &TraceCache,
        program: &Program,
    ) {
        self.step(block, cache, program, |entry| match node {
            Some(n) => {
                debug_assert_eq!(bcg.node(n).branch(), entry, "node is the observed branch");
                cache.lookup_entry_cached(bcg, n)
            }
            None => cache.lookup_entry(entry),
        });
    }

    /// One dispatch against the cache; `link` answers "does taking this
    /// branch enter a trace?" however the caller can do it cheapest.
    #[inline]
    fn step(
        &mut self,
        block: BlockId,
        cache: &TraceCache,
        program: &Program,
        link: impl FnOnce(Branch) -> Option<TraceId>,
    ) {
        let block_len = u64::from(program.block_len(block));
        let prev = self.prev.replace(block);

        if let Some(mut active) = self.active.take() {
            let trace = cache.trace(active.id);
            if trace.blocks()[active.pos] == block {
                active.pos += 1;
                active.blocks += 1;
                active.instrs += block_len;
                if active.pos == trace.len() {
                    // Trace ran to completion.
                    self.stats.completed += 1;
                    self.stats.blocks_in_completed += active.blocks;
                    self.stats.instrs_in_completed += active.instrs;
                } else {
                    self.active = Some(active);
                }
                return;
            }
            // Early exit: the program diverged from the trace. The block
            // we are looking at is *outside* the trace and handled below
            // (it may even enter another trace).
            self.abandon(active);
        }

        // Not inside a trace: does taking (prev, block) enter one?
        if let Some(prev) = prev {
            if let Some(id) = link((prev, block)) {
                let trace = cache.trace(id);
                debug_assert_eq!(trace.blocks()[0], block, "entry targets first block");
                self.stats.entered += 1;
                let active = ActiveTrace {
                    id,
                    pos: 1,
                    blocks: 1,
                    instrs: block_len,
                };
                if trace.len() == 1 {
                    self.stats.completed += 1;
                    self.stats.blocks_in_completed += active.blocks;
                    self.stats.instrs_in_completed += active.instrs;
                } else {
                    self.active = Some(active);
                }
                return;
            }
        }
        self.stats.blocks_outside += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{CmpOp, ProgramBuilder};

    /// A program whose exact block shapes we control; only block lengths
    /// matter to the runtime, so a simple multi-block function suffices.
    fn program_with_blocks() -> Program {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, false);
        let b = pb.function_mut(f);
        // b0: load, if -> b2 ; b1: nop,nop, goto end ; b2: nop ; b3: ret
        let else_l = b.new_label();
        let end = b.new_label();
        b.load(0).if_i(CmpOp::Eq, else_l);
        b.nop().nop().goto(end);
        b.bind(else_l);
        b.nop();
        b.bind(end);
        b.ret_void();
        pb.build(f).expect("builds")
    }

    fn blk(program: &Program, b: u32) -> BlockId {
        let f = program.entry();
        assert!((b as usize) < program.function(f).block_count());
        BlockId::new(f, b)
    }

    fn cache_with_trace(program: &Program, entry_from: u32, blocks: &[u32]) -> TraceCache {
        let mut cache = TraceCache::new();
        let seq: Vec<BlockId> = blocks.iter().map(|&b| blk(program, b)).collect();
        cache.insert_and_link((blk(program, entry_from), seq[0]), seq, 0.99);
        cache
    }

    #[test]
    fn completed_trace_counts_blocks_and_instrs() {
        let p = program_with_blocks();
        let cache = cache_with_trace(&p, 0, &[1, 3]);
        let mut rt = TraceRuntime::new();
        // Stream: b0 (outside), b1 (enters trace), b3 (completes).
        rt.on_block(blk(&p, 0), &cache, &p);
        rt.on_block(blk(&p, 1), &cache, &p);
        rt.on_block(blk(&p, 3), &cache, &p);
        rt.finish_stream();
        let s = rt.stats();
        assert_eq!(s.entered, 1);
        assert_eq!(s.completed, 1);
        assert_eq!(s.exited_early, 0);
        assert_eq!(s.blocks_in_completed, 2);
        assert_eq!(s.blocks_outside, 1);
        let expected_instrs =
            u64::from(p.block_len(blk(&p, 1))) + u64::from(p.block_len(blk(&p, 3)));
        assert_eq!(s.instrs_in_completed, expected_instrs);
        assert_eq!(s.completion_rate(), 1.0);
        assert_eq!(s.avg_completed_length(), 2.0);
    }

    #[test]
    fn divergence_counts_partial_execution() {
        let p = program_with_blocks();
        let cache = cache_with_trace(&p, 0, &[1, 3]);
        let mut rt = TraceRuntime::new();
        // Stream: b0, b1 (enter), b2 (diverges), b3.
        rt.on_block(blk(&p, 0), &cache, &p);
        rt.on_block(blk(&p, 1), &cache, &p);
        rt.on_block(blk(&p, 2), &cache, &p);
        rt.on_block(blk(&p, 3), &cache, &p);
        rt.finish_stream();
        let s = rt.stats();
        assert_eq!(s.entered, 1);
        assert_eq!(s.completed, 0);
        assert_eq!(s.exited_early, 1);
        assert_eq!(s.blocks_in_partial, 1);
        // b2 and b3 run outside, b0 too.
        assert_eq!(s.blocks_outside, 3);
        assert_eq!(s.completion_rate(), 0.0);
    }

    #[test]
    fn divergent_block_can_enter_another_trace() {
        let p = program_with_blocks();
        let mut cache = cache_with_trace(&p, 0, &[1, 3]);
        // Second trace entered by (1, 2).
        cache.insert_and_link((blk(&p, 1), blk(&p, 2)), vec![blk(&p, 2), blk(&p, 3)], 0.99);
        let mut rt = TraceRuntime::new();
        // b0, b1 (enter t0), b2 (diverges from t0, enters t1), b3 (completes t1).
        for b in [0, 1, 2, 3] {
            rt.on_block(blk(&p, b), &cache, &p);
        }
        rt.finish_stream();
        let s = rt.stats();
        assert_eq!(s.entered, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.exited_early, 1);
    }

    #[test]
    fn trace_reentry_counts_every_iteration() {
        let p = program_with_blocks();
        // Loop-shaped trace: entered by (3, 1), covering [1, 3].
        let mut cache = TraceCache::new();
        cache.insert_and_link((blk(&p, 3), blk(&p, 1)), vec![blk(&p, 1), blk(&p, 3)], 0.99);
        let mut rt = TraceRuntime::new();
        rt.on_block(blk(&p, 3), &cache, &p);
        for _ in 0..5 {
            rt.on_block(blk(&p, 1), &cache, &p);
            rt.on_block(blk(&p, 3), &cache, &p);
        }
        rt.finish_stream();
        let s = rt.stats();
        assert_eq!(s.entered, 5);
        assert_eq!(s.completed, 5);
        assert_eq!(s.blocks_outside, 1);
        assert_eq!(s.trace_dispatches(), 6);
    }

    #[test]
    fn no_cache_means_everything_outside() {
        let p = program_with_blocks();
        let cache = TraceCache::new();
        let mut rt = TraceRuntime::new();
        for b in [0, 1, 3] {
            rt.on_block(blk(&p, b), &cache, &p);
        }
        rt.finish_stream();
        let s = rt.stats();
        assert_eq!(s.entered, 0);
        assert_eq!(s.blocks_outside, 3);
        assert_eq!(s.trace_dispatches(), 3);
    }

    #[test]
    fn node_slot_path_matches_direct_path() {
        let p = program_with_blocks();
        let mut cache = cache_with_trace(&p, 0, &[1, 3]);
        cache.insert_and_link((blk(&p, 1), blk(&p, 2)), vec![blk(&p, 2), blk(&p, 3)], 0.99);
        // Mix of entries, completions, divergences, and misses.
        let stream = [0u32, 1, 3, 0, 1, 2, 3, 0, 1, 3, 2, 2, 0, 1, 3];
        let mut direct = TraceRuntime::new();
        for &b in &stream {
            direct.on_block(blk(&p, b), &cache, &p);
        }
        direct.finish_stream();
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        let mut slot = TraceRuntime::new();
        for &b in &stream {
            let n = bcg.observe(blk(&p, b));
            slot.on_block_at_node(blk(&p, b), n, &mut bcg, &cache, &p);
        }
        slot.finish_stream();
        assert_eq!(direct.stats(), slot.stats());
    }

    #[test]
    fn begin_stream_abandons_in_flight_trace() {
        let p = program_with_blocks();
        let cache = cache_with_trace(&p, 0, &[1, 3]);
        let mut rt = TraceRuntime::new();
        rt.on_block(blk(&p, 0), &cache, &p);
        rt.on_block(blk(&p, 1), &cache, &p); // mid-trace
        assert!(rt.active_trace().is_some());
        rt.begin_stream();
        assert!(rt.active_trace().is_none());
        let s = rt.stats();
        assert_eq!(s.exited_early, 1);
        assert_eq!(s.blocks_in_partial, 1);
    }
}

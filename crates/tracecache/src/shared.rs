//! A trace cache shared by many executors.
//!
//! [`TraceCache`](crate::TraceCache) is single-owner: one VM profiles,
//! constructs and dispatches. In a multi-VM deployment every instance
//! would re-discover and re-build identical traces. `SharedTraceCache`
//! lets any number of dispatch threads *read* entry links without ever
//! blocking, while construction (typically a single background thread,
//! see [`crate::offthread`]) publishes hash-consed traces that all VMs
//! reuse.
//!
//! # Structure
//!
//! * **Entry links** live in N lock-striped shards. Each shard is an
//!   open-addressed table of `(AtomicU64 key, AtomicU64 value)` slots —
//!   the same packed-branch scheme as [`trace_bcg::BranchTable`], probed
//!   lock-free by readers. Writers serialize on a per-shard mutex.
//! * **Trace objects** are hash-consed under one mutex into `Arc`-shared
//!   immutable [`SharedTrace`]s; an optional pre-lowered artifact rides
//!   along. The mutex is only touched at construction time and on the
//!   first artifact fetch per VM — never on the per-branch dispatch path.
//! * A global **version** counter extends the single-threaded
//!   version-stamped trace-link protocol (see
//!   [`TraceCache::lookup_entry_cached`](crate::TraceCache::lookup_entry_cached))
//!   to concurrent publication.
//!
//! # Publication protocol
//!
//! The paper's invalidation rule is that dispatch may act on a stale
//! link for at most one probe: any link mutation must eventually force
//! revalidation. Concurrently that becomes:
//!
//! 1. A writer mutates a shard table under its lock — storing a slot's
//!    *value before its key*, both `Release`, so a reader that observes
//!    the key (`Acquire`) always observes a fully-written value: links
//!    are never torn.
//! 2. After the mutation the writer bumps the global version
//!    (`fetch_add`, `Release`).
//! 3. A reader loads the version (`Acquire`) *before* probing. The
//!    `Acquire` pairs with the bump's `Release`: every mutation at or
//!    below the loaded version is visible to the probe. The BCG slot is
//!    stamped with the *pre-probe* version, so a mutation that lands
//!    between load and probe leaves the stamp already-stale and the next
//!    dispatch revalidates. A stamped answer can therefore be newer than
//!    its stamp, never older — and never outlives the next mutation.
//!
//! Deletion uses tombstones (a backward-shift delete would move slots
//! under a concurrent reader's feet); growth publishes a rehashed table
//! through an `AtomicPtr` and retires the old one until the cache drops,
//! so a reader mid-probe keeps a valid (if stale) table.
//!
//! # Memory budget, eviction, quarantine
//!
//! [`set_budget`](SharedTraceCache::set_budget) bounds the payload bytes
//! the cache may hold; every insert then runs the same deterministic
//! second-chance sweep as the single-owner cache (see
//! [`crate::TraceCache`] docs), unlinking cold entries and tombstoning
//! traces whose last link goes. An eviction is just another link
//! mutation under this protocol: the shard write + version bump force
//! every VM's inline slots to revalidate, and a VM already holding the
//! artifact `Arc` finishes its dispatch safely on the retired trace —
//! never a dangling artifact, at worst one stale (but valid) entry.
//! [`quarantine`](SharedTraceCache::quarantine) tombstones a faulting
//! trace, removes all its links and blacklists the `(entry, path)` key
//! until the cooldown decays (one tick per refused
//! [`try_insert_and_link_with`](SharedTraceCache::try_insert_and_link_with)).
//!
//! An attached [`FaultPlan`](crate::FaultPlan) can deterministically
//! corrupt freshly built artifacts (surfaced to executors through
//! [`artifact_checked`](SharedTraceCache::artifact_checked)) and fail
//! budget checks; both are exercise paths for the degradation ladder,
//! never semantic changes.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use jvm_bytecode::BlockId;
use trace_bcg::node::NO_TRACE_LINK;
use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx, PackedBranch};

use crate::cache::trace_cost;
use crate::error::TraceCacheError;
use crate::faults::{FaultPlan, FaultSite};
use crate::health::{Demotion, HealthLedger, HealthStats, OutcomeRecord, TraceHealth};
use crate::trace::TraceId;

/// Empty-slot key marker; `PackedBranch` cannot produce it for a real
/// branch (same convention as `trace_bcg::BranchTable`).
const KEY_EMPTY: u64 = u64::MAX;
/// Value marking a deleted link. Live values are raw `TraceId`s (≤
/// `u32::MAX - 1`), so the marker cannot collide.
const VAL_TOMBSTONE: u64 = u64::MAX;
/// Fibonacci multiplier for in-table home slots (same as `BranchTable`).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// A *different* odd multiplier for shard selection, so the bits that
/// pick the shard are uncorrelated with the bits that pick the home slot.
const SHARD_MIX: u64 = 0xA24B_AED4_963E_E407;
/// Slots in a fresh shard table.
const INITIAL_SLOTS: usize = 16;
/// Default shard count.
const DEFAULT_SHARDS: usize = 16;

/// Locks a mutex, recovering the data on poisoning: a constructor
/// worker that panicked mid-insert leaves individually-valid state
/// (links are written atomically, counters are monotonic), and the
/// supervisor is the layer that decides whether to keep going.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Slot {
    key: AtomicU64,
    val: AtomicU64,
}

struct SlotTable {
    /// `slots.len() - 1`; the length is a power of two.
    mask: usize,
    /// `64 - log2(slots.len())`: the home-slot shift.
    shift: u32,
    slots: Box<[Slot]>,
}

impl SlotTable {
    fn alloc(len: usize) -> Box<SlotTable> {
        debug_assert!(len.is_power_of_two());
        let slots: Box<[Slot]> = (0..len)
            .map(|_| Slot {
                key: AtomicU64::new(KEY_EMPTY),
                val: AtomicU64::new(VAL_TOMBSTONE),
            })
            .collect();
        Box::new(SlotTable {
            mask: len - 1,
            shift: 64 - len.trailing_zeros(),
            slots,
        })
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(MIX) >> self.shift) as usize
    }
}

/// Writer-side bookkeeping, guarded by the shard mutex.
#[derive(Default)]
struct ShardWrite {
    live: usize,
    tombstones: usize,
}

/// Owned table pointer retired by growth; freed when the shard drops.
struct Retired(*mut SlotTable);
// Safety: the pointer is uniquely owned by the retired list and only
// dereferenced (to free) at drop time.
unsafe impl Send for Retired {}

struct Shard {
    table: AtomicPtr<SlotTable>,
    write: Mutex<ShardWrite>,
    retired: Mutex<Vec<Retired>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            table: AtomicPtr::new(Box::into_raw(SlotTable::alloc(INITIAL_SLOTS))),
            write: Mutex::new(ShardWrite::default()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// The current table.
    ///
    /// # Safety (internal)
    ///
    /// The pointer is always valid while `&self` is held: tables are
    /// only ever swapped for a newer one (the old pointer moving to the
    /// retired list) and freed at drop, which requires `&mut self`.
    #[inline]
    fn table(&self) -> &SlotTable {
        unsafe { &*self.table.load(Acquire) }
    }

    /// Lock-free probe. Terminates because writers keep the table at
    /// most 7/8 full (counting tombstones), so an empty slot exists.
    fn lookup(&self, key: u64) -> Option<u64> {
        let t = self.table();
        let mut i = t.home(key);
        loop {
            let k = t.slots[i].key.load(Acquire);
            if k == KEY_EMPTY {
                return None;
            }
            if k == key {
                let v = t.slots[i].val.load(Acquire);
                return (v != VAL_TOMBSTONE).then_some(v);
            }
            i = (i + 1) & t.mask;
        }
    }

    /// Inserts or updates a link. Caller holds the write lock. Returns
    /// the previous live value, if any.
    fn insert(&self, key: u64, val: u64, w: &mut ShardWrite) -> Option<u64> {
        debug_assert!(val != VAL_TOMBSTONE);
        loop {
            let t = self.table();
            let mut i = t.home(key);
            loop {
                let k = t.slots[i].key.load(Relaxed);
                if k == key {
                    let old = t.slots[i].val.swap(val, Release);
                    return if old == VAL_TOMBSTONE {
                        w.tombstones -= 1;
                        w.live += 1;
                        None
                    } else {
                        Some(old)
                    };
                }
                if k == KEY_EMPTY {
                    if (w.live + w.tombstones + 1) * 8 > t.slots.len() * 7 {
                        self.grow(w);
                        break; // re-probe against the new table
                    }
                    // Value first, then key: a reader that sees the key
                    // sees the value.
                    t.slots[i].val.store(val, Release);
                    t.slots[i].key.store(key, Release);
                    w.live += 1;
                    return None;
                }
                i = (i + 1) & t.mask;
            }
        }
    }

    /// Tombstones a link. Caller holds the write lock.
    fn remove(&self, key: u64, w: &mut ShardWrite) -> Option<u64> {
        let t = self.table();
        let mut i = t.home(key);
        loop {
            let k = t.slots[i].key.load(Relaxed);
            if k == KEY_EMPTY {
                return None;
            }
            if k == key {
                let old = t.slots[i].val.swap(VAL_TOMBSTONE, Release);
                return (old != VAL_TOMBSTONE).then(|| {
                    w.live -= 1;
                    w.tombstones += 1;
                    old
                });
            }
            i = (i + 1) & t.mask;
        }
    }

    /// Rehashes into a fresh table (doubling if genuinely full, else
    /// just shedding tombstones) and publishes it. Caller holds the
    /// write lock, so relaxed reads of the old table are exact.
    fn grow(&self, w: &mut ShardWrite) {
        let old = self.table();
        let cap = old.slots.len();
        let new_len = if (w.live + 1) * 8 > cap * 7 {
            cap * 2
        } else {
            cap
        };
        let new = SlotTable::alloc(new_len);
        for slot in old.slots.iter() {
            let k = slot.key.load(Relaxed);
            if k == KEY_EMPTY {
                continue;
            }
            let v = slot.val.load(Relaxed);
            if v == VAL_TOMBSTONE {
                continue;
            }
            let mut i = new.home(k);
            while new.slots[i].key.load(Relaxed) != KEY_EMPTY {
                i = (i + 1) & new.mask;
            }
            new.slots[i].val.store(v, Relaxed);
            new.slots[i].key.store(k, Relaxed);
        }
        w.tombstones = 0;
        let old_ptr = self.table.swap(Box::into_raw(new), Release);
        lock_recover(&self.retired).push(Retired(old_ptr));
    }

    fn memory_bytes(&self) -> usize {
        let current = self.table().slots.len() * std::mem::size_of::<Slot>();
        let retired: usize = lock_recover(&self.retired)
            .iter()
            .map(|r| unsafe { (*r.0).mask + 1 } * std::mem::size_of::<Slot>())
            .sum();
        current + retired
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        unsafe {
            drop(Box::from_raw(self.table.load(Relaxed)));
            let retired = self
                .retired
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner);
            for r in retired.drain(..) {
                drop(Box::from_raw(r.0));
            }
        }
    }
}

/// A hash-consed trace shared across VMs: the block sequence, the
/// completion estimate stamped at first construction, and an optional
/// pre-built execution artifact (e.g. a lowered trace).
pub struct SharedTrace<A> {
    /// The block sequence; `blocks[0]` is the entry block.
    pub blocks: Arc<[BlockId]>,
    /// Completion probability estimated at first construction.
    pub expected_completion: f64,
    /// Execution artifact, if the builder produced one. Raw access —
    /// executors must go through
    /// [`SharedTraceCache::artifact_checked`] so corruption is caught.
    pub artifact: Option<Arc<A>>,
    /// Integrity flag set by fault injection
    /// ([`FaultSite::CorruptArtifact`]). A corrupt artifact must never
    /// be executed; [`SharedTraceCache::artifact_checked`] surfaces it
    /// as [`TraceCacheError::CorruptArtifact`].
    pub corrupted: bool,
}

impl<A> Clone for SharedTrace<A> {
    fn clone(&self) -> Self {
        SharedTrace {
            blocks: self.blocks.clone(),
            expected_completion: self.expected_completion,
            artifact: self.artifact.clone(),
            corrupted: self.corrupted,
        }
    }
}

struct ConsState<A> {
    by_blocks: HashMap<Arc<[BlockId]>, TraceId>,
    /// Slot per id ever assigned; `None` marks a tombstoned (evicted or
    /// quarantined) trace. Ids are never reused.
    traces: Vec<Option<SharedTrace<A>>>,
    /// Byte cost charged per trace; zeroed when tombstoned.
    costs: Vec<usize>,
    /// Live entry-link keys per trace (reverse of the shard tables).
    entry_keys: Vec<Vec<u64>>,
    /// Second-chance sweep order (may hold stale keys; `referenced` is
    /// the source of truth).
    clock: VecDeque<u64>,
    /// Live link keys → second-chance bit.
    referenced: HashMap<u64, bool>,
    /// Blacklist: entry key → (exact block path, refusals remaining).
    quarantined: HashMap<u64, (Vec<BlockId>, u32)>,
    /// Sum of `costs` over live traces.
    payload: usize,
    /// Byte budget on `payload`; `None` disables eviction.
    budget: Option<usize>,
    /// Artifact byte-measure hook, installed with the budget.
    measure: Option<MeasureFn<A>>,
}

/// Artifact byte-measure hook installed alongside a payload budget.
type MeasureFn<A> = Box<dyn Fn(&A) -> usize + Send + Sync>;

impl<A> ConsState<A> {
    fn new() -> Self {
        ConsState {
            by_blocks: HashMap::new(),
            traces: Vec::new(),
            costs: Vec::new(),
            entry_keys: Vec::new(),
            clock: VecDeque::new(),
            referenced: HashMap::new(),
            quarantined: HashMap::new(),
            payload: 0,
            budget: None,
            measure: None,
        }
    }
}

/// Snapshot of the shared cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// New trace objects constructed.
    pub traces_constructed: u64,
    /// Insertions that found an identical block sequence already cached —
    /// the cross-VM dedup hits.
    pub traces_deduped: u64,
    /// Entry links written (new or re-linked).
    pub links_written: u64,
    /// Links that replaced a different trace (instability events).
    pub links_replaced: u64,
    /// Links removed.
    pub links_removed: u64,
    /// Links evicted by the budget's second-chance sweep.
    pub links_evicted: u64,
    /// Traces tombstoned (last link evicted, or quarantined) and their
    /// storage reclaimed.
    pub traces_evicted: u64,
    /// Traces tombstoned by [`SharedTraceCache::quarantine`].
    pub traces_quarantined: u64,
    /// Construction attempts refused by the quarantine blacklist.
    pub quarantine_rejected: u64,
    /// Budget-enforcement passes that ended while still over budget.
    pub budget_overruns: u64,
    /// Entry branches currently linked.
    pub links_live: usize,
    /// Current publication version.
    pub version: u64,
}

impl SharedCacheStats {
    /// Fraction of insertions served by hash-consing, in `[0, 1]`.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.traces_constructed + self.traces_deduped;
        if total == 0 {
            0.0
        } else {
            self.traces_deduped as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct StatsAtomic {
    traces_constructed: AtomicU64,
    traces_deduped: AtomicU64,
    links_written: AtomicU64,
    links_replaced: AtomicU64,
    links_removed: AtomicU64,
    links_evicted: AtomicU64,
    traces_evicted: AtomicU64,
    traces_quarantined: AtomicU64,
    quarantine_rejected: AtomicU64,
    budget_overruns: AtomicU64,
    links_live: AtomicUsize,
}

/// The shared trace cache. See the module docs for the protocol.
///
/// Generic over the artifact type `A` so this crate needs no knowledge
/// of the executor's lowered representation; the executor instantiates
/// `SharedTraceCache<LoweredTrace>`.
///
/// A cache must be shared only between VMs running the *same program*:
/// block ids carry no program identity, and artifacts are only valid
/// against the program they were lowered from.
///
/// A given VM must route all its lookups through a single cache —
/// [`lookup_entry_cached`](Self::lookup_entry_cached) stamps the BCG's
/// per-node link slots, which are only meaningful to the cache that
/// stamped them.
pub struct SharedTraceCache<A> {
    shards: Box<[Shard]>,
    shard_mask: usize,
    version: AtomicU64,
    cons: Mutex<ConsState<A>>,
    stats: StatsAtomic,
    faults: OnceLock<Arc<FaultPlan>>,
    /// Whole-lifetime trace-health telemetry and demotion ladder.
    /// Locked after `cons` when both are needed (admission, tombstone);
    /// outcome batches and epoch scoring take only this lock.
    health: Mutex<HealthLedger>,
}

impl<A> Default for SharedTraceCache<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A> SharedTraceCache<A> {
    /// A cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with `n` lock-striped shards (rounded up to a power of
    /// two, clamped to `1..=256`).
    pub fn with_shards(n: usize) -> Self {
        let n = n.clamp(1, 256).next_power_of_two();
        SharedTraceCache {
            shards: (0..n).map(|_| Shard::new()).collect(),
            shard_mask: n - 1,
            version: AtomicU64::new(0),
            cons: Mutex::new(ConsState::new()),
            stats: StatsAtomic::default(),
            faults: OnceLock::new(),
            health: Mutex::new(HealthLedger::default()),
        }
    }

    fn cons(&self) -> MutexGuard<'_, ConsState<A>> {
        lock_recover(&self.cons)
    }

    /// Attaches a fault plan; first call wins, later calls are ignored.
    /// The plan fires at [`FaultSite::CorruptArtifact`] (once per built
    /// artifact) and [`FaultSite::BudgetCheck`] (once per insert; a hit
    /// enforces a zero budget for that insert).
    pub fn set_faults(&self, plan: Arc<FaultPlan>) {
        let _ = self.faults.set(plan);
    }

    #[inline]
    fn shard_for(&self, key: u64) -> &Shard {
        // Top byte of a second-multiplier mix: uncorrelated with the
        // in-table home slot bits.
        let h = key.wrapping_mul(SHARD_MIX);
        &self.shards[(h >> 56) as usize & self.shard_mask]
    }

    /// The current publication version (bumped after every link
    /// mutation).
    pub fn version(&self) -> u64 {
        self.version.load(Acquire)
    }

    /// The trace linked at an entry branch, if any. Lock-free.
    #[inline]
    pub fn lookup_entry(&self, entry: Branch) -> Option<TraceId> {
        let key = PackedBranch::pack(entry).0;
        self.shard_for(key).lookup(key).map(|v| TraceId(v as u32))
    }

    /// The dispatch check via a BCG node's inline trace-link slot —
    /// the concurrent analogue of
    /// [`TraceCache::lookup_entry_cached`](crate::TraceCache::lookup_entry_cached).
    ///
    /// The BCG (and its slots) are private to the calling VM; only the
    /// version counter and the shard probe touch shared state. The slot
    /// is stamped with the version loaded *before* the probe, so a
    /// publication racing this lookup leaves the stamp stale and the
    /// next dispatch revalidates (see the module docs).
    #[inline]
    pub fn lookup_entry_cached(
        &self,
        bcg: &mut BranchCorrelationGraph,
        node: NodeIdx,
    ) -> Option<TraceId> {
        let (stamp, raw) = bcg.node(node).trace_link();
        let v = self.version.load(Acquire);
        if stamp == v {
            return (raw != NO_TRACE_LINK).then_some(TraceId(raw));
        }
        let found = self.lookup_entry(bcg.node(node).branch());
        bcg.set_trace_link(node, v, found.map_or(NO_TRACE_LINK, |t| t.0));
        found
    }

    /// Hash-conses a block sequence (building its artifact on first
    /// construction), links it at `entry`, and enforces the byte budget
    /// (the just-written link is never the victim). Returns the trace
    /// id and whether a new trace object was constructed.
    ///
    /// `build` runs under the construction mutex — acceptable because
    /// construction is rare and (in the off-thread design) single-caller;
    /// dispatch threads never take that mutex on the hot path.
    ///
    /// This path does **not** consult the quarantine blacklist — the
    /// constructor goes through [`Self::try_insert_and_link_with`].
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or `entry.1 != blocks[0]`.
    pub fn insert_and_link_with(
        &self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
        build: impl FnOnce(&[BlockId]) -> Option<A>,
    ) -> (TraceId, bool) {
        match self.insert_inner(entry, blocks, expected_completion, build, false) {
            Ok(r) => r,
            Err(_) => unreachable!("quarantine is not consulted on this path"),
        }
    }

    /// [`Self::insert_and_link_with`] behind the quarantine blacklist:
    /// a quarantined `(entry, path)` key is refused and its cooldown
    /// ticks down by one; at zero the key is re-admitted and the *next*
    /// attempt succeeds.
    pub fn try_insert_and_link_with(
        &self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
        build: impl FnOnce(&[BlockId]) -> Option<A>,
    ) -> Result<(TraceId, bool), TraceCacheError> {
        self.insert_inner(entry, blocks, expected_completion, build, true)
    }

    fn insert_inner(
        &self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
        build: impl FnOnce(&[BlockId]) -> Option<A>,
        check_quarantine: bool,
    ) -> Result<(TraceId, bool), TraceCacheError> {
        assert!(!blocks.is_empty(), "trace must contain at least one block");
        assert_eq!(
            entry.1, blocks[0],
            "entry branch must target the trace's first block"
        );
        let key = PackedBranch::pack(entry).0;
        let mut cons = self.cons();
        if check_quarantine {
            if let Some((qblocks, remaining)) = cons.quarantined.get_mut(&key) {
                if *qblocks == blocks {
                    *remaining -= 1;
                    let left = *remaining;
                    if left == 0 {
                        cons.quarantined.remove(&key);
                    }
                    self.stats.quarantine_rejected.fetch_add(1, Relaxed);
                    return Err(TraceCacheError::Quarantined {
                        entry,
                        remaining: left,
                    });
                }
            }
        }
        let (id, created) = match cons.by_blocks.get(blocks.as_slice()) {
            Some(&id) => {
                self.stats.traces_deduped.fetch_add(1, Relaxed);
                (id, false)
            }
            None => {
                let blocks: Arc<[BlockId]> = blocks.into();
                let id = TraceId(cons.traces.len() as u32);
                let artifact = build(&blocks).map(Arc::new);
                let corrupted = artifact.is_some()
                    && self
                        .faults
                        .get()
                        .is_some_and(|p| p.fire(FaultSite::CorruptArtifact));
                let cost = trace_cost(blocks.len())
                    + match (&artifact, &cons.measure) {
                        (Some(a), Some(m)) => m(a),
                        _ => 0,
                    };
                cons.traces.push(Some(SharedTrace {
                    blocks: blocks.clone(),
                    expected_completion,
                    artifact,
                    corrupted,
                }));
                cons.costs.push(cost);
                cons.entry_keys.push(Vec::new());
                cons.payload += cost;
                cons.by_blocks.insert(blocks, id);
                self.stats.traces_constructed.fetch_add(1, Relaxed);
                (id, true)
            }
        };
        let shard = self.shard_for(key);
        {
            let mut w = lock_recover(&shard.write);
            match shard.insert(key, u64::from(id.0), &mut w) {
                Some(old) if old != u64::from(id.0) => {
                    self.stats.links_replaced.fetch_add(1, Relaxed);
                    let old = TraceId(old as u32);
                    cons.entry_keys[old.index()].retain(|&k| k != key);
                    self.reclaim_if_unlinked(&mut cons, old);
                }
                Some(_) => {}
                None => {
                    self.stats.links_live.fetch_add(1, Relaxed);
                }
            }
            self.stats.links_written.fetch_add(1, Relaxed);
        }
        // Second-chance bookkeeping: first-time links enter the sweep
        // unreferenced; touching a live link grants it another round.
        match cons.referenced.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(true);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(false);
                cons.clock.push_back(key);
            }
        }
        if !cons.entry_keys[id.index()].contains(&key) {
            cons.entry_keys[id.index()].push(key);
        }
        lock_recover(&self.health).note_admission(id, entry);
        let budget = if self
            .faults
            .get()
            .is_some_and(|p| p.fire(FaultSite::BudgetCheck))
        {
            Some(0)
        } else {
            cons.budget
        };
        self.enforce_budget(&mut cons, budget, key);
        drop(cons);
        // Bump *after* the mutation: a reader that observes this version
        // is guaranteed to observe the link (Release/Acquire pairing).
        self.version.fetch_add(1, Release);
        Ok((id, created))
    }

    /// [`Self::insert_and_link_with`] without an artifact.
    pub fn insert_and_link(
        &self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
    ) -> (TraceId, bool) {
        self.insert_and_link_with(entry, blocks, expected_completion, |_| None)
    }

    /// [`Self::try_insert_and_link_with`] without an artifact.
    pub fn try_insert_and_link(
        &self,
        entry: Branch,
        blocks: Vec<BlockId>,
        expected_completion: f64,
    ) -> Result<(TraceId, bool), TraceCacheError> {
        self.try_insert_and_link_with(entry, blocks, expected_completion, |_| None)
    }

    /// Removes the link at an entry branch, if any.
    pub fn unlink(&self, entry: Branch) -> Option<TraceId> {
        let key = PackedBranch::pack(entry).0;
        let mut cons = self.cons();
        let shard = self.shard_for(key);
        let removed = {
            let mut w = lock_recover(&shard.write);
            shard.remove(key, &mut w)
        };
        removed.map(|v| {
            let id = TraceId(v as u32);
            self.stats.links_removed.fetch_add(1, Relaxed);
            self.stats.links_live.fetch_sub(1, Relaxed);
            cons.referenced.remove(&key);
            cons.entry_keys[id.index()].retain(|&k| k != key);
            self.reclaim_if_unlinked(&mut cons, id);
            drop(cons);
            self.version.fetch_add(1, Release);
            id
        })
    }

    /// Tombstones the trace linked at `entry`, removes *all* of its
    /// entry links, and blacklists the faulting `(entry, path)` key for
    /// `cooldown` refused construction attempts. The version bump
    /// forces every VM's cached dispatches to revalidate. Returns the
    /// tombstoned id, or `None` if nothing is linked at `entry`.
    pub fn quarantine(&self, entry: Branch, cooldown: u32) -> Option<TraceId> {
        let key = PackedBranch::pack(entry).0;
        let mut cons = self.cons();
        let raw = self.shard_for(key).lookup(key)?;
        let id = TraceId(raw as u32);
        let blocks = cons.traces[id.index()].as_ref()?.blocks.to_vec();
        cons.quarantined.insert(key, (blocks, cooldown.max(1)));
        for k in std::mem::take(&mut cons.entry_keys[id.index()]) {
            let shard = self.shard_for(k);
            let mut w = lock_recover(&shard.write);
            if shard.remove(k, &mut w).is_some() {
                self.stats.links_removed.fetch_add(1, Relaxed);
                self.stats.links_live.fetch_sub(1, Relaxed);
            }
            cons.referenced.remove(&k);
        }
        self.tombstone(&mut cons, id);
        self.stats.traces_quarantined.fetch_add(1, Relaxed);
        drop(cons);
        self.version.fetch_add(1, Release);
        Some(id)
    }

    /// Sets (or clears) the payload byte budget, installs the artifact
    /// byte-measure hook, and immediately enforces the budget. Set the
    /// budget *before* populating the cache: traces inserted earlier
    /// were costed without artifact bytes.
    pub fn set_budget(
        &self,
        budget: Option<usize>,
        measure: impl Fn(&A) -> usize + Send + Sync + 'static,
    ) {
        let mut cons = self.cons();
        cons.budget = budget;
        cons.measure = Some(Box::new(measure));
        let b = cons.budget;
        self.enforce_budget(&mut cons, b, u64::MAX);
        drop(cons);
        self.version.fetch_add(1, Release);
    }

    /// The configured payload budget, if any.
    pub fn budget(&self) -> Option<usize> {
        self.cons().budget
    }

    /// Bytes currently charged against the budget: block sequences,
    /// per-trace overhead, and measured artifact bytes of live traces.
    pub fn payload_bytes(&self) -> usize {
        self.cons().payload
    }

    /// The quarantine blacklist: `(entry, path, refusals remaining)`,
    /// sorted by packed entry key.
    pub fn quarantine_snapshot(&self) -> Vec<(Branch, Vec<BlockId>, u32)> {
        let cons = self.cons();
        let mut keys: Vec<&u64> = cons.quarantined.keys().collect();
        keys.sort_unstable();
        keys.into_iter()
            .map(|k| {
                let (blocks, remaining) = &cons.quarantined[k];
                (PackedBranch(*k).unpack(), blocks.clone(), *remaining)
            })
            .collect()
    }

    /// Ingests a batch of dispatch outcomes into the health ledger.
    /// Takes only the health lock — never the construction mutex — so
    /// dispatch threads flushing batches don't contend with the
    /// constructor.
    pub fn record_outcomes(&self, batch: &[OutcomeRecord]) {
        let mut h = lock_recover(&self.health);
        for rec in batch {
            h.record(rec);
        }
    }

    /// Run-length-encoded variant of [`SharedTraceCache::record_outcomes`]:
    /// each `(record, n)` entry stands for `n` identical consecutive
    /// outcomes. Takes the health lock once for the whole batch.
    pub fn record_outcome_runs(&self, runs: &[(OutcomeRecord, u64)]) {
        let mut h = lock_recover(&self.health);
        for (rec, n) in runs {
            h.record_run(rec, *n);
        }
    }

    /// Closes the health epoch and returns the demotion decisions (see
    /// [`crate::run_health_epoch`] for how they are applied).
    pub fn epoch_demotions(&self) -> Vec<Demotion> {
        lock_recover(&self.health).epoch()
    }

    /// Health ledger counters.
    pub fn health_stats(&self) -> HealthStats {
        lock_recover(&self.health).stats()
    }

    /// Health telemetry snapshot for one tracked trace.
    pub fn trace_health(&self, id: TraceId) -> Option<TraceHealth> {
        lock_recover(&self.health).health_of(id).cloned()
    }

    fn tombstone(&self, cons: &mut ConsState<A>, id: TraceId) {
        let i = id.index();
        debug_assert!(cons.entry_keys[i].is_empty());
        cons.payload -= cons.costs[i];
        cons.costs[i] = 0;
        if let Some(t) = cons.traces[i].take() {
            cons.by_blocks.remove(&t.blocks[..]);
        }
        self.stats.traces_evicted.fetch_add(1, Relaxed);
        lock_recover(&self.health).forget(id);
    }

    /// In budget mode an unlinked trace can never be chosen by the
    /// sweep, so it is reclaimed as soon as its last link goes (same
    /// rule as the single-owner cache).
    fn reclaim_if_unlinked(&self, cons: &mut ConsState<A>, id: TraceId) {
        if cons.budget.is_some()
            && cons.entry_keys[id.index()].is_empty()
            && cons.traces[id.index()].is_some()
        {
            self.tombstone(cons, id);
        }
    }

    /// Evicts links (second-chance, insertion order — identical policy
    /// to [`crate::TraceCache`]) until the payload fits `budget`.
    fn enforce_budget(&self, cons: &mut ConsState<A>, budget: Option<usize>, protect: u64) {
        let Some(budget) = budget else {
            return;
        };
        while cons.payload > budget {
            let mut victim = None;
            let mut remaining = 2 * cons.clock.len() + 1;
            while remaining > 0 {
                remaining -= 1;
                let Some(key) = cons.clock.pop_front() else {
                    break;
                };
                match cons.referenced.get(&key).copied() {
                    None => continue, // stale: unlinked outside the sweep
                    Some(_) if key == protect => cons.clock.push_back(key),
                    Some(true) => {
                        cons.referenced.insert(key, false);
                        cons.clock.push_back(key);
                    }
                    Some(false) => {
                        victim = Some(key);
                        break;
                    }
                }
            }
            let Some(key) = victim else {
                self.stats.budget_overruns.fetch_add(1, Relaxed);
                break;
            };
            let shard = self.shard_for(key);
            let removed = {
                let mut w = lock_recover(&shard.write);
                shard.remove(key, &mut w)
            };
            cons.referenced.remove(&key);
            let Some(raw) = removed else {
                continue; // sweep raced an unlink; key already gone
            };
            let id = TraceId(raw as u32);
            self.stats.links_evicted.fetch_add(1, Relaxed);
            self.stats.links_live.fetch_sub(1, Relaxed);
            cons.entry_keys[id.index()].retain(|&k| k != key);
            if cons.entry_keys[id.index()].is_empty() {
                self.tombstone(cons, id);
            }
        }
    }

    /// The shared trace object for an id (blocks, completion, artifact);
    /// `None` for unknown or tombstoned ids.
    pub fn trace(&self, id: TraceId) -> Option<SharedTrace<A>> {
        self.cons().traces.get(id.index()).and_then(|t| t.clone())
    }

    /// The execution artifact for a trace, if one was built. Raw access
    /// — dispatch paths use [`Self::artifact_checked`].
    pub fn artifact(&self, id: TraceId) -> Option<Arc<A>> {
        self.cons()
            .traces
            .get(id.index())
            .and_then(|t| t.as_ref())
            .and_then(|t| t.artifact.clone())
    }

    /// The execution artifact with integrity surfaced: `Err` for ids
    /// this cache never assigned, tombstoned traces, and corrupt
    /// artifacts; `Ok(None)` for live artifact-less traces (keep
    /// interpreting). A VM receiving
    /// [`TraceCacheError::CorruptArtifact`] must not execute the
    /// artifact and should [`Self::quarantine`] the entry it dispatched
    /// from.
    pub fn artifact_checked(&self, id: TraceId) -> Result<Option<Arc<A>>, TraceCacheError> {
        let cons = self.cons();
        match cons.traces.get(id.index()) {
            None => Err(TraceCacheError::UnknownTrace(id)),
            Some(None) => Err(TraceCacheError::Evicted(id)),
            Some(Some(t)) if t.corrupted => Err(TraceCacheError::CorruptArtifact(id)),
            Some(Some(t)) => Ok(t.artifact.clone()),
        }
    }

    /// Number of distinct trace objects ever constructed (tombstoned
    /// slots included; ids are never reused).
    pub fn trace_count(&self) -> usize {
        self.cons().traces.len()
    }

    /// Number of live (non-tombstoned) trace objects.
    pub fn live_trace_count(&self) -> usize {
        self.cons().traces.iter().flatten().count()
    }

    /// Number of live entry links.
    pub fn link_count(&self) -> usize {
        self.stats.links_live.load(Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SharedCacheStats {
        SharedCacheStats {
            traces_constructed: self.stats.traces_constructed.load(Relaxed),
            traces_deduped: self.stats.traces_deduped.load(Relaxed),
            links_written: self.stats.links_written.load(Relaxed),
            links_replaced: self.stats.links_replaced.load(Relaxed),
            links_removed: self.stats.links_removed.load(Relaxed),
            links_evicted: self.stats.links_evicted.load(Relaxed),
            traces_evicted: self.stats.traces_evicted.load(Relaxed),
            traces_quarantined: self.stats.traces_quarantined.load(Relaxed),
            quarantine_rejected: self.stats.quarantine_rejected.load(Relaxed),
            budget_overruns: self.stats.budget_overruns.load(Relaxed),
            links_live: self.stats.links_live.load(Relaxed),
            version: self.version.load(Acquire),
        }
    }

    /// Estimated heap footprint in bytes: shard tables (current and
    /// retired), the hash-consing index, trace objects and their block
    /// sequences, and artifacts as measured by `artifact_bytes`.
    /// Tombstoned traces contribute only their (empty) table slot.
    pub fn memory_estimate(&self, artifact_bytes: impl Fn(&A) -> usize) -> usize {
        use std::mem::size_of;
        let shards: usize = self.shards.iter().map(|s| s.memory_bytes()).sum();
        let cons = self.cons();
        let index = cons.by_blocks.capacity()
            * (size_of::<Arc<[BlockId]>>() + size_of::<TraceId>() + size_of::<u64>());
        let traces = cons.traces.capacity() * size_of::<Option<SharedTrace<A>>>();
        let payload: usize = cons
            .traces
            .iter()
            .flatten()
            .map(|t| {
                t.blocks.len() * size_of::<BlockId>()
                    + t.artifact.as_deref().map_or(0, &artifact_bytes)
            })
            .sum();
        shards + index + traces + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    #[test]
    fn insert_links_and_retrieves() {
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, created) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert!(created);
        assert_eq!(c.lookup_entry(entry), Some(id));
        let t = c.trace(id).unwrap();
        assert_eq!(&t.blocks[..], &[blk(1), blk(2)]);
        assert_eq!(t.expected_completion, 0.99);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 1);
    }

    #[test]
    fn hash_consing_dedups_across_entries() {
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        let (a, ca) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        let (b, cb) = c.insert_and_link((blk(9), blk(1)), vec![blk(1), blk(2)], 0.98);
        assert!(ca);
        assert!(!cb);
        assert_eq!(a, b);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.link_count(), 2);
        let s = c.stats();
        assert_eq!(s.traces_deduped, 1);
        assert_eq!(s.dedup_hit_rate(), 0.5);
    }

    #[test]
    fn unlink_removes_entry_but_keeps_trace() {
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        let entry = (blk(0), blk(1));
        let (id, _) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.unlink(entry), Some(id));
        assert_eq!(c.lookup_entry(entry), None);
        assert_eq!(c.trace_count(), 1);
        assert_eq!(c.unlink(entry), None);
        // Relinking over the tombstone works.
        let (id2, created) = c.insert_and_link(entry, vec![blk(1), blk(2)], 0.99);
        assert_eq!(id2, id);
        assert!(!created);
        assert_eq!(c.lookup_entry(entry), Some(id));
    }

    #[test]
    fn artifacts_are_built_once_and_shared() {
        let c: SharedTraceCache<Vec<BlockId>> = SharedTraceCache::new();
        let mut builds = 0;
        let (id, _) = c.insert_and_link_with((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99, |b| {
            builds += 1;
            Some(b.to_vec())
        });
        let (_, _) = c.insert_and_link_with((blk(5), blk(1)), vec![blk(1), blk(2)], 0.99, |b| {
            builds += 1;
            Some(b.to_vec())
        });
        assert_eq!(builds, 1, "dedup hit must not rebuild the artifact");
        let a1 = c.artifact(id).unwrap();
        let a2 = c.artifact(id).unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(&a1[..], &[blk(1), blk(2)]);
        assert_eq!(
            c.artifact_checked(id).unwrap().unwrap()[..],
            [blk(1), blk(2)]
        );
    }

    #[test]
    fn growth_keeps_all_links_findable() {
        // One shard so every link lands in the same table and forces
        // several growth rounds.
        let c: SharedTraceCache<()> = SharedTraceCache::with_shards(1);
        let mut expect = Vec::new();
        for i in 0..300u32 {
            let entry = (blk(i), blk(i + 1));
            let (id, _) = c.insert_and_link(entry, vec![blk(i + 1), blk(i + 2)], 0.99);
            expect.push((entry, id));
        }
        for (entry, id) in expect {
            assert_eq!(c.lookup_entry(entry), Some(id));
        }
        assert_eq!(c.link_count(), 300);
    }

    #[test]
    fn tombstone_churn_does_not_grow_forever() {
        let c: SharedTraceCache<()> = SharedTraceCache::with_shards(1);
        let entry = |i: u32| (blk(i), blk(i + 1));
        // Insert/remove churn over a small working set: rebuilds shed
        // tombstones instead of doubling without bound.
        for round in 0..200u32 {
            for i in 0..8 {
                c.insert_and_link(entry(i), vec![blk(i + 1), blk(i + 2)], 0.99);
            }
            for i in 0..8 {
                assert!(c.unlink(entry(i)).is_some(), "round {round} item {i}");
            }
        }
        assert_eq!(c.link_count(), 0);
        // 8 live keys fit comfortably; the table must have stayed small.
        let bytes = c.shards[0].table().slots.len();
        assert!(bytes <= 64, "shard table grew to {bytes} slots");
    }

    #[test]
    fn cached_lookup_mirrors_single_threaded_protocol() {
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        bcg.observe(blk(0));
        let n = bcg.observe(blk(1)).expect("branch node");
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        // Negative result is cached in the slot.
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        assert_eq!(bcg.node(n).trace_link(), (c.version(), NO_TRACE_LINK));
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        // A publication bumps the version; the stale negative revalidates.
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        assert_eq!(bcg.node(n).trace_link(), (c.version(), id.0));
        // Unlink invalidates the cached positive.
        c.unlink((blk(0), blk(1)));
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
    }

    /// Satellite: a reader racing a republish never observes a torn
    /// link. The writer relinks one entry back and forth between two
    /// traces (and occasionally unlinks it) while readers — one raw,
    /// one through version-stamped BCG slots — continuously resolve the
    /// entry. Every observed id must resolve to one of the two exact
    /// block sequences; a torn slot (key without value, stale table
    /// mid-growth, value from the other trace's republish) would fail
    /// the sequence check.
    #[test]
    fn concurrent_republish_never_tears_links() {
        let cache: Arc<SharedTraceCache<Vec<BlockId>>> = Arc::new(SharedTraceCache::with_shards(2));
        let entry = (blk(0), blk(1));
        let seq_a = vec![blk(1), blk(2)];
        let seq_b = vec![blk(1), blk(3)];
        const ROUNDS: u32 = 4_000;

        std::thread::scope(|s| {
            let c = Arc::clone(&cache);
            let (sa, sb) = (seq_a.clone(), seq_b.clone());
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let seq = if i % 2 == 0 { sa.clone() } else { sb.clone() };
                    c.insert_and_link_with(entry, seq.clone(), 0.99, |b| Some(b.to_vec()));
                    if i % 17 == 0 {
                        c.unlink(entry);
                    }
                    // Churn other shards too, to exercise growth under
                    // concurrent readers.
                    let e = (blk(100 + i % 50), blk(200 + i % 50));
                    c.insert_and_link(e, vec![blk(200 + i % 50), blk(7)], 0.99);
                    if i % 3 == 0 {
                        std::thread::yield_now();
                    }
                }
            });

            // Raw reader: lock-free probes only.
            let c = Arc::clone(&cache);
            let (sa, sb) = (seq_a.clone(), seq_b.clone());
            s.spawn(move || {
                for i in 0..ROUNDS {
                    if let Some(id) = c.lookup_entry(entry) {
                        let t = c.trace(id).expect("published id must resolve");
                        assert!(
                            t.blocks[..] == sa[..] || t.blocks[..] == sb[..],
                            "torn link: {:?}",
                            &t.blocks[..]
                        );
                        let art = c.artifact(id).expect("artifact published with trace");
                        assert_eq!(&art[..], &t.blocks[..], "artifact/trace mismatch");
                    }
                    if i % 5 == 0 {
                        std::thread::yield_now();
                    }
                }
            });

            // Stamped reader: drives its own (thread-private) BCG through
            // the version-stamp protocol.
            let c = Arc::clone(&cache);
            s.spawn(move || {
                let mut bcg =
                    trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
                bcg.observe(blk(0));
                let n = bcg.observe(blk(1)).expect("branch node");
                for i in 0..ROUNDS {
                    if let Some(id) = c.lookup_entry_cached(&mut bcg, n) {
                        let t = c.trace(id).expect("stamped id must resolve");
                        assert_eq!(t.blocks[0], blk(1), "entry must land on block 0");
                    }
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        });

        // Quiescent: the stamped path and the raw path agree.
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        bcg.observe(blk(0));
        let n = bcg.observe(blk(1)).unwrap();
        assert_eq!(
            cache.lookup_entry_cached(&mut bcg, n),
            cache.lookup_entry(entry)
        );
    }

    #[test]
    fn memory_estimate_counts_shards_traces_and_artifacts() {
        let c: SharedTraceCache<Vec<BlockId>> = SharedTraceCache::with_shards(4);
        let empty = c.memory_estimate(|a| a.capacity() * std::mem::size_of::<BlockId>());
        assert!(empty > 0, "shard tables alone occupy memory");
        for i in 0..50u32 {
            c.insert_and_link_with(
                (blk(i), blk(i + 1)),
                vec![blk(i + 1), blk(i + 2)],
                0.99,
                |b| Some(b.to_vec()),
            );
        }
        let full = c.memory_estimate(|a| a.capacity() * std::mem::size_of::<BlockId>());
        assert!(
            full > empty,
            "estimate must grow with contents: {empty} -> {full}"
        );
    }

    // --- budget / eviction / quarantine / faults ---

    #[test]
    fn budget_bounds_payload_at_every_post_insert_point() {
        let c: SharedTraceCache<Vec<BlockId>> = SharedTraceCache::with_shards(2);
        let measure = |a: &Vec<BlockId>| a.capacity() * std::mem::size_of::<BlockId>();
        let budget = 4 * (trace_cost(2) + 2 * std::mem::size_of::<BlockId>());
        c.set_budget(Some(budget), measure);
        for i in 0..64u32 {
            c.insert_and_link_with(
                (blk(i), blk(i + 1)),
                vec![blk(i + 1), blk(i + 2)],
                0.99,
                |b| Some(b.to_vec()),
            );
            assert!(
                c.payload_bytes() <= budget,
                "payload {} over budget {budget} after insert {i}",
                c.payload_bytes()
            );
        }
        let s = c.stats();
        assert!(s.links_evicted >= 60, "churn must evict: {s:?}");
        assert_eq!(s.budget_overruns, 0);
        assert!(c.live_trace_count() <= 4);
        assert_eq!(c.trace_count(), 64, "ids are never reused");
    }

    #[test]
    fn eviction_bumps_version_so_cached_dispatch_revalidates() {
        let mut bcg = trace_bcg::BranchCorrelationGraph::new(trace_bcg::BcgConfig::paper_default());
        bcg.observe(blk(0));
        let n = bcg.observe(blk(1)).expect("branch node");
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        c.set_budget(Some(trace_cost(2)), |_| 0);
        let (id, _) = c.insert_and_link((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), Some(id));
        // Next insert evicts the first trace; the stamped slot must
        // revalidate to None rather than serve the dangling id.
        let _ = c.insert_and_link((blk(5), blk(6)), vec![blk(6), blk(7)], 0.99);
        assert_eq!(c.lookup_entry_cached(&mut bcg, n), None);
        assert!(c.trace(id).is_none(), "evicted trace is tombstoned");
        assert!(matches!(
            c.artifact_checked(id),
            Err(TraceCacheError::Evicted(_))
        ));
    }

    #[test]
    fn quarantine_blacklists_and_cooldown_readmits() {
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        let entry = (blk(0), blk(1));
        let path = vec![blk(1), blk(2)];
        let (id, _) = c.insert_and_link(entry, path.clone(), 0.99);
        let _ = c.insert_and_link((blk(9), blk(1)), path.clone(), 0.99);
        assert_eq!(c.quarantine(entry, 2), Some(id));
        assert_eq!(c.lookup_entry(entry), None);
        assert_eq!(c.lookup_entry((blk(9), blk(1))), None, "all links removed");
        assert!(c.trace(id).is_none());
        assert_eq!(c.quarantine_snapshot().len(), 1);
        assert!(matches!(
            c.try_insert_and_link(entry, path.clone(), 0.99),
            Err(TraceCacheError::Quarantined { remaining: 1, .. })
        ));
        assert!(matches!(
            c.try_insert_and_link(entry, path.clone(), 0.99),
            Err(TraceCacheError::Quarantined { remaining: 0, .. })
        ));
        let (nid, created) = c.try_insert_and_link(entry, path, 0.99).unwrap();
        assert!(created, "tombstoned path must rebuild under a fresh id");
        assert_ne!(nid, id);
        assert_eq!(c.stats().quarantine_rejected, 2);
        assert!(c.quarantine_snapshot().is_empty());
    }

    #[test]
    fn corrupt_artifact_fault_is_surfaced_not_served() {
        let c: SharedTraceCache<Vec<BlockId>> = SharedTraceCache::new();
        c.set_faults(Arc::new(FaultPlan::new(
            1,
            FaultConfig {
                corrupt_artifact: 1.0,
                ..FaultConfig::none()
            },
        )));
        let (id, _) = c.insert_and_link_with((blk(0), blk(1)), vec![blk(1), blk(2)], 0.99, |b| {
            Some(b.to_vec())
        });
        assert!(matches!(
            c.artifact_checked(id),
            Err(TraceCacheError::CorruptArtifact(_))
        ));
        // Quarantining the entry retires the corrupt trace for good.
        assert_eq!(c.quarantine((blk(0), blk(1)), 1), Some(id));
        assert!(matches!(
            c.artifact_checked(id),
            Err(TraceCacheError::Evicted(_))
        ));
    }

    #[test]
    fn budget_check_fault_forces_eviction_pressure() {
        let c: SharedTraceCache<()> = SharedTraceCache::new();
        c.set_faults(Arc::new(FaultPlan::new(
            7,
            FaultConfig {
                fail_budget_check: 1.0,
                ..FaultConfig::none()
            },
        )));
        // No budget configured — but every insert's budget check fails,
        // so only the just-inserted trace ever survives.
        for i in 0..8u32 {
            c.insert_and_link((blk(10 * i), blk(10 * i + 1)), vec![blk(10 * i + 1)], 0.99);
        }
        assert_eq!(c.live_trace_count(), 1);
        assert_eq!(c.link_count(), 1);
        assert!(c.stats().links_evicted >= 7);
    }

    /// Satellite: eviction races a reader mid-probe. A writer churns
    /// inserts under a tiny budget (constant eviction) while a reader
    /// probes and resolves; every resolved trace must be coherent and
    /// every evicted id must answer `None`/`Err`, never garbage.
    #[test]
    fn eviction_races_reader_mid_probe() {
        let cache: Arc<SharedTraceCache<Vec<BlockId>>> = Arc::new(SharedTraceCache::with_shards(2));
        cache.set_budget(Some(3 * (trace_cost(2) + 64)), |a| {
            a.capacity() * std::mem::size_of::<BlockId>()
        });
        const ROUNDS: u32 = 3_000;
        std::thread::scope(|s| {
            let c = Arc::clone(&cache);
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let k = i % 24;
                    c.insert_and_link_with(
                        (blk(k), blk(100 + k)),
                        vec![blk(100 + k), blk(200 + k)],
                        0.99,
                        |b| Some(b.to_vec()),
                    );
                    if i % 5 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let c = Arc::clone(&cache);
            s.spawn(move || {
                let mut resolved = 0u32;
                for i in 0..ROUNDS {
                    let k = i % 24;
                    if let Some(id) = c.lookup_entry((blk(k), blk(100 + k))) {
                        // The link may be evicted between probe and
                        // fetch; a tombstone is fine, garbage is not.
                        if let Some(t) = c.trace(id) {
                            assert_eq!(t.blocks[0], blk(100 + k), "incoherent trace");
                            resolved += 1;
                        } else {
                            assert!(matches!(
                                c.artifact_checked(id),
                                Err(TraceCacheError::Evicted(_))
                            ));
                        }
                    }
                    if i % 7 == 0 {
                        std::thread::yield_now();
                    }
                }
                assert!(resolved > 0, "reader must resolve some live traces");
            });
        });
        let budget = cache.budget().unwrap();
        assert!(cache.payload_bytes() <= budget);
        assert!(cache.stats().links_evicted > 0);
    }
}

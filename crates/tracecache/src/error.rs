//! Surfaced (non-panicking) failure modes of the trace cache.
//!
//! The paper's contract makes every cache failure recoverable: the
//! interpreter is always a correct fallback, so a missing, evicted,
//! quarantined or corrupt trace only ever costs speed. Library paths
//! reachable from dispatch or the constructor loop therefore surface
//! these conditions as values instead of panicking; callers skip the
//! trace and keep interpreting.

use std::fmt;

use trace_bcg::Branch;

use crate::trace::TraceId;

/// A recoverable trace-cache failure. Every variant means "fall back to
/// block dispatch", never "wrong answer".
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCacheError {
    /// The `(entry, path)` key is blacklisted: a trace built there
    /// faulted recently and the cooldown has not yet decayed.
    /// `remaining` is the number of further construction attempts that
    /// will still be refused.
    Quarantined {
        /// The entry branch of the refused insert.
        entry: Branch,
        /// Refusals left before the key is re-admitted.
        remaining: u32,
    },
    /// The id was never assigned by this cache.
    UnknownTrace(TraceId),
    /// The trace existed but was evicted (or quarantined) and its
    /// storage reclaimed; ids are never reused, so the caller simply
    /// drops its reference.
    Evicted(TraceId),
    /// The trace's execution artifact failed its integrity check; the
    /// caller must not execute it and should quarantine the trace.
    CorruptArtifact(TraceId),
}

impl fmt::Display for TraceCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCacheError::Quarantined { entry, remaining } => write!(
                f,
                "entry ({}, {}) is quarantined ({remaining} refusals remaining)",
                entry.0, entry.1
            ),
            TraceCacheError::UnknownTrace(id) => write!(f, "unknown trace {id}"),
            TraceCacheError::Evicted(id) => write!(f, "trace {id} was evicted"),
            TraceCacheError::CorruptArtifact(id) => {
                write!(f, "artifact of trace {id} failed its integrity check")
            }
        }
    }
}

impl std::error::Error for TraceCacheError {}

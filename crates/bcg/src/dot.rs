//! Graphviz export of the branch correlation graph.
//!
//! Renders the BCG in `dot` format for inspection: one node per branch
//! `N_XY`, shaded by state, with edges labelled by their correlation
//! ratio. Feed the output to `dot -Tsvg` to see what the profiler
//! believes about a program.

use std::fmt::Write as _;

use crate::graph::BranchCorrelationGraph;
use crate::state::NodeState;

fn state_color(state: NodeState) -> &'static str {
    match state {
        NodeState::NewlyCreated => "gray80",
        NodeState::Weak => "khaki",
        NodeState::Strong => "palegreen",
        NodeState::Unique => "skyblue",
    }
}

/// Renders the graph as Graphviz `dot`, omitting nodes with fewer than
/// `min_executions` lifetime executions (rare code clutters the picture).
///
/// ```
/// use jvm_bytecode::{BlockId, FuncId};
/// use trace_bcg::{BranchCorrelationGraph, BcgConfig, dot};
///
/// let mut bcg = BranchCorrelationGraph::new(BcgConfig::default().with_start_delay(1));
/// for _ in 0..32 {
///     bcg.observe(BlockId::new(FuncId(0), 0));
///     bcg.observe(BlockId::new(FuncId(0), 1));
/// }
/// let out = dot::to_dot(&bcg, 1);
/// assert!(out.starts_with("digraph bcg {"));
/// assert!(out.contains("->"));
/// ```
pub fn to_dot(bcg: &BranchCorrelationGraph, min_executions: u64) -> String {
    let mut out = String::from(
        "digraph bcg {\n  rankdir=LR;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n",
    );
    let included: Vec<bool> = bcg
        .iter()
        .map(|(_, n)| n.executions() >= min_executions)
        .collect();
    for (idx, node) in bcg.iter() {
        if !included[idx.index()] {
            continue;
        }
        let (x, y) = node.branch();
        let _ = writeln!(
            out,
            "  n{} [label=\"{} -> {}\\n{} x{}\", fillcolor={}];",
            idx.index(),
            x,
            y,
            node.state(),
            node.executions(),
            state_color(node.state()),
        );
    }
    for (idx, node) in bcg.iter() {
        if !included[idx.index()] {
            continue;
        }
        for s in node.successors() {
            if !included[s.node.index()] {
                continue;
            }
            let corr = node.correlation(s);
            let bold = node.predicted().is_some_and(|p| p.to_block == s.to_block);
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{:.0}%\"{}];",
                idx.index(),
                s.node.index(),
                corr * 100.0,
                if bold { ", penwidth=2" } else { "" },
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BcgConfig;
    use jvm_bytecode::{BlockId, FuncId};

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn warm_graph() -> BranchCorrelationGraph {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig::default().with_start_delay(1));
        for i in 0..300 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(if i % 10 == 9 { 3 } else { 2 }));
        }
        bcg
    }

    #[test]
    fn dot_output_is_well_formed() {
        let bcg = warm_graph();
        let out = to_dot(&bcg, 1);
        assert!(out.starts_with("digraph bcg {"));
        assert!(out.trim_end().ends_with('}'));
        // Every node and at least one edge present.
        assert_eq!(
            out.matches("fillcolor").count(),
            bcg.len(),
            "one styled node per BCG node"
        );
        assert!(out.contains("->"));
        assert!(out.contains('%'));
    }

    #[test]
    fn min_executions_filters_rare_nodes() {
        let bcg = warm_graph();
        let all = to_dot(&bcg, 1);
        let hot_only = to_dot(&bcg, 100);
        assert!(hot_only.matches("fillcolor").count() < all.matches("fillcolor").count());
    }

    #[test]
    fn predicted_edges_are_emphasised() {
        let bcg = warm_graph();
        let out = to_dot(&bcg, 1);
        assert!(out.contains("penwidth=2"));
    }

    #[test]
    fn state_colors_are_distinct() {
        let colors: std::collections::HashSet<_> = [
            NodeState::NewlyCreated,
            NodeState::Weak,
            NodeState::Strong,
            NodeState::Unique,
        ]
        .into_iter()
        .map(state_color)
        .collect();
        assert_eq!(colors.len(), 4);
    }
}

//! Reference (pre-overhaul) profiler implementation.
//!
//! This is the straightforward `std::collections::HashMap` +
//! `Vec<Successor>` BCG exactly as it existed before the hot-path
//! overhaul: SipHash index, heap-allocated successor lists, allocating
//! signal drain. It is kept for two jobs:
//!
//! * **differential testing** — the workspace tests drive this and
//!   [`BranchCorrelationGraph`](crate::BranchCorrelationGraph) with the
//!   same block streams and assert bit-identical signals, node states,
//!   and successor structure;
//! * **benchmark baseline** — `hot_path` measures ns/dispatch of both
//!   in one binary, so the before/after numbers in
//!   `BENCH_hot_path.json` come from the same build flags.
//!
//! The update logic here must NOT be "improved": it is the oracle. Any
//! behavioural change belongs in `graph.rs`, and the differential tests
//! will fail until this file is updated to match deliberately.

use std::collections::HashMap;

use jvm_bytecode::BlockId;

use crate::config::BcgConfig;
use crate::graph::NodeIdx;
use crate::signal::{Signal, SignalKind};
use crate::state::NodeState;
use crate::stats::ProfilerStats;
use crate::Branch;

/// A successor correlation of a [`RefNode`] (same layout as
/// [`crate::Successor`] but owned here so the reference stays frozen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefSuccessor {
    pub to_block: BlockId,
    pub count: u16,
    pub node: NodeIdx,
}

/// A node of the reference BCG: identical fields to the pre-overhaul
/// `Node`, with a plain `Vec` successor list.
#[derive(Debug, Clone)]
pub struct RefNode {
    branch: Branch,
    state: NodeState,
    delay_remaining: u32,
    since_decay: u32,
    executions: u64,
    total_weight: u32,
    successors: Vec<RefSuccessor>,
    preds: Vec<NodeIdx>,
    cached: Option<u32>,
    generation: u64,
}

impl RefNode {
    fn new(branch: Branch, start_delay: u32) -> Self {
        RefNode {
            branch,
            state: NodeState::NewlyCreated,
            delay_remaining: start_delay,
            since_decay: 0,
            executions: 0,
            total_weight: 0,
            successors: Vec::new(),
            preds: Vec::new(),
            cached: None,
            generation: 0,
        }
    }

    pub fn branch(&self) -> Branch {
        self.branch
    }

    pub fn state(&self) -> NodeState {
        self.state
    }

    pub fn executions(&self) -> u64 {
        self.executions
    }

    pub fn successors(&self) -> &[RefSuccessor] {
        &self.successors
    }

    pub fn predecessors(&self) -> &[NodeIdx] {
        &self.preds
    }

    pub fn total_weight(&self) -> u32 {
        self.total_weight
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn max_successor(&self) -> Option<&RefSuccessor> {
        self.successors.iter().max_by_key(|s| s.count)
    }

    pub fn predicted(&self) -> Option<&RefSuccessor> {
        self.cached.map(|i| &self.successors[i as usize])
    }

    pub fn correlation(&self, s: &RefSuccessor) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            f64::from(s.count) / f64::from(self.total_weight)
        }
    }

    fn compute_state(&self, threshold: f64) -> NodeState {
        if self.delay_remaining > 0 {
            return NodeState::NewlyCreated;
        }
        if self.total_weight == 0 || self.successors.is_empty() {
            return NodeState::NewlyCreated;
        }
        if self.successors.len() == 1 {
            return NodeState::Unique;
        }
        let max = self.max_successor().expect("nonempty");
        if self.correlation(max) >= threshold {
            NodeState::Strong
        } else {
            NodeState::Weak
        }
    }
}

/// The pre-overhaul profiler. See the module docs; the public surface
/// mirrors [`crate::BranchCorrelationGraph`] closely enough that the
/// differential tests and the bench can drive both generically.
#[derive(Debug)]
pub struct ReferenceBcg {
    config: BcgConfig,
    nodes: Vec<RefNode>,
    index: HashMap<Branch, NodeIdx>,
    last_block: Option<BlockId>,
    ctx_node: Option<NodeIdx>,
    signals: Vec<Signal>,
    stats: ProfilerStats,
}

impl ReferenceBcg {
    pub fn new(config: BcgConfig) -> Self {
        ReferenceBcg {
            config,
            nodes: Vec::new(),
            index: HashMap::new(),
            last_block: None,
            ctx_node: None,
            signals: Vec::new(),
            stats: ProfilerStats::default(),
        }
    }

    pub fn config(&self) -> &BcgConfig {
        &self.config
    }

    pub fn stats(&self) -> ProfilerStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    pub fn node(&self, idx: NodeIdx) -> &RefNode {
        &self.nodes[idx.index()]
    }

    pub fn node_index(&self, branch: Branch) -> Option<NodeIdx> {
        self.index.get(&branch).copied()
    }

    pub fn iter(&self) -> impl Iterator<Item = (NodeIdx, &RefNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeIdx(i as u32), n))
    }

    pub fn begin_stream(&mut self) {
        self.last_block = None;
        self.ctx_node = None;
    }

    pub fn set_context(&mut self, block: BlockId) {
        self.last_block = Some(block);
        self.ctx_node = None;
    }

    /// The pre-overhaul drain: allocates a fresh `Vec` every time.
    pub fn take_signals(&mut self) -> Vec<Signal> {
        std::mem::take(&mut self.signals)
    }

    pub fn has_signals(&self) -> bool {
        !self.signals.is_empty()
    }

    pub fn mark_generation(&mut self, idx: NodeIdx, generation: u64) {
        self.nodes[idx.index()].generation = generation;
    }

    /// One dispatched block, pre-overhaul logic (HashMap index on the
    /// context-miss path, `Vec` successor scans otherwise).
    pub fn observe(&mut self, z: BlockId) {
        self.stats.dispatches += 1;
        let y = match self.last_block.replace(z) {
            None => return,
            Some(y) => y,
        };
        let next = match self.ctx_node {
            Some(nxy) => self.record(nxy, (y, z)),
            None => self.get_or_create((y, z)),
        };
        self.ctx_node = Some(next);
    }

    fn get_or_create(&mut self, branch: Branch) -> NodeIdx {
        if let Some(&idx) = self.index.get(&branch) {
            return idx;
        }
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes
            .push(RefNode::new(branch, self.config.start_delay));
        self.index.insert(branch, idx);
        self.stats.nodes_created += 1;
        idx
    }

    fn record(&mut self, nxy: NodeIdx, yz: Branch) -> NodeIdx {
        let cfg = self.config;
        let z = yz.1;

        let mut next: Option<NodeIdx> = None;
        {
            let node = &mut self.nodes[nxy.index()];
            node.executions += 1;
            if cfg.inline_cache {
                if let Some(ci) = node.cached {
                    let s = &mut node.successors[ci as usize];
                    if s.to_block == z {
                        if s.count < cfg.max_counter {
                            s.count += 1;
                            node.total_weight += 1;
                        }
                        self.stats.cache_hits += 1;
                        next = Some(s.node);
                    }
                }
            }
            if next.is_none() {
                self.stats.cache_misses += 1;
                if let Some(i) = node.successors.iter().position(|s| s.to_block == z) {
                    let s = &mut node.successors[i];
                    if s.count < cfg.max_counter {
                        s.count += 1;
                        node.total_weight += 1;
                    }
                    if node.cached.is_none() {
                        node.cached = Some(i as u32);
                    }
                    next = Some(s.node);
                }
            }
        }

        let next = match next {
            Some(n) => n,
            None => {
                let nyz = self.get_or_create(yz);
                let node = &mut self.nodes[nxy.index()];
                node.successors.push(RefSuccessor {
                    to_block: z,
                    count: 1,
                    node: nyz,
                });
                node.total_weight += 1;
                if node.cached.is_none() {
                    node.cached = Some((node.successors.len() - 1) as u32);
                }
                self.stats.edges_created += 1;
                let target = &mut self.nodes[nyz.index()];
                if !target.preds.contains(&nxy) {
                    target.preds.push(nxy);
                }
                nyz
            }
        };

        let mut decay_due = false;
        {
            let node = &mut self.nodes[nxy.index()];
            if node.delay_remaining > 0 {
                node.delay_remaining -= 1;
                if node.delay_remaining == 0 {
                    let new = node.compute_state(cfg.threshold);
                    if new != node.state {
                        let old = node.state;
                        node.state = new;
                        self.signals.push(Signal {
                            node: nxy,
                            branch: node.branch,
                            kind: SignalKind::StateChange { old, new },
                        });
                        self.stats.state_signals += 1;
                    }
                }
            }
            node.since_decay += 1;
            if node.since_decay >= cfg.decay_interval {
                decay_due = true;
            }
        }
        if decay_due {
            self.decay(nxy);
        }
        next
    }

    fn decay(&mut self, idx: NodeIdx) {
        let cfg = self.config;
        let node = &mut self.nodes[idx.index()];
        let old_state = node.state;
        let old_pred = node.predicted().map(|s| s.to_block);

        for s in &mut node.successors {
            s.count >>= cfg.decay_shift;
        }
        node.successors.retain(|s| s.count > 0);
        node.total_weight = node.successors.iter().map(|s| u32::from(s.count)).sum();

        node.cached = node
            .successors
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.count)
            .map(|(i, _)| i as u32);

        let new_state = if node.delay_remaining > 0 {
            old_state
        } else {
            node.compute_state(cfg.threshold)
        };
        node.state = new_state;
        node.since_decay = 0;
        self.stats.decays += 1;

        let new_pred = node.predicted().map(|s| s.to_block);
        let branch = node.branch;
        if new_state != old_state {
            self.signals.push(Signal {
                node: idx,
                branch,
                kind: SignalKind::StateChange {
                    old: old_state,
                    new: new_state,
                },
            });
            self.stats.state_signals += 1;
        } else if new_state.is_hot() && new_pred != old_pred {
            self.signals.push(Signal {
                node: idx,
                branch,
                kind: SignalKind::PredictionChange {
                    old: old_pred,
                    new: new_pred,
                },
            });
            self.stats.prediction_signals += 1;
        }
    }
}

//! BCG nodes and edges.

use jvm_bytecode::BlockId;

use crate::graph::NodeIdx;
use crate::state::NodeState;
use crate::Branch;

/// An edge `E_XYZ`: from node `N_XY`, the branch `(Y, Z)` was observed
/// `count` times (subject to decay).
///
/// The edge stores the index of its target node `N_YZ`, reproducing the
/// paper's pointer-chasing fast path: "each branch correlation contains
/// the address of its target branch context" (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successor {
    /// The block `Z` this correlation predicts.
    pub to_block: BlockId,
    /// Decayed 16-bit occurrence counter.
    pub count: u16,
    /// Index of the target node `N_YZ`.
    pub node: NodeIdx,
}

/// A node `N_XY` of the branch correlation graph.
///
/// Holds the decayed successor-correlation counters, the state tag
/// summarised to the trace cache, the start-state delay countdown, the
/// predicted-successor inline cache, and the generation stamp the trace
/// cache uses to suppress signal cascades (§4.2).
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) branch: Branch,
    pub(crate) state: NodeState,
    /// Executions remaining before the node leaves `NewlyCreated`.
    pub(crate) delay_remaining: u32,
    /// Executions since the last decay.
    pub(crate) since_decay: u32,
    /// Total executions (for diagnostics; saturating).
    pub(crate) executions: u64,
    /// Sum of successor counts (kept in sync with `successors`).
    pub(crate) total_weight: u32,
    pub(crate) successors: Vec<Successor>,
    /// Nodes that have (or once had) an edge into this node; used for
    /// entry-point backtracking. Entries may be stale after decay pruning
    /// and must be re-validated by the consumer.
    pub(crate) preds: Vec<NodeIdx>,
    /// Index into `successors` of the cached prediction.
    pub(crate) cached: Option<u32>,
    /// Trace-cache generation stamp (see
    /// [`crate::BranchCorrelationGraph::mark_generation`]).
    pub(crate) generation: u64,
}

impl Node {
    pub(crate) fn new(branch: Branch, start_delay: u32) -> Self {
        Node {
            branch,
            state: NodeState::NewlyCreated,
            delay_remaining: start_delay,
            since_decay: 0,
            executions: 0,
            total_weight: 0,
            successors: Vec::new(),
            preds: Vec::new(),
            cached: None,
            generation: 0,
        }
    }

    /// The branch `(X, Y)` this node represents.
    pub fn branch(&self) -> Branch {
        self.branch
    }

    /// Current state tag.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Lifetime execution count of this branch.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// The successor correlations, in discovery order.
    pub fn successors(&self) -> &[Successor] {
        &self.successors
    }

    /// Possibly-stale predecessor node indices (validate before use).
    pub fn predecessors(&self) -> &[NodeIdx] {
        &self.preds
    }

    /// Sum of all successor counts.
    pub fn total_weight(&self) -> u32 {
        self.total_weight
    }

    /// The trace-cache generation stamp.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The successor with the maximal counter, if any.
    pub fn max_successor(&self) -> Option<&Successor> {
        self.successors.iter().max_by_key(|s| s.count)
    }

    /// The cached (predicted) successor, if any.
    pub fn predicted(&self) -> Option<&Successor> {
        self.cached.map(|i| &self.successors[i as usize])
    }

    /// Correlation ratio of a successor: `count / total_weight`, in
    /// `[0, 1]`; 0.0 when the node has no weight.
    pub fn correlation(&self, s: &Successor) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            f64::from(s.count) / f64::from(self.total_weight)
        }
    }

    /// Correlation ratio toward a specific block, 0.0 if never observed.
    pub fn correlation_to(&self, block: BlockId) -> f64 {
        self.successors
            .iter()
            .find(|s| s.to_block == block)
            .map(|s| self.correlation(s))
            .unwrap_or(0.0)
    }

    /// Recomputes the state tag from the current counters.
    ///
    /// * still inside the delay → `NewlyCreated`;
    /// * no successors with weight → `NewlyCreated` (nothing to predict);
    /// * exactly one successor ever observed → `Unique`;
    /// * max correlation ≥ threshold → `Strong`;
    /// * otherwise → `Weak`.
    pub(crate) fn compute_state(&self, threshold: f64) -> NodeState {
        if self.delay_remaining > 0 {
            return NodeState::NewlyCreated;
        }
        if self.total_weight == 0 || self.successors.is_empty() {
            return NodeState::NewlyCreated;
        }
        if self.successors.len() == 1 {
            return NodeState::Unique;
        }
        let max = self.max_successor().expect("nonempty");
        if self.correlation(max) >= threshold {
            NodeState::Strong
        } else {
            NodeState::Weak
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn node_with_counts(counts: &[(u32, u16)], delay: u32) -> Node {
        let mut n = Node::new((blk(0), blk(1)), delay);
        for (i, &(b, c)) in counts.iter().enumerate() {
            n.successors.push(Successor {
                to_block: blk(b),
                count: c,
                node: NodeIdx(i as u32 + 1),
            });
            n.total_weight += u32::from(c);
        }
        n.executions = u64::from(n.total_weight);
        n
    }

    #[test]
    fn correlation_ratios() {
        let n = node_with_counts(&[(2, 90), (3, 10)], 0);
        assert_eq!(n.total_weight(), 100);
        assert_eq!(n.correlation_to(blk(2)), 0.9);
        assert_eq!(n.correlation_to(blk(3)), 0.1);
        assert_eq!(n.correlation_to(blk(9)), 0.0);
        assert_eq!(n.max_successor().unwrap().to_block, blk(2));
    }

    #[test]
    fn state_newly_created_while_delayed() {
        let mut n = node_with_counts(&[(2, 50)], 10);
        n.delay_remaining = 10;
        assert_eq!(n.compute_state(0.97), NodeState::NewlyCreated);
    }

    #[test]
    fn state_unique_with_single_successor() {
        let n = node_with_counts(&[(2, 5)], 0);
        assert_eq!(n.compute_state(0.97), NodeState::Unique);
    }

    #[test]
    fn state_strong_vs_weak_at_threshold() {
        let strong = node_with_counts(&[(2, 97), (3, 3)], 0);
        assert_eq!(strong.compute_state(0.97), NodeState::Strong);
        let weak = node_with_counts(&[(2, 96), (3, 4)], 0);
        assert_eq!(weak.compute_state(0.97), NodeState::Weak);
    }

    #[test]
    fn state_degenerates_to_newly_created_without_weight() {
        let n = node_with_counts(&[], 0);
        assert_eq!(n.compute_state(0.97), NodeState::NewlyCreated);
    }

    #[test]
    fn threshold_one_requires_perfect_correlation() {
        // Two successors where one has decayed to zero weight: total is
        // all on one edge, so correlation is 1.0 and Strong applies even
        // at a 100% threshold.
        let n = node_with_counts(&[(2, 8), (3, 0)], 0);
        assert_eq!(n.compute_state(1.0), NodeState::Strong);
        let n2 = node_with_counts(&[(2, 7), (3, 1)], 0);
        assert_eq!(n2.compute_state(1.0), NodeState::Weak);
    }
}

//! BCG nodes and edges.

use jvm_bytecode::{BlockId, FuncId};

use crate::graph::NodeIdx;
use crate::state::NodeState;
use crate::Branch;

/// An edge `E_XYZ`: from node `N_XY`, the branch `(Y, Z)` was observed
/// `count` times (subject to decay).
///
/// The edge stores the index of its target node `N_YZ`, reproducing the
/// paper's pointer-chasing fast path: "each branch correlation contains
/// the address of its target branch context" (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Successor {
    /// The block `Z` this correlation predicts.
    pub to_block: BlockId,
    /// Decayed 16-bit occurrence counter.
    pub count: u16,
    /// Index of the target node `N_YZ`.
    pub node: NodeIdx,
}

impl Successor {
    /// Filler for unused inline slots; never observable through
    /// [`SuccList::as_slice`].
    fn placeholder() -> Self {
        Successor {
            to_block: BlockId::new(FuncId(u32::MAX), u32::MAX),
            count: 0,
            node: NodeIdx(u32::MAX),
        }
    }
}

/// Successor slots stored inline in the node before spilling to the heap.
/// Across the six workloads the overwhelming majority of nodes have ≤ 2
/// realized successors, so four inline slots make the per-dispatch
/// counter bump a pure in-`Node` access with no pointer chase.
pub(crate) const INLINE_SUCCESSORS: usize = 4;

/// A successor list with small-size inline storage. The common case
/// (≤ [`INLINE_SUCCESSORS`] edges) lives directly in the `Node`; larger
/// fans spill to a `Vec` once and stay there.
#[derive(Debug, Clone)]
pub(crate) enum SuccList {
    Inline {
        len: u8,
        slots: [Successor; INLINE_SUCCESSORS],
    },
    Spilled(Vec<Successor>),
}

impl SuccList {
    pub(crate) fn new() -> Self {
        SuccList::Inline {
            len: 0,
            slots: [Successor::placeholder(); INLINE_SUCCESSORS],
        }
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[Successor] {
        match self {
            SuccList::Inline { len, slots } => &slots[..usize::from(*len)],
            SuccList::Spilled(v) => v,
        }
    }

    #[inline]
    pub(crate) fn as_mut_slice(&mut self) -> &mut [Successor] {
        match self {
            SuccList::Inline { len, slots } => &mut slots[..usize::from(*len)],
            SuccList::Spilled(v) => v,
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        match self {
            SuccList::Inline { len, .. } => usize::from(*len),
            SuccList::Spilled(v) => v.len(),
        }
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&mut self, s: Successor) {
        match self {
            SuccList::Inline { len, slots } => {
                let n = usize::from(*len);
                if n < INLINE_SUCCESSORS {
                    slots[n] = s;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_SUCCESSORS * 2);
                    v.extend_from_slice(slots);
                    v.push(s);
                    *self = SuccList::Spilled(v);
                }
            }
            SuccList::Spilled(v) => v.push(s),
        }
    }

    /// Keeps only elements satisfying `keep`, preserving order. A
    /// spilled list never moves back inline (re-spilling churn is worse
    /// than the few bytes).
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&Successor) -> bool) {
        match self {
            SuccList::Inline { len, slots } => {
                let mut w = 0usize;
                for r in 0..usize::from(*len) {
                    if keep(&slots[r]) {
                        slots[w] = slots[r];
                        w += 1;
                    }
                }
                for slot in slots[w..usize::from(*len)].iter_mut() {
                    *slot = Successor::placeholder();
                }
                *len = w as u8;
            }
            SuccList::Spilled(v) => v.retain(keep),
        }
    }

    /// Heap bytes held by this list (zero while inline).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            SuccList::Inline { .. } => 0,
            SuccList::Spilled(v) => v.capacity() * std::mem::size_of::<Successor>(),
        }
    }
}

/// Sentinel for [`Node::trace_link`]: "validated, and no trace starts
/// here". Stored as a raw `u32` because this crate cannot name the trace
/// cache's `TraceId` (the dependency points the other way); the trace
/// cache owns the encoding.
pub const NO_TRACE_LINK: u32 = u32::MAX;

/// Initial `link_version` stamp: never matches a real cache version, so
/// a fresh node always revalidates on first lookup.
pub(crate) const LINK_NEVER: u64 = u64::MAX;

/// A node `N_XY` of the branch correlation graph.
///
/// Holds the decayed successor-correlation counters, the state tag
/// summarised to the trace cache, the start-state delay countdown, the
/// predicted-successor inline cache, the generation stamp the trace
/// cache uses to suppress signal cascades (§4.2), and the inline
/// trace-link slot the dispatch monitor uses to skip per-block cache
/// lookups.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) branch: Branch,
    pub(crate) state: NodeState,
    /// Executions remaining before the node leaves `NewlyCreated`.
    pub(crate) delay_remaining: u32,
    /// Executions since the last decay.
    pub(crate) since_decay: u32,
    /// Total executions (for diagnostics; saturating).
    pub(crate) executions: u64,
    /// Sum of successor counts (kept in sync with `successors`).
    pub(crate) total_weight: u32,
    pub(crate) successors: SuccList,
    /// Nodes that have (or once had) an edge into this node; used for
    /// entry-point backtracking. Entries may be stale after decay pruning
    /// and must be re-validated by the consumer.
    pub(crate) preds: Vec<NodeIdx>,
    /// Index into `successors` of the cached prediction.
    pub(crate) cached: Option<u32>,
    /// Trace-cache generation stamp (see
    /// [`crate::BranchCorrelationGraph::mark_generation`]).
    pub(crate) generation: u64,
    /// Cache version at which `link_raw` was last validated
    /// ([`LINK_NEVER`] until the first validation).
    pub(crate) link_version: u64,
    /// Raw trace link valid at `link_version`: a raw `TraceId` or
    /// [`NO_TRACE_LINK`]. Negative results are cached too — that is the
    /// entire point, since almost every dispatch misses.
    pub(crate) link_raw: u32,
    /// Predicted target block while the budgeted fast path is armed
    /// (`fp_budget > 0`); meaningless otherwise.
    pub(crate) fp_block: BlockId,
    /// Context node a fast-path hit moves to (the prediction's target).
    pub(crate) fp_next: NodeIdx,
    /// Successor slot of the prediction (copy of `cached` while armed).
    pub(crate) fp_slot: u32,
    /// Fast-path hits remaining before a forced slow visit. Armed by the
    /// slow path to `min` of the distances to the next *event* on this
    /// node — decay due, delay expiry, counter saturation — so the fast
    /// path needs no per-event test: while the budget lasts, no event
    /// can possibly fire.
    pub(crate) fp_budget: u32,
    /// `fp_budget` at arm time; `fp_armed - fp_budget` is the number of
    /// fast hits whose `since_decay` / `delay_remaining` bookkeeping is
    /// still pending (applied lazily at the next slow visit).
    pub(crate) fp_armed: u32,
}

impl Node {
    pub(crate) fn new(branch: Branch, start_delay: u32) -> Self {
        Node {
            branch,
            state: NodeState::NewlyCreated,
            delay_remaining: start_delay,
            since_decay: 0,
            executions: 0,
            total_weight: 0,
            successors: SuccList::new(),
            preds: Vec::new(),
            cached: None,
            generation: 0,
            link_version: LINK_NEVER,
            link_raw: NO_TRACE_LINK,
            fp_block: BlockId::new(FuncId(u32::MAX), u32::MAX),
            fp_next: NodeIdx(u32::MAX),
            fp_slot: 0,
            fp_budget: 0,
            fp_armed: 0,
        }
    }

    /// The branch `(X, Y)` this node represents.
    pub fn branch(&self) -> Branch {
        self.branch
    }

    /// Current state tag.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Lifetime execution count of this branch.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// The successor correlations, in discovery order.
    pub fn successors(&self) -> &[Successor] {
        self.successors.as_slice()
    }

    /// Possibly-stale predecessor node indices (validate before use).
    pub fn predecessors(&self) -> &[NodeIdx] {
        &self.preds
    }

    /// Sum of all successor counts.
    pub fn total_weight(&self) -> u32 {
        self.total_weight
    }

    /// The trace-cache generation stamp.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The inline trace-link slot: `(version stamp, raw link)`. The raw
    /// link is only meaningful to the trace cache that stamped it, and
    /// only while the stamp equals that cache's current version.
    #[inline]
    pub fn trace_link(&self) -> (u64, u32) {
        (self.link_version, self.link_raw)
    }

    /// The successor with the maximal counter, if any.
    pub fn max_successor(&self) -> Option<&Successor> {
        self.successors.as_slice().iter().max_by_key(|s| s.count)
    }

    /// The cached (predicted) successor, if any.
    pub fn predicted(&self) -> Option<&Successor> {
        self.cached.map(|i| &self.successors.as_slice()[i as usize])
    }

    /// Correlation ratio of a successor: `count / total_weight`, in
    /// `[0, 1]`; 0.0 when the node has no weight.
    pub fn correlation(&self, s: &Successor) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            f64::from(s.count) / f64::from(self.total_weight)
        }
    }

    /// Correlation ratio toward a specific block, 0.0 if never observed.
    pub fn correlation_to(&self, block: BlockId) -> f64 {
        self.successors
            .as_slice()
            .iter()
            .find(|s| s.to_block == block)
            .map(|s| self.correlation(s))
            .unwrap_or(0.0)
    }

    /// Test/construction helper: appends a successor and accounts its
    /// weight (keeps `total_weight` in sync the way `record` does).
    #[cfg(test)]
    pub(crate) fn push_successor_for_test(&mut self, s: Successor) {
        self.successors.push(s);
        self.total_weight += u32::from(s.count);
    }

    /// Recomputes the state tag from the current counters.
    ///
    /// * still inside the delay → `NewlyCreated`;
    /// * no successors with weight → `NewlyCreated` (nothing to predict);
    /// * exactly one successor ever observed → `Unique`;
    /// * max correlation ≥ threshold → `Strong`;
    /// * otherwise → `Weak`.
    pub(crate) fn compute_state(&self, threshold: f64) -> NodeState {
        if self.delay_remaining > 0 {
            return NodeState::NewlyCreated;
        }
        if self.total_weight == 0 || self.successors.is_empty() {
            return NodeState::NewlyCreated;
        }
        if self.successors.len() == 1 {
            return NodeState::Unique;
        }
        let max = self.max_successor().expect("nonempty");
        if self.correlation(max) >= threshold {
            NodeState::Strong
        } else {
            NodeState::Weak
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn node_with_counts(counts: &[(u32, u16)], delay: u32) -> Node {
        let mut n = Node::new((blk(0), blk(1)), delay);
        for (i, &(b, c)) in counts.iter().enumerate() {
            n.push_successor_for_test(Successor {
                to_block: blk(b),
                count: c,
                node: NodeIdx(i as u32 + 1),
            });
        }
        n.executions = u64::from(n.total_weight);
        n
    }

    #[test]
    fn correlation_ratios() {
        let n = node_with_counts(&[(2, 90), (3, 10)], 0);
        assert_eq!(n.total_weight(), 100);
        assert_eq!(n.correlation_to(blk(2)), 0.9);
        assert_eq!(n.correlation_to(blk(3)), 0.1);
        assert_eq!(n.correlation_to(blk(9)), 0.0);
        assert_eq!(n.max_successor().unwrap().to_block, blk(2));
    }

    #[test]
    fn state_newly_created_while_delayed() {
        let mut n = node_with_counts(&[(2, 50)], 10);
        n.delay_remaining = 10;
        assert_eq!(n.compute_state(0.97), NodeState::NewlyCreated);
    }

    #[test]
    fn state_unique_with_single_successor() {
        let n = node_with_counts(&[(2, 5)], 0);
        assert_eq!(n.compute_state(0.97), NodeState::Unique);
    }

    #[test]
    fn state_strong_vs_weak_at_threshold() {
        let strong = node_with_counts(&[(2, 97), (3, 3)], 0);
        assert_eq!(strong.compute_state(0.97), NodeState::Strong);
        let weak = node_with_counts(&[(2, 96), (3, 4)], 0);
        assert_eq!(weak.compute_state(0.97), NodeState::Weak);
    }

    #[test]
    fn state_degenerates_to_newly_created_without_weight() {
        let n = node_with_counts(&[], 0);
        assert_eq!(n.compute_state(0.97), NodeState::NewlyCreated);
    }

    #[test]
    fn threshold_one_requires_perfect_correlation() {
        // Two successors where one has decayed to zero weight: total is
        // all on one edge, so correlation is 1.0 and Strong applies even
        // at a 100% threshold.
        let n = node_with_counts(&[(2, 8), (3, 0)], 0);
        assert_eq!(n.compute_state(1.0), NodeState::Strong);
        let n2 = node_with_counts(&[(2, 7), (3, 1)], 0);
        assert_eq!(n2.compute_state(1.0), NodeState::Weak);
    }

    #[test]
    fn succ_list_spills_past_four_and_preserves_order() {
        let mut l = SuccList::new();
        for i in 0..7u32 {
            l.push(Successor {
                to_block: blk(i),
                count: i as u16,
                node: NodeIdx(i),
            });
            assert_eq!(l.len(), i as usize + 1);
        }
        assert!(matches!(l, SuccList::Spilled(_)));
        let blocks: Vec<u32> = l.as_slice().iter().map(|s| s.to_block.block).collect();
        assert_eq!(blocks, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn succ_list_retain_compacts_inline_storage() {
        let mut l = SuccList::new();
        for i in 0..4u32 {
            l.push(Successor {
                to_block: blk(i),
                count: i as u16, // counts 0,1,2,3
                node: NodeIdx(i),
            });
        }
        assert!(matches!(l, SuccList::Inline { .. }));
        l.retain(|s| s.count > 0);
        let blocks: Vec<u32> = l.as_slice().iter().map(|s| s.to_block.block).collect();
        assert_eq!(blocks, vec![1, 2, 3]);
        // Still inline, still pushable.
        l.push(Successor {
            to_block: blk(9),
            count: 9,
            node: NodeIdx(9),
        });
        assert!(matches!(l, SuccList::Inline { len: 4, .. }));
    }

    #[test]
    fn fresh_node_trace_link_is_unvalidated() {
        let n = Node::new((blk(0), blk(1)), 4);
        assert_eq!(n.trace_link(), (LINK_NEVER, NO_TRACE_LINK));
    }
}

//! Profiler configuration.

/// Tunable parameters of the branch correlation graph.
///
/// The two *algorithm* parameters from the paper's evaluation (§5.2) are
/// [`start_delay`](BcgConfig::start_delay) and
/// [`threshold`](BcgConfig::threshold); the rest are the fixed
/// implementation constants the paper describes, exposed so ablations can
/// vary them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BcgConfig {
    /// *Start state delay*: how many times a branch must execute before it
    /// leaves the `NewlyCreated` state and may be included in a trace.
    /// The paper evaluates 1, 64, 4096 (Table V) and settles on 64.
    pub start_delay: u32,
    /// Minimum expected trace completion rate in `(0, 1]` — also the
    /// strong-correlation bound: a node whose maximal successor
    /// correlation is at or above the threshold is `Strong`. The paper
    /// evaluates 1.00, 0.99, 0.98, 0.97, 0.95 and settles on 0.97.
    pub threshold: f64,
    /// Executions of a node between decays of its edge counters
    /// (paper: 256).
    pub decay_interval: u32,
    /// Bits to shift edge counters right at each decay (paper: 1).
    pub decay_shift: u32,
    /// Saturation bound for the 16-bit edge counters.
    pub max_counter: u16,
    /// Whether the per-node predicted-successor inline cache is used for
    /// the fast path. Disabling it changes only the profiler's own cost
    /// model (hit/miss statistics), never the graph it builds — used by
    /// the §4.1.2 ablation bench.
    pub inline_cache: bool,
}

impl BcgConfig {
    /// The configuration the paper recommends: delay 64, threshold 97%,
    /// decay every 256 executions by one bit.
    pub fn paper_default() -> Self {
        BcgConfig {
            start_delay: 64,
            threshold: 0.97,
            decay_interval: 256,
            decay_shift: 1,
            max_counter: u16::MAX,
            inline_cache: true,
        }
    }

    /// Returns this configuration with a different completion threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < threshold <= 1.0`.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1], got {threshold}"
        );
        self.threshold = threshold;
        self
    }

    /// Returns this configuration with a different start-state delay.
    pub fn with_start_delay(mut self, start_delay: u32) -> Self {
        self.start_delay = start_delay;
        self
    }
}

impl Default for BcgConfig {
    /// Same as [`BcgConfig::paper_default`].
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = BcgConfig::default();
        assert_eq!(c.start_delay, 64);
        assert_eq!(c.threshold, 0.97);
        assert_eq!(c.decay_interval, 256);
        assert_eq!(c.decay_shift, 1);
        assert!(c.inline_cache);
    }

    #[test]
    fn builder_style_overrides() {
        let c = BcgConfig::default()
            .with_threshold(0.99)
            .with_start_delay(4096);
        assert_eq!(c.threshold, 0.99);
        assert_eq!(c.start_delay, 4096);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn zero_threshold_rejected() {
        let _ = BcgConfig::default().with_threshold(0.0);
    }
}

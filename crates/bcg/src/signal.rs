//! Profiler → trace-cache signals.

use jvm_bytecode::BlockId;

use crate::graph::NodeIdx;
use crate::state::NodeState;
use crate::Branch;

/// What changed about a node.
///
/// The paper (§4.1.1): "If either the maximally correlated branch or its
/// state changes the profiler signals the trace cache to update itself."
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalKind {
    /// The node's state tag changed (including leaving `NewlyCreated`,
    /// which is the "became hot" event).
    StateChange {
        /// State before the change.
        old: NodeState,
        /// State after the change.
        new: NodeState,
    },
    /// The maximally correlated successor changed while the state stayed
    /// the same.
    PredictionChange {
        /// Previously predicted next block, if any.
        old: Option<BlockId>,
        /// Newly predicted next block, if any.
        new: Option<BlockId>,
    },
}

/// One profiler signal: the node it concerns and what changed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signal {
    /// Index of the affected node.
    pub node: NodeIdx,
    /// The affected branch `(X, Y)`.
    pub branch: Branch,
    /// What changed.
    pub kind: SignalKind,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;

    #[test]
    fn signals_are_inspectable() {
        let a = BlockId::new(FuncId(0), 0);
        let b = BlockId::new(FuncId(0), 1);
        let s = Signal {
            node: NodeIdx(0),
            branch: (a, b),
            kind: SignalKind::StateChange {
                old: NodeState::NewlyCreated,
                new: NodeState::Unique,
            },
        };
        match s.kind {
            SignalKind::StateChange { old, new } => {
                assert_eq!(old, NodeState::NewlyCreated);
                assert_eq!(new, NodeState::Unique);
            }
            _ => panic!("wrong kind"),
        }
        assert_eq!(s.branch.0, a);
    }
}

//! # trace-bcg
//!
//! The **branch correlation graph** (BCG) profiler — the first half of the
//! paper's contribution (§3.5, §4.1).
//!
//! The BCG is "effectively a depth one per address history table": for
//! every pair of basic blocks `(X, Y)` executed in sequence there is a node
//! `N_XY` (the *branch* from `X` to `Y`), and for every sequence
//! `(X, Y, Z)` a directed edge `E_XYZ` from `N_XY` to `N_YZ` whose 16-bit
//! counter measures how often branch `(Y, Z)` followed branch `(X, Y)`.
//!
//! Three mechanisms from the paper are implemented faithfully:
//!
//! * **Start-state delay** (§3.3): a new node starts `NewlyCreated` and
//!   must execute `start_delay` times before it can enter a trace — this
//!   filters rarely executed code like Whaley's not-rare flags.
//! * **Periodic decay** (§4.1.1): every `decay_interval` (256) executions
//!   of a node, all its edge counters are shifted right one bit, weighting
//!   the statistics toward recent behaviour; the maximally-correlated
//!   successor and the node state are re-checked at each decay and a
//!   [`Signal`] is raised if either changed.
//! * **Inline-cache profiler hook** (§4.1.2): each node caches its
//!   predicted successor edge, and each edge carries the index of its
//!   target node, so the per-dispatch fast path is two comparisons and a
//!   counter bump with no hashing.
//!
//! # Example
//!
//! ```
//! use jvm_bytecode::{BlockId, FuncId};
//! use trace_bcg::{BranchCorrelationGraph, BcgConfig, NodeState};
//!
//! let mut bcg = BranchCorrelationGraph::new(BcgConfig {
//!     start_delay: 4,
//!     ..BcgConfig::default()
//! });
//! let a = BlockId::new(FuncId(0), 0);
//! let b = BlockId::new(FuncId(0), 1);
//! // Feed a tight A->B->A->B ... stream.
//! for _ in 0..64 {
//!     bcg.observe(a);
//!     bcg.observe(b);
//! }
//! let node = bcg.node_index((a, b)).unwrap();
//! assert_eq!(bcg.node(node).state(), NodeState::Unique);
//! ```

pub mod config;
pub mod dot;
pub mod graph;
pub mod image;
pub mod node;
pub mod reference;
pub mod signal;
pub mod state;
pub mod stats;
pub mod table;

pub use config::BcgConfig;
pub use graph::{BranchCorrelationGraph, NodeIdx};
pub use image::{BcgImage, ImageError, MergeStats, NodeImage, SuccessorImage};
pub use node::{Node, Successor};
pub use reference::ReferenceBcg;
pub use signal::{Signal, SignalKind};
pub use state::NodeState;
pub use stats::ProfilerStats;
pub use table::{BranchTable, PackedBranch};

/// A branch: an ordered pair of consecutively executed blocks. `(X, Y)`
/// identifies the BCG node `N_XY`.
pub type Branch = (jvm_bytecode::BlockId, jvm_bytecode::BlockId);

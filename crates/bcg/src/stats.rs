//! Profiler statistics.

/// Counters describing the profiler's own behaviour over a run.
///
/// These feed the paper's efficiency arguments (§5.4): `dispatches` is the
/// denominator of Table IV (dispatches per state-change signal), and the
/// inline-cache hit ratio substantiates the claim that "most of the
/// branches are immediately predicted by the branch context's inline
/// cache" (§4.1.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfilerStats {
    /// Block dispatches observed (profiler hook executions).
    pub dispatches: u64,
    /// Fast-path hits: the dispatched block matched the context node's
    /// cached prediction.
    pub cache_hits: u64,
    /// Slow-path entries: prediction missed (or the inline cache is
    /// disabled), requiring a successor-list search.
    pub cache_misses: u64,
    /// New successor edges constructed (the "distinct correlations
    /// discovered" of §4.1.2).
    pub edges_created: u64,
    /// Nodes (branch contexts) constructed.
    pub nodes_created: u64,
    /// Periodic decays performed.
    pub decays: u64,
    /// State-change signals emitted.
    pub state_signals: u64,
    /// Prediction-change signals emitted.
    pub prediction_signals: u64,
    /// Signals parked by `defer_signals` (construction-queue overload).
    pub signals_deferred: u64,
    /// Parked signals re-raised at a decay cycle.
    pub signals_reraised: u64,
}

impl ProfilerStats {
    /// Total signals of either kind.
    pub fn total_signals(&self) -> u64 {
        self.state_signals + self.prediction_signals
    }

    /// Fraction of dispatches predicted by the inline cache, in `[0, 1]`.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Dispatches per state-change signal (the Table IV quantity);
    /// `f64::INFINITY` when no signal was emitted.
    pub fn dispatches_per_state_signal(&self) -> f64 {
        if self.state_signals == 0 {
            f64::INFINITY
        } else {
            self.dispatches as f64 / self.state_signals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = ProfilerStats {
            dispatches: 1000,
            cache_hits: 900,
            cache_misses: 100,
            state_signals: 4,
            prediction_signals: 1,
            ..ProfilerStats::default()
        };
        assert_eq!(s.cache_hit_ratio(), 0.9);
        assert_eq!(s.dispatches_per_state_signal(), 250.0);
        assert_eq!(s.total_signals(), 5);
    }

    #[test]
    fn empty_stats_degenerate_gracefully() {
        let s = ProfilerStats::default();
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert!(s.dispatches_per_state_signal().is_infinite());
    }
}

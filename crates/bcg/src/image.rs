//! Serializable images of the branch correlation graph.
//!
//! An [`BcgImage`] is the persistence-facing view of a
//! [`BranchCorrelationGraph`]: exactly the observable profile state —
//! branches, execution counts, decayed successor counters, and the two
//! deferred-work countdowns (`since_decay`, `delay_remaining`) — and
//! nothing derived. State tags, cached predictions, predecessor lists,
//! inline-cache arming, and trace-link stamps are all recomputed on
//! import, so an image round-trips bit-identically regardless of how
//! the live graph's fast path happened to be armed at export time.
//!
//! Three operations:
//!
//! * [`export`] captures a live graph, settling the budgeted fast
//!   path's lazily-deferred bookkeeping (the `fp_armed - fp_budget`
//!   window of pending `since_decay` / `delay_remaining` updates)
//!   arithmetically, without mutating the graph;
//! * [`import`] reconstructs a graph from an image alone (used by the
//!   differential round-trip suites and AOT replay);
//! * [`merge_into`] folds an image into a *live* graph — the warm-boot
//!   path — with saturating counter addition and clamping rules that
//!   put every merged node back under the lazy-decay discipline: the
//!   node is disarmed, its decay window is clamped strictly below the
//!   interval, and the next slow visit re-arms it from the merged
//!   counters, so stale loaded counts age out under normal decay
//!   instead of pinning the prediction.

use std::fmt;

use jvm_bytecode::BlockId;

use crate::config::BcgConfig;
use crate::graph::{BranchCorrelationGraph, NodeIdx};
use crate::node::Successor;
use crate::state::NodeState;
use crate::table::PackedBranch;
use crate::Branch;

/// One successor correlation edge of a [`NodeImage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessorImage {
    /// The predicted block.
    pub to_block: BlockId,
    /// Decayed 16-bit occurrence counter.
    pub count: u16,
}

/// One node of a [`BcgImage`]: observable profile state only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeImage {
    /// The branch `(X, Y)` this node profiles.
    pub branch: Branch,
    /// The state tag as last published to the trace cache. Stored — not
    /// recomputed on import — because the live tag is edge-triggered: it
    /// only re-evaluates at decay or delay expiry, so between decays it
    /// legitimately lags the drifting counters, and signals fire on tag
    /// *changes*.
    pub state: NodeState,
    /// Lifetime execution count.
    pub executions: u64,
    /// Executions remaining before the node leaves the start state,
    /// with any fast-path-deferred decrements already applied.
    pub delay_remaining: u32,
    /// Executions since the last decay, with any fast-path-deferred
    /// increments already applied (strictly below the decay interval).
    pub since_decay: u32,
    /// Successor edges in slot order.
    pub successors: Vec<SuccessorImage>,
}

/// A serializable image of a whole graph, nodes in index order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BcgImage {
    /// Nodes in the live graph's index order.
    pub nodes: Vec<NodeImage>,
}

impl BcgImage {
    /// Total successor edges across all nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.successors.len()).sum()
    }
}

/// Why an image cannot be reconstructed into a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// Two image nodes claim the same branch.
    DuplicateBranch(Branch),
    /// A successor predicts a block whose branch node `(Y, Z)` is not in
    /// the image — a valid export is always closed under edge targets.
    MissingSuccessorTarget {
        /// The node whose edge dangles.
        node: Branch,
        /// The predicted block with no `(Y, Z)` node.
        to_block: BlockId,
    },
    /// A node's decay window is at or past the configured interval; the
    /// live graph's invariant keeps it strictly below.
    DecayWindow {
        /// The offending node's branch.
        branch: Branch,
        /// Its claimed executions-since-decay.
        since_decay: u32,
        /// The configured decay interval.
        interval: u32,
    },
    /// A node still inside its start-state delay carries a non-start
    /// state tag; the live graph holds `NewlyCreated` for the delay's
    /// whole span (§3.3).
    DelayedNonStartState {
        /// The offending node's branch.
        branch: Branch,
        /// The contradictory tag it claims.
        state: NodeState,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::DuplicateBranch(b) => write!(f, "duplicate branch {b:?} in image"),
            ImageError::MissingSuccessorTarget { node, to_block } => write!(
                f,
                "node {node:?} predicts {to_block} but the image has no ({}, {to_block}) node",
                node.1
            ),
            ImageError::DecayWindow {
                branch,
                since_decay,
                interval,
            } => write!(
                f,
                "node {branch:?} claims since_decay {since_decay} >= decay interval {interval}"
            ),
            ImageError::DelayedNonStartState { branch, state } => write!(
                f,
                "node {branch:?} is still delayed but claims state {state:?}"
            ),
        }
    }
}

impl std::error::Error for ImageError {}

/// What [`merge_into`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Image nodes folded into already-existing live nodes.
    pub nodes_merged: usize,
    /// Image nodes that created fresh live nodes.
    pub nodes_created: usize,
    /// Image edges folded into existing live edges.
    pub edges_merged: usize,
    /// Image edges that created fresh live edges.
    pub edges_created: usize,
}

/// Captures a live graph as an image.
///
/// The budgeted fast path defers `since_decay` / `delay_remaining`
/// bookkeeping while armed (`fp_armed - fp_budget` elapsed hits are
/// pending); the export applies that arithmetic into the image — the
/// arming budget guarantees neither countdown crossed its boundary, so
/// the settled values are exact — without touching the graph.
pub fn export(bcg: &BranchCorrelationGraph) -> BcgImage {
    let nodes = bcg
        .iter()
        .map(|(_, node)| {
            let elapsed = node.fp_armed - node.fp_budget;
            let delay_remaining = if node.delay_remaining > 0 {
                // Arm-time budget was capped at delay_remaining - 1, so
                // the countdown cannot have hit zero while armed.
                node.delay_remaining - elapsed
            } else {
                0
            };
            NodeImage {
                branch: node.branch,
                state: node.state,
                executions: node.executions,
                delay_remaining,
                since_decay: node.since_decay + elapsed,
                successors: node
                    .successors
                    .as_slice()
                    .iter()
                    .map(|s| SuccessorImage {
                        to_block: s.to_block,
                        count: s.count,
                    })
                    .collect(),
            }
        })
        .collect();
    BcgImage { nodes }
}

/// Reconstructs a graph from an image under `config`.
///
/// Nodes are created in image order, so indices — and therefore a
/// subsequent [`export`] — reproduce the image exactly. All derived
/// state (predecessors, total weight, cached prediction, state tag) is
/// recomputed; the inline cache starts disarmed and every trace-link
/// slot starts unvalidated, exactly like a freshly grown graph.
///
/// # Errors
///
/// Returns an [`ImageError`] on duplicate branches, dangling successor
/// targets, or decay windows at/past the configured interval. The graph
/// is built only after full validation — no partial state escapes.
pub fn import(config: BcgConfig, image: &BcgImage) -> Result<BranchCorrelationGraph, ImageError> {
    validate(&config, image)?;
    let mut bcg = BranchCorrelationGraph::new(config);
    for img in &image.nodes {
        let idx = bcg.get_or_create_node(img.branch);
        let node = bcg.node_mut(idx);
        node.state = img.state;
        node.executions = img.executions;
        node.delay_remaining = img.delay_remaining;
        node.since_decay = img.since_decay;
    }
    let mut edges = 0usize;
    for (i, img) in image.nodes.iter().enumerate() {
        let idx = NodeIdx(i as u32);
        for s in &img.successors {
            let target = bcg
                .node_index((img.branch.1, s.to_block))
                .expect("validated: successor target exists");
            bcg.node_mut(idx).successors.push(Successor {
                to_block: s.to_block,
                count: s.count,
                node: target,
            });
            let t = bcg.node_mut(target);
            if !t.preds.contains(&idx) {
                t.preds.push(idx);
            }
            edges += 1;
        }
        refresh_derived(&mut bcg, idx);
    }
    bcg.stats_mut().edges_created = edges as u64;
    Ok(bcg)
}

/// Folds an image into a live graph — the warm-boot merge.
///
/// Per node: the pending fast-path bookkeeping of the live node is
/// settled and the node disarmed; executions and matching successor
/// counters are added with saturation at the configured bound; the
/// start-state delay takes the *minimum* of the two countdowns (work
/// already done in either process counts); and the decay window takes
/// the *sum clamped to `decay_interval - 1`* — so a node whose combined
/// window would have crossed the boundary decays at its very next slow
/// visit, which is what makes stale loaded counts age out rather than
/// pin the prediction. A node with no live profile yet adopts the stored
/// state tag (so merging into an empty graph equals [`import`]); a node
/// with live counters gets its tag re-evaluated from the merged
/// counters. **No signals are raised** (warm boot restores trace links
/// from the snapshot directly, and AOT replay synthesizes its own
/// signals).
///
/// # Errors
///
/// Validates the image first (same rules as [`import`]); the live graph
/// is untouched on error.
pub fn merge_into(
    bcg: &mut BranchCorrelationGraph,
    image: &BcgImage,
) -> Result<MergeStats, ImageError> {
    let config = *bcg.config();
    validate(&config, image)?;
    let mut stats = MergeStats::default();
    // Materialize every image node first, in image order: edge wiring
    // then never creates nodes out of order, so merging into an empty
    // graph reproduces the image's index assignment exactly (and the
    // created/merged split is counted against the pre-merge graph).
    for img in &image.nodes {
        let before = bcg.len();
        bcg.get_or_create_node(img.branch);
        if bcg.len() > before {
            stats.nodes_created += 1;
        } else {
            stats.nodes_merged += 1;
        }
    }
    for img in &image.nodes {
        let idx = bcg.get_or_create_node(img.branch);
        // A node with no live profile yet (no executions, no edges —
        // freshly materialized or never exercised) adopts the snapshot
        // wholesale, stored state tag included.
        let virgin = {
            let node = bcg.node_mut(idx);
            node.executions == 0 && node.successors.is_empty()
        };
        // Settle the deferred window, then disarm: the merged node must
        // re-enter the lazy-decay discipline from a clean slow-path
        // state, so the next visit re-arms against the *merged*
        // counters (a stale armed budget could otherwise run a counter
        // past saturation or skate over a now-due decay).
        bcg.settle_and_disarm(idx);
        for s in &img.successors {
            let target = bcg.get_or_create_node((img.branch.1, s.to_block));
            let node = bcg.node_mut(idx);
            match node
                .successors
                .as_mut_slice()
                .iter_mut()
                .find(|e| e.to_block == s.to_block)
            {
                Some(edge) => {
                    let merged = u32::from(edge.count) + u32::from(s.count);
                    edge.count = merged.min(u32::from(config.max_counter)) as u16;
                    stats.edges_merged += 1;
                }
                None => {
                    node.successors.push(Successor {
                        to_block: s.to_block,
                        count: s.count,
                        node: target,
                    });
                    stats.edges_created += 1;
                }
            }
            let t = bcg.node_mut(target);
            if !t.preds.contains(&idx) {
                t.preds.push(idx);
            }
        }
        let node = bcg.node_mut(idx);
        node.executions = node.executions.saturating_add(img.executions);
        node.delay_remaining = node.delay_remaining.min(img.delay_remaining);
        node.since_decay = (node.since_decay + img.since_decay).min(config.decay_interval - 1);
        refresh_derived(bcg, idx);
        let node = bcg.node_mut(idx);
        node.state = if virgin {
            img.state
        } else {
            node.compute_state(config.threshold)
        };
    }
    Ok(stats)
}

/// Recomputes a node's derived counter state after its edges changed
/// outside the observe path: total weight and cached prediction (maximal
/// counter, last-wins tie-break like decay's re-election). The state tag
/// is *not* touched — it is edge-triggered live state the callers decide
/// on (import copies the stored tag, merge re-evaluates).
fn refresh_derived(bcg: &mut BranchCorrelationGraph, idx: NodeIdx) {
    let node = bcg.node_mut(idx);
    node.total_weight = node
        .successors
        .as_slice()
        .iter()
        .map(|s| u32::from(s.count))
        .sum();
    node.cached = node
        .successors
        .as_slice()
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.count)
        .map(|(i, _)| i as u32);
}

fn validate(config: &BcgConfig, image: &BcgImage) -> Result<(), ImageError> {
    let mut seen = std::collections::HashSet::with_capacity(image.nodes.len());
    for img in &image.nodes {
        if !seen.insert(PackedBranch::pack(img.branch).0) {
            return Err(ImageError::DuplicateBranch(img.branch));
        }
        if img.since_decay >= config.decay_interval {
            return Err(ImageError::DecayWindow {
                branch: img.branch,
                since_decay: img.since_decay,
                interval: config.decay_interval,
            });
        }
        if img.delay_remaining > 0 && img.state != NodeState::NewlyCreated {
            return Err(ImageError::DelayedNonStartState {
                branch: img.branch,
                state: img.state,
            });
        }
    }
    for img in &image.nodes {
        for s in &img.successors {
            let target = PackedBranch::pack((img.branch.1, s.to_block)).0;
            if !seen.contains(&target) {
                return Err(ImageError::MissingSuccessorTarget {
                    node: img.branch,
                    to_block: s.to_block,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalKind;
    use crate::state::NodeState;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn cfg(delay: u32, threshold: f64) -> BcgConfig {
        BcgConfig::default()
            .with_start_delay(delay)
            .with_threshold(threshold)
    }

    fn feed(bcg: &mut BranchCorrelationGraph, pattern: &[u32], reps: usize) {
        for _ in 0..reps {
            for &b in pattern {
                bcg.observe(blk(b));
            }
        }
    }

    #[test]
    fn export_import_round_trips_bit_identically() {
        let mut bcg = BranchCorrelationGraph::new(cfg(16, 0.90));
        for i in 0..700 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(if i % 10 == 9 { 3 } else { 2 }));
        }
        let image = export(&bcg);
        assert!(!image.nodes.is_empty());
        let rebuilt = import(*bcg.config(), &image).expect("valid image");
        assert_eq!(export(&rebuilt), image, "round trip must be exact");
        // Derived state agrees with the live graph node for node.
        assert_eq!(rebuilt.len(), bcg.len());
        for (idx, live) in bcg.iter() {
            let r = rebuilt.node(idx);
            assert_eq!(r.branch(), live.branch());
            assert_eq!(r.state(), live.state());
            assert_eq!(r.total_weight(), live.total_weight());
            assert_eq!(r.successors(), live.successors());
            // The cached prediction is re-elected maximal on import (the
            // live slot may be a non-maximal first-observed edge between
            // decays, which the image deliberately does not store).
            let p = r.predicted().map(|s| s.count);
            assert_eq!(p, r.max_successor().map(|s| s.count));
        }
    }

    #[test]
    fn export_settles_armed_fast_path_bookkeeping() {
        // A long predictable run leaves the hot node armed with pending
        // deferred bookkeeping; the exported window must include it.
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1], 100);
        let image = export(&bcg);
        let img01 = image
            .nodes
            .iter()
            .find(|n| n.branch == (blk(0), blk(1)))
            .expect("node exists");
        // 100 reps => 99 executions of (0,1) past creation; the raw node
        // field lags while armed, the image must not.
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let raw = bcg.node(n01);
        let pending = raw.fp_armed - raw.fp_budget;
        assert!(pending > 0, "test needs an armed node with pending hits");
        assert_eq!(img01.since_decay, raw.since_decay + pending);
        // Importing and continuing must behave like the original graph.
        let cont = import(*bcg.config(), &image).unwrap();
        assert!(cont.node(n01).since_decay < cont.config().decay_interval);
    }

    #[test]
    fn import_rejects_duplicate_and_dangling_and_overdue() {
        let config = cfg(4, 0.97);
        let node = |b: (u32, u32), succ: Vec<(u32, u16)>| NodeImage {
            branch: (blk(b.0), blk(b.1)),
            state: NodeState::NewlyCreated,
            executions: 1,
            delay_remaining: 0,
            since_decay: 0,
            successors: succ
                .into_iter()
                .map(|(t, c)| SuccessorImage {
                    to_block: blk(t),
                    count: c,
                })
                .collect(),
        };
        let dup = BcgImage {
            nodes: vec![node((0, 1), vec![]), node((0, 1), vec![])],
        };
        assert!(matches!(
            import(config, &dup),
            Err(ImageError::DuplicateBranch(_))
        ));
        let dangling = BcgImage {
            nodes: vec![node((0, 1), vec![(2, 5)])],
        };
        assert!(matches!(
            import(config, &dangling),
            Err(ImageError::MissingSuccessorTarget { .. })
        ));
        let mut overdue = BcgImage {
            nodes: vec![node((0, 1), vec![])],
        };
        overdue.nodes[0].since_decay = config.decay_interval;
        assert!(matches!(
            import(config, &overdue),
            Err(ImageError::DecayWindow { .. })
        ));
        let mut contradictory = BcgImage {
            nodes: vec![node((0, 1), vec![])],
        };
        contradictory.nodes[0].delay_remaining = 3;
        contradictory.nodes[0].state = NodeState::Unique;
        assert!(matches!(
            import(config, &contradictory),
            Err(ImageError::DelayedNonStartState { .. })
        ));
    }

    #[test]
    fn merge_into_empty_graph_equals_import() {
        let mut bcg = BranchCorrelationGraph::new(cfg(8, 0.90));
        feed(&mut bcg, &[0, 1, 2, 0, 1, 3], 100);
        let image = export(&bcg);
        let mut fresh = BranchCorrelationGraph::new(*bcg.config());
        let stats = merge_into(&mut fresh, &image).unwrap();
        assert_eq!(stats.nodes_created, image.nodes.len());
        assert_eq!(stats.nodes_merged, 0);
        assert_eq!(export(&fresh), image);
    }

    #[test]
    fn merge_saturates_counters_and_sums_executions() {
        let config = BcgConfig {
            max_counter: 100,
            ..cfg(1, 0.97)
        };
        let mut a = BranchCorrelationGraph::new(config);
        feed(&mut a, &[0, 1], 80);
        let image = export(&a);
        let mut b = BranchCorrelationGraph::new(config);
        feed(&mut b, &[0, 1], 80);
        let n01 = b.node_index((blk(0), blk(1))).unwrap();
        let before_exec = b.node(n01).executions();
        merge_into(&mut b, &image).unwrap();
        let node = b.node(n01);
        assert_eq!(node.successors()[0].count, 100, "saturates at the bound");
        assert_eq!(node.total_weight(), 100);
        assert_eq!(
            node.executions(),
            before_exec
                + image
                    .nodes
                    .iter()
                    .find(|n| n.branch == (blk(0), blk(1)))
                    .unwrap()
                    .executions
        );
    }

    /// Satellite regression: a merged profile's `since_decay` /
    /// `delay_remaining` must re-enter the lazy-decay discipline — the
    /// clamped window stays strictly below the interval (the live
    /// invariant), the node is disarmed so the next visit takes the
    /// slow path, and that visit fires the decay the combined window
    /// earned *before* re-arming against the decayed counters.
    #[test]
    fn merge_then_decay_ordering_re_enters_lazy_discipline() {
        let config = cfg(1, 0.97);
        let interval = config.decay_interval;
        // Two graphs, each more than half way to the next decay on the
        // same node, neither decayed yet.
        let mut a = BranchCorrelationGraph::new(config);
        let mut b = BranchCorrelationGraph::new(config);
        let reps = (interval as usize * 3) / 5;
        feed(&mut a, &[0, 1], reps + 1);
        feed(&mut b, &[0, 1], reps + 1);
        let n01 = b.node_index((blk(0), blk(1))).unwrap();
        assert_eq!(b.stats().decays, 0, "window must still be open");
        let decays_before = b.stats().decays;

        merge_into(&mut b, &export(&a)).unwrap();
        let node = b.node(n01);
        // Combined window (2 * reps) crossed the interval; the clamp
        // parks it one shy so the invariant holds...
        assert_eq!(node.since_decay, interval - 1);
        assert!(node.since_decay < interval, "live invariant");
        assert_eq!(node.fp_budget, 0, "merged node must be disarmed");
        assert_eq!(b.stats().decays, decays_before, "merge itself never decays");
        let weight_before = node.total_weight();

        // The very next observations of the branch decay it: merged
        // counters halve (age out) instead of pinning. Both merged nodes
        // ((0,1) and (1,0)) hit their parked boundary, one per observe.
        b.observe(blk(0));
        assert_eq!(
            b.stats().decays,
            decays_before + 1,
            "decay fires next visit"
        );
        b.observe(blk(1));
        let node = b.node(n01);
        assert_eq!(b.stats().decays, decays_before + 2, "sibling node too");
        assert!(
            node.total_weight() <= weight_before / 2 + 1,
            "merged counters must decay: {} vs {}",
            node.total_weight(),
            weight_before
        );
        assert_eq!(node.since_decay, 0, "window re-anchored by the decay");
        #[cfg(feature = "debug-invariants")]
        b.assert_node_invariants(n01);
    }

    #[test]
    fn merge_takes_minimum_delay_and_recomputes_state() {
        let config = cfg(64, 0.97);
        // Donor ran the branch past its delay; the live graph has not.
        let mut donor = BranchCorrelationGraph::new(config);
        feed(&mut donor, &[0, 1], 80);
        let mut live = BranchCorrelationGraph::new(config);
        feed(&mut live, &[0, 1], 5);
        let n01 = live.node_index((blk(0), blk(1))).unwrap();
        assert_eq!(live.node(n01).state(), NodeState::NewlyCreated);
        merge_into(&mut live, &export(&donor)).unwrap();
        let node = live.node(n01);
        assert_eq!(node.delay_remaining, 0, "donor already served the delay");
        assert_eq!(node.state(), NodeState::Unique, "state recomputed hot");
    }

    #[test]
    fn merge_is_silent_and_later_observation_signals_normally() {
        let config = cfg(4, 0.97);
        let mut donor = BranchCorrelationGraph::new(config);
        feed(&mut donor, &[0, 1], 40);
        let mut live = BranchCorrelationGraph::new(config);
        merge_into(&mut live, &export(&donor)).unwrap();
        assert!(!live.has_signals(), "merge must not raise signals");
        // New correlation discovered after the merge still signals.
        feed(&mut live, &[5, 6], 10);
        assert!(live
            .take_signals()
            .iter()
            .any(|s| matches!(s.kind, SignalKind::StateChange { .. })));
    }

    #[test]
    fn merged_graph_keeps_observing_consistently() {
        // End-to-end: merge then keep profiling; derived state stays
        // coherent under the debug invariants.
        let config = cfg(8, 0.90);
        let mut donor = BranchCorrelationGraph::new(config);
        feed(&mut donor, &[0, 1, 2, 3], 500);
        let mut live = BranchCorrelationGraph::new(config);
        feed(&mut live, &[0, 1, 4], 50);
        merge_into(&mut live, &export(&donor)).unwrap();
        feed(&mut live, &[0, 1, 2, 3], 500);
        let n01 = live.node_index((blk(0), blk(1))).unwrap();
        let node = live.node(n01);
        assert!(node.state().is_hot());
        assert_eq!(node.predicted().unwrap().to_block, blk(2));
        assert!(live.stats().decays > 0);
    }
}

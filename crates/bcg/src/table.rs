//! Packed branch keys and the open-addressed table behind every
//! per-dispatch lookup.
//!
//! The profiler and the trace cache both key their hot tables by a
//! [`Branch`](crate::Branch) — a `(BlockId, BlockId)` pair, 128 bits of
//! struct. Hashing that through SipHash in `std::collections::HashMap`
//! costs more than the paper's entire per-dispatch budget ("a couple of
//! comparisons and a counter bump", §4.1.2). [`PackedBranch`] folds the
//! pair into a single `u64`, and [`BranchTable`] probes a power-of-two
//! open-addressed array with one multiply of hashing — the same design
//! point as rustc's FxHashMap, but specialised to `u64` keys so the
//! empty-slot sentinel lives in the key itself and a probe touches one
//! contiguous slot array.

use crate::Branch;
use jvm_bytecode::{BlockId, FuncId};

/// A `Branch` packed into one word: `from.func : from.block : to.func :
/// to.block`, 16 bits each. The packing is injective over the supported
/// id range, so equality on the packed key is equality on the branch.
///
/// The id-range limit (functions and block indices below `2^16`) is far
/// above anything the workload generators produce; [`PackedBranch::pack`]
/// asserts it so an out-of-range program fails loudly instead of
/// aliasing keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedBranch(pub u64);

/// Key value reserved for empty slots: unreachable from `pack` because a
/// packed key of all-ones would need every component to be `0xFFFF`,
/// which the range assert rejects.
const EMPTY: u64 = u64::MAX;

impl PackedBranch {
    const FIELD_BITS: u32 = 16;

    /// Packs a branch into its key. Panics if any component id needs 16
    /// bits or more (see type docs).
    #[inline]
    pub fn pack(branch: Branch) -> Self {
        let (from, to) = branch;
        let a = u64::from(from.func.0);
        let b = u64::from(from.block);
        let c = u64::from(to.func.0);
        let d = u64::from(to.block);
        assert!(
            (a | b | c | d) < (1 << Self::FIELD_BITS) - 1,
            "block/function ids must fit in 16 bits to pack a branch key"
        );
        Self(a << 48 | b << 32 | c << 16 | d)
    }

    /// Inverse of [`pack`](Self::pack).
    #[inline]
    pub fn unpack(self) -> Branch {
        let v = self.0;
        let from = BlockId::new(FuncId((v >> 48) as u32), (v >> 32) as u32 & 0xFFFF);
        let to = BlockId::new(FuncId((v >> 16) as u32 & 0xFFFF), v as u32 & 0xFFFF);
        (from, to)
    }
}

/// Open-addressed hash table from [`PackedBranch`] keys to small `Copy`
/// values, built for the block-dispatch hot path:
///
/// * power-of-two capacity, linear probing, ≤ 7/8 load;
/// * FxHash-style multiplicative hashing (one `wrapping_mul`, high bits
///   select the home slot);
/// * the empty sentinel is a key value, so a slot is 12–16 bytes and a
///   probe is one array read plus one compare;
/// * deletion uses backward shifting, not tombstones, so probe chains
///   never degrade under unlink churn.
#[derive(Debug, Clone, Default)]
pub struct BranchTable<V> {
    /// `(key, value)` slots; `key == EMPTY` marks a free slot. Length is
    /// zero (unallocated) or a power of two.
    slots: Vec<(u64, V)>,
    len: usize,
}

/// Fibonacci-hashing multiplier (the FxHash/rustc constant, 2^64 / φ).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

const MIN_CAPACITY: usize = 16;

impl<V: Copy + Default> BranchTable<V> {
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slot count (zero until the first insert).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes held by the slot array — the table's true footprint, used
    /// by `memory_estimate` instead of guessed std-HashMap layouts.
    pub fn memory_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(u64, V)>()
    }

    /// Home slot for a key: multiply, keep the high bits that address
    /// the table. High bits mix far better than a mask of the low bits
    /// for the near-sequential ids the packer produces.
    #[inline]
    fn home(&self, key: u64) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        let shift = 64 - self.slots.len().trailing_zeros();
        (key.wrapping_mul(MIX) >> shift) as usize
    }

    #[inline]
    pub fn get(&self, key: PackedBranch) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key.0);
        loop {
            let (k, v) = self.slots[i];
            if k == key.0 {
                return Some(v);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or replaces, returning the previous value if any.
    pub fn insert(&mut self, key: PackedBranch, value: V) -> Option<V> {
        debug_assert_ne!(key.0, EMPTY);
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key.0);
        loop {
            let (k, v) = self.slots[i];
            if k == key.0 {
                self.slots[i].1 = value;
                return Some(v);
            }
            if k == EMPTY {
                self.slots[i] = (key.0, value);
                self.len += 1;
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes a key with backward-shift deletion: entries displaced
    /// past the vacated slot are pulled back so lookups never need
    /// tombstones.
    pub fn remove(&mut self, key: PackedBranch) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.home(key.0);
        loop {
            let (k, _) = self.slots[i];
            if k == EMPTY {
                return None;
            }
            if k == key.0 {
                break;
            }
            i = (i + 1) & mask;
        }
        let removed = self.slots[i].1;
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let (k, _) = self.slots[j];
            if k == EMPTY {
                break;
            }
            // Move k back into the hole only if doing so does not jump
            // it before its home slot (cyclic distance check).
            let home = self.home(k);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j];
                hole = j;
            }
        }
        self.slots[hole].0 = EMPTY;
        self.len -= 1;
        Some(removed)
    }

    /// Iterates live `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PackedBranch, V)> + '_ {
        self.slots
            .iter()
            .filter(|(k, _)| *k != EMPTY)
            .map(|&(k, v)| (PackedBranch(k), v))
    }

    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            slot.0 = EMPTY;
        }
        self.len = 0;
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY, V::default()); new_cap]);
        let len = self.len;
        self.len = 0;
        for (k, v) in old {
            if k != EMPTY {
                self.insert(PackedBranch(k), v);
            }
        }
        debug_assert_eq!(self.len, len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(f: u32, b: u32) -> BlockId {
        BlockId::new(FuncId(f), b)
    }

    fn key(a: u32, b: u32) -> PackedBranch {
        PackedBranch::pack((blk(0, a), blk(0, b)))
    }

    #[test]
    fn pack_roundtrips_and_is_injective() {
        let branches = [
            (blk(0, 0), blk(0, 0)),
            (blk(1, 2), blk(3, 4)),
            (blk(0xFFFE, 0xFFFE), blk(0xFFFE, 0xFFFE)),
            (blk(7, 0), blk(0, 7)),
        ];
        let mut seen = std::collections::HashSet::new();
        for &br in &branches {
            let p = PackedBranch::pack(br);
            assert_eq!(p.unpack(), br);
            assert!(seen.insert(p.0));
            assert_ne!(p.0, u64::MAX);
        }
    }

    #[test]
    #[should_panic(expected = "16 bits")]
    fn pack_rejects_oversized_ids() {
        PackedBranch::pack((blk(0x1_0000, 0), blk(0, 0)));
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t: BranchTable<u32> = BranchTable::new();
        assert!(t.is_empty());
        for i in 0..500u32 {
            assert_eq!(t.insert(key(i, i + 1), i), None);
        }
        assert_eq!(t.len(), 500);
        for i in 0..500u32 {
            assert_eq!(t.get(key(i, i + 1)), Some(i));
        }
        assert_eq!(t.get(key(600, 601)), None);
        // Replace returns the old value.
        assert_eq!(t.insert(key(3, 4), 99), Some(3));
        assert_eq!(t.get(key(3, 4)), Some(99));
        // Remove half, confirm the rest survive backward shifting.
        for i in (0..500u32).step_by(2) {
            let expect = if i == 3 { 99 } else { i };
            assert_eq!(t.remove(key(i, i + 1)), Some(expect));
        }
        assert_eq!(t.len(), 250);
        for i in 0..500u32 {
            let got = t.get(key(i, i + 1));
            if i % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(if i == 3 { 99 } else { i }));
            }
        }
        assert_eq!(t.remove(key(600, 601)), None);
    }

    #[test]
    fn capacity_stays_power_of_two_and_load_bounded() {
        let mut t: BranchTable<u32> = BranchTable::new();
        for i in 0..10_000u32 {
            t.insert(key(i % 4096, i / 4096 + 1), i);
            assert!(t.capacity().is_power_of_two());
            assert!(t.len() * 8 <= t.capacity() * 7);
        }
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut t: BranchTable<u32> = BranchTable::new();
        for i in 0..64u32 {
            t.insert(key(i, 0), i);
        }
        for i in 0..32u32 {
            t.remove(key(i, 0));
        }
        let mut got: Vec<(Branch, u32)> = t.iter().map(|(k, v)| (k.unpack(), v)).collect();
        got.sort_by_key(|&(_, v)| v);
        assert_eq!(got.len(), 32);
        for (idx, (br, v)) in got.into_iter().enumerate() {
            let i = idx as u32 + 32;
            assert_eq!(v, i);
            assert_eq!(br, (blk(0, i), blk(0, 0)));
        }
    }

    /// Differential check against std::HashMap under a seeded stream of
    /// mixed operations — the structural half of the ISSUE's
    /// differential-testing satellite (the full-system half lives in
    /// the workspace-level tests).
    #[test]
    fn differential_vs_std_hashmap() {
        use std::collections::HashMap;
        // SplitMix64 inline so this crate stays dependency-free.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut table: BranchTable<u32> = BranchTable::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for step in 0..200_000u32 {
            let r = next();
            // Small key universe so hits, collisions, and deletes of
            // present keys all happen constantly.
            let k = key((r >> 8) as u32 % 512, (r >> 24) as u32 % 7);
            match r % 4 {
                0 | 1 => {
                    assert_eq!(table.insert(k, step), model.insert(k.0, step));
                }
                2 => {
                    assert_eq!(table.remove(k), model.remove(&k.0));
                }
                _ => {
                    assert_eq!(table.get(k), model.get(&k.0).copied());
                }
            }
            assert_eq!(table.len(), model.len());
        }
        let mut a: Vec<(u64, u32)> = table.iter().map(|(k, v)| (k.0, v)).collect();
        let mut b: Vec<(u64, u32)> = model.into_iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

//! Node states.

use std::fmt;

/// The correlation state of a BCG node, summarised to the trace cache.
///
/// The paper (§4.1.1) lists them "in descending degree of correlation:
/// unique, strongly correlated, weakly correlated, and newly created";
/// the `Ord` impl follows that order ascending, so
/// `NodeState::Unique > NodeState::Strong > NodeState::Weak >
/// NodeState::NewlyCreated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeState {
    /// Still inside the start-state delay (or has no usable statistics);
    /// excluded from traces.
    NewlyCreated,
    /// Hot, but no successor reaches the correlation threshold.
    Weak,
    /// The maximal successor correlation is at or above the threshold.
    Strong,
    /// Exactly one successor has ever been observed (probability 1 so
    /// far) — the analogue of a rePLay assertion.
    Unique,
}

impl NodeState {
    /// Whether the trace constructor may extend a trace *through* this
    /// node (i.e. follow its predicted successor).
    #[inline]
    pub fn is_traceable(self) -> bool {
        matches!(self, NodeState::Strong | NodeState::Unique)
    }

    /// Whether the node has left the start-state delay.
    #[inline]
    pub fn is_hot(self) -> bool {
        self != NodeState::NewlyCreated
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::NewlyCreated => "newly-created",
            NodeState::Weak => "weak",
            NodeState::Strong => "strong",
            NodeState::Unique => "unique",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_correlation_degrees() {
        assert!(NodeState::Unique > NodeState::Strong);
        assert!(NodeState::Strong > NodeState::Weak);
        assert!(NodeState::Weak > NodeState::NewlyCreated);
    }

    #[test]
    fn traceability() {
        assert!(NodeState::Unique.is_traceable());
        assert!(NodeState::Strong.is_traceable());
        assert!(!NodeState::Weak.is_traceable());
        assert!(!NodeState::NewlyCreated.is_traceable());
    }

    #[test]
    fn hotness() {
        assert!(!NodeState::NewlyCreated.is_hot());
        assert!(NodeState::Weak.is_hot());
    }
}

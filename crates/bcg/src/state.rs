//! Node states.

use std::fmt;

/// The correlation state of a BCG node, summarised to the trace cache.
///
/// The paper (§4.1.1) lists them "in descending degree of correlation:
/// unique, strongly correlated, weakly correlated, and newly created";
/// the `Ord` impl follows that order ascending, so
/// `NodeState::Unique > NodeState::Strong > NodeState::Weak >
/// NodeState::NewlyCreated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeState {
    /// Still inside the start-state delay (or has no usable statistics);
    /// excluded from traces.
    NewlyCreated,
    /// Hot, but no successor reaches the correlation threshold.
    Weak,
    /// The maximal successor correlation is at or above the threshold.
    Strong,
    /// Exactly one successor has ever been observed (probability 1 so
    /// far) — the analogue of a rePLay assertion.
    Unique,
}

impl NodeState {
    /// Whether the trace constructor may extend a trace *through* this
    /// node (i.e. follow its predicted successor).
    #[inline]
    pub fn is_traceable(self) -> bool {
        matches!(self, NodeState::Strong | NodeState::Unique)
    }

    /// Whether the node has left the start-state delay.
    #[inline]
    pub fn is_hot(self) -> bool {
        self != NodeState::NewlyCreated
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeState::NewlyCreated => "newly-created",
            NodeState::Weak => "weak",
            NodeState::Strong => "strong",
            NodeState::Unique => "unique",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_correlation_degrees() {
        assert!(NodeState::Unique > NodeState::Strong);
        assert!(NodeState::Strong > NodeState::Weak);
        assert!(NodeState::Weak > NodeState::NewlyCreated);
    }

    #[test]
    fn traceability() {
        assert!(NodeState::Unique.is_traceable());
        assert!(NodeState::Strong.is_traceable());
        assert!(!NodeState::Weak.is_traceable());
        assert!(!NodeState::NewlyCreated.is_traceable());
    }

    #[test]
    fn hotness() {
        assert!(!NodeState::NewlyCreated.is_hot());
        assert!(NodeState::Weak.is_hot());
    }

    /// The Strong/Weak boundary is inclusive: a maximal correlation
    /// *exactly at* the completion threshold classifies Strong (§4.1.1's
    /// "at or above"). Exercised with a dyadic threshold so the ratio is
    /// exact in binary and the comparison is not decided by rounding.
    #[test]
    fn transition_at_exactly_the_completion_threshold() {
        use crate::graph::NodeIdx;
        use crate::node::{Node, Successor};
        use jvm_bytecode::{BlockId, FuncId};

        let blk = |b: u32| BlockId::new(FuncId(0), b);
        let node_with = |counts: &[(u32, u16)]| {
            let mut n = Node::new((blk(0), blk(1)), 0);
            for (i, &(b, c)) in counts.iter().enumerate() {
                n.push_successor_for_test(Successor {
                    to_block: blk(b),
                    count: c,
                    node: NodeIdx(i as u32 + 1),
                });
            }
            n
        };

        // 3/4 == 0.75 exactly: at threshold 0.75 the node is Strong.
        assert_eq!(
            node_with(&[(2, 3), (3, 1)]).compute_state(0.75),
            NodeState::Strong
        );
        // One observation less and it is Weak (2/3 < 0.75).
        assert_eq!(
            node_with(&[(2, 2), (3, 1)]).compute_state(0.75),
            NodeState::Weak
        );
        // The paper's 0.97: 97/100 parses to the same f64 as the literal.
        assert_eq!(
            node_with(&[(2, 97), (3, 3)]).compute_state(0.97),
            NodeState::Strong
        );
        // And a 50% threshold admits an exactly even split as Strong.
        assert_eq!(
            node_with(&[(2, 1), (3, 1)]).compute_state(0.5),
            NodeState::Strong
        );
    }
}

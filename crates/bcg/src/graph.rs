//! The branch correlation graph itself.

use std::fmt;

use jvm_bytecode::BlockId;

use crate::config::BcgConfig;
use crate::node::{Node, Successor};
use crate::signal::{Signal, SignalKind};
use crate::stats::ProfilerStats;
use crate::table::{BranchTable, PackedBranch};
use crate::Branch;

/// Index of a node within a [`BranchCorrelationGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// Raw index into the node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The profiler: consumes the dynamic block stream one dispatch at a time
/// and maintains the branch correlation graph.
///
/// Feed it with [`BranchCorrelationGraph::observe`] — typically from a
/// [`jvm_vm::DispatchObserver`](https://docs.rs/jvm-vm) hook — then drain
/// pending [`Signal`]s with
/// [`BranchCorrelationGraph::drain_signals_into`] (reusable buffer, no
/// per-drain allocation) or [`BranchCorrelationGraph::take_signals`].
///
/// The per-dispatch cost model mirrors §4.1.2 of the paper:
///
/// * **fast path** (expected): the dispatched block matches the context
///   node's cached prediction — two comparisons, one counter bump, and the
///   edge's embedded target index becomes the new context; no hashing, and
///   with ≤ 4 successors no pointer chase either (inline storage);
/// * **slow path**: a linear scan of the context's known successors,
///   possibly constructing a new edge and node (lazy construction); only
///   this path touches the branch index, an open-addressed
///   [`BranchTable`] keyed by [`PackedBranch`];
/// * **periodic work**: every `decay_interval` executions of a node its
///   counters decay and its state/prediction are rechecked.
#[derive(Debug)]
pub struct BranchCorrelationGraph {
    config: BcgConfig,
    nodes: Vec<Node>,
    index: BranchTable<NodeIdx>,
    /// The block most recently dispatched.
    last_block: Option<BlockId>,
    /// Node of the most recent branch `(X, Y)` — the "branch context
    /// pointer" of §4.1.2.
    ctx_node: Option<NodeIdx>,
    signals: Vec<Signal>,
    /// Signals handed back by [`Self::defer_signals`] (e.g. because the
    /// off-thread construction queue was full). Re-raised wholesale at
    /// the next decay cycle — decay is the profiler's natural "look
    /// again" moment, so a dropped batch costs at most one decay
    /// interval of missed construction, never a lost trace.
    deferred: Vec<Signal>,
    stats: ProfilerStats,
}

impl BranchCorrelationGraph {
    /// Creates an empty graph with the given configuration.
    pub fn new(config: BcgConfig) -> Self {
        BranchCorrelationGraph {
            config,
            nodes: Vec::new(),
            index: BranchTable::new(),
            last_block: None,
            ctx_node: None,
            signals: Vec::new(),
            deferred: Vec::new(),
            stats: ProfilerStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &BcgConfig {
        &self.config
    }

    /// Profiler statistics so far.
    pub fn stats(&self) -> ProfilerStats {
        self.stats
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn node(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx.index()]
    }

    /// Looks up the node for a branch, if it has ever been observed.
    pub fn node_index(&self, branch: Branch) -> Option<NodeIdx> {
        self.index.get(PackedBranch::pack(branch))
    }

    /// Iterates over all `(index, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeIdx, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeIdx(i as u32), n))
    }

    /// Resets the stream context (between program runs) without touching
    /// the accumulated graph.
    pub fn begin_stream(&mut self) {
        self.last_block = None;
        self.ctx_node = None;
    }

    /// Re-anchors the stream context at `block` without recording a
    /// branch. A trace-executing VM calls this when a trace ends: the
    /// profiling points inside the trace were eliminated (§4.1.2 — "all
    /// of the inlined ones are removed"), so the profiler resumes from
    /// the trace's final block rather than inventing a bogus branch from
    /// the trace's entry.
    pub fn set_context(&mut self, block: BlockId) {
        self.last_block = Some(block);
        self.ctx_node = None;
    }

    /// Drains and returns all pending signals, allocating a fresh vector.
    /// Hot loops should prefer [`Self::drain_signals_into`].
    pub fn take_signals(&mut self) -> Vec<Signal> {
        std::mem::take(&mut self.signals)
    }

    /// Drains all pending signals into `out` (cleared first), retaining
    /// both buffers' capacity: the steady-state dispatch loop drains
    /// without touching the allocator.
    pub fn drain_signals_into(&mut self, out: &mut Vec<Signal>) {
        out.clear();
        out.append(&mut self.signals);
    }

    /// Whether any signals are pending (cheaper than draining).
    pub fn has_signals(&self) -> bool {
        !self.signals.is_empty()
    }

    /// Hands a drained signal batch *back* to the profiler because the
    /// consumer could not take it (the off-thread construction queue was
    /// full). The signals are parked and re-raised — available again via
    /// [`Self::drain_signals_into`] — at the next decay cycle, which is
    /// when the profiler would next re-examine those branches anyway.
    /// Graceful degradation under construction-queue overload therefore
    /// delays trace construction by at most one decay interval instead
    /// of silently losing the trace: signals fire only on *change*, so
    /// without this hook a dropped batch would never recur.
    ///
    /// Parked signals are deduplicated by node — re-dropping the same
    /// batch repeatedly cannot grow the buffer.
    pub fn defer_signals(&mut self, signals: &[Signal]) {
        for sig in signals {
            if self.deferred.iter().all(|d| d.node != sig.node) {
                self.deferred.push(*sig);
                self.stats.signals_deferred += 1;
            }
        }
    }

    /// Number of signals currently parked by [`Self::defer_signals`].
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// The profiler's epoch clock: completed decay windows of
    /// `decay_interval` dispatches (§4.1.1's 256-execution window).
    /// Derived from the same dispatch counter the lazy per-node decay
    /// is scheduled against, so consumers syncing to this clock — the
    /// trace-health EWMA scorer — tick with counter decay rather than
    /// on a clock of their own.
    #[inline]
    pub fn decay_epoch(&self) -> u64 {
        self.stats.dispatches / u64::from(self.config.decay_interval.max(1))
    }

    /// Stamps a node with the trace cache's generation counter. The trace
    /// cache marks every node it incorporates while reacting to a signal,
    /// "to prevent cascades of state changes" (§4.2).
    pub fn mark_generation(&mut self, idx: NodeIdx, generation: u64) {
        self.nodes[idx.index()].generation = generation;
    }

    /// Writes a node's inline trace-link slot: `raw` is whatever the
    /// trace cache wants to find there while its version equals
    /// `version` (a raw trace id or [`crate::node::NO_TRACE_LINK`]).
    /// See [`Node::trace_link`].
    #[inline]
    pub fn set_trace_link(&mut self, idx: NodeIdx, version: u64, raw: u32) {
        let node = &mut self.nodes[idx.index()];
        node.link_version = version;
        node.link_raw = raw;
    }

    /// Estimated heap footprint of the graph in bytes (nodes, spilled
    /// successor and predecessor lists, and the branch index). The paper
    /// stresses that the BCG is memory-light — "we carefully represent
    /// blocks, nodes, and edges to minimize memory overhead" (§3.5) —
    /// and lazy construction keeps it proportional to the *realized*
    /// branch pairs, not the static program size; this estimate lets
    /// harnesses report that cost.
    ///
    /// Computed from the real layout: the [`BranchTable`]'s allocated
    /// slot array and each node's actual spill state, not an assumed
    /// std-`HashMap` bucket scheme.
    pub fn memory_estimate(&self) -> usize {
        use std::mem::size_of;
        let node_fixed = self.nodes.capacity() * size_of::<Node>();
        let lists: usize = self
            .nodes
            .iter()
            .map(|n| n.successors.heap_bytes() + n.preds.capacity() * size_of::<NodeIdx>())
            .sum();
        node_fixed + lists + self.index.memory_bytes()
    }

    /// Observes one dispatched block. This is the profiler hook executed
    /// with every block dispatch.
    ///
    /// Returns the node of the branch just observed — `(previous block,
    /// z)` — which is the new context node, or `None` for the first
    /// block of a stream. The integrated VM threads this into the trace
    /// cache's per-node link slot so the dispatch monitor never hashes.
    ///
    /// The expected case is the **budgeted fast path**: the context
    /// node's prediction matches `z` and its event budget (armed by the
    /// last slow visit, see [`Self::rearm`]) proves no decay, delay
    /// expiry, or counter saturation can fire yet — so the whole
    /// dispatch is two compares and three counter bumps, the paper's
    /// "couple of comparisons and a counter bump" (§4.1.2).
    #[inline]
    pub fn observe(&mut self, z: BlockId) -> Option<NodeIdx> {
        self.stats.dispatches += 1;
        // First block of the stream has no branch yet.
        let y = self.last_block.replace(z)?;
        let next = match self.ctx_node {
            Some(nxy) => {
                let node = &mut self.nodes[nxy.index()];
                if node.fp_budget != 0 && node.fp_block == z {
                    node.fp_budget -= 1;
                    node.executions += 1;
                    node.total_weight += 1;
                    node.successors.as_mut_slice()[node.fp_slot as usize].count += 1;
                    self.stats.cache_hits += 1;
                    node.fp_next
                } else {
                    self.record_slow(nxy, (y, z))
                }
            }
            None => self.get_or_create((y, z)),
        };
        #[cfg(feature = "debug-invariants")]
        {
            if let Some(nxy) = self.ctx_node {
                self.assert_node_invariants(nxy);
            }
            self.assert_node_invariants(next);
        }
        self.ctx_node = Some(next);
        Some(next)
    }

    /// The `debug-invariants` layer: machine-checkable properties of one
    /// live node, asserted after every dispatch through it. Each check
    /// names the paper rule it encodes (DESIGN.md, "Conformance
    /// invariants" maps them in prose). Compiled out unless the
    /// `debug-invariants` feature is on.
    #[cfg(feature = "debug-invariants")]
    pub fn assert_node_invariants(&self, idx: NodeIdx) {
        use crate::state::NodeState;
        let cfg = &self.config;
        let node = &self.nodes[idx.index()];
        // §4.1: 16-bit decayed counters saturate at the bound, never wrap.
        let mut sum = 0u32;
        for s in node.successors.as_slice() {
            assert!(
                s.count <= cfg.max_counter,
                "{idx}: counter {} above saturation bound {}",
                s.count,
                cfg.max_counter
            );
            sum += u32::from(s.count);
        }
        assert_eq!(
            node.total_weight, sum,
            "{idx}: total_weight out of sync with successor counters"
        );
        // §3.3: a node still inside the start-state delay is NewlyCreated.
        if node.delay_remaining > 0 {
            assert_eq!(
                node.state,
                NodeState::NewlyCreated,
                "{idx}: delayed node left the start state early"
            );
        }
        // §4.1.1: decay fires *at* the interval boundary, so between
        // visits the since-decay window stays strictly below it.
        assert!(
            node.since_decay < cfg.decay_interval,
            "{idx}: missed a decay ({} >= {})",
            node.since_decay,
            cfg.decay_interval
        );
        // The cached prediction must index a live successor slot.
        if let Some(ci) = node.cached {
            assert!(
                (ci as usize) < node.successors.len(),
                "{idx}: cached prediction slot {ci} dangles"
            );
        }
        // Budgeted fast path: while armed, the armed slot mirrors the
        // cached prediction and its embedded target link, and the spent
        // budget never exceeds what was armed.
        if node.fp_budget != 0 {
            assert!(node.fp_budget <= node.fp_armed, "{idx}: budget overspent");
            let ci = node.cached.expect("armed fast path requires a prediction");
            assert_eq!(node.fp_slot, ci, "{idx}: armed slot diverged from cache");
            let s = &node.successors.as_slice()[ci as usize];
            assert_eq!(node.fp_block, s.to_block, "{idx}: armed block stale");
            assert_eq!(node.fp_next, s.node, "{idx}: armed target link stale");
        }
    }

    /// Crate-internal mutable node access for the persistence image
    /// module ([`crate::image`]).
    pub(crate) fn node_mut(&mut self, idx: NodeIdx) -> &mut Node {
        &mut self.nodes[idx.index()]
    }

    /// Crate-internal [`Self::get_or_create`] alias for the image module.
    pub(crate) fn get_or_create_node(&mut self, branch: Branch) -> NodeIdx {
        self.get_or_create(branch)
    }

    /// Applies pending fast-path bookkeeping and disarms the budget so
    /// the next visit takes the slow path. The image merge uses this to
    /// put a node back under the lazy-decay discipline before folding
    /// foreign counters in: a stale armed budget could otherwise run a
    /// counter past saturation or skate over a newly-due decay.
    pub(crate) fn settle_and_disarm(&mut self, idx: NodeIdx) {
        self.sync_deferred(idx);
        let node = &mut self.nodes[idx.index()];
        node.fp_budget = 0;
        node.fp_armed = 0;
    }

    /// Crate-internal stats access for the image module.
    pub(crate) fn stats_mut(&mut self) -> &mut ProfilerStats {
        &mut self.stats
    }

    /// Gets or lazily creates the node for `branch`.
    fn get_or_create(&mut self, branch: Branch) -> NodeIdx {
        let key = PackedBranch::pack(branch);
        if let Some(idx) = self.index.get(key) {
            return idx;
        }
        let idx = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(Node::new(branch, self.config.start_delay));
        self.index.insert(key, idx);
        self.stats.nodes_created += 1;
        idx
    }

    /// Applies the bookkeeping the fast path deferred: `elapsed` fast
    /// hits each conceptually incremented `since_decay` and decremented
    /// `delay_remaining`, but the budget guarantees neither crossed its
    /// event boundary, so applying them in one batch is exact.
    fn sync_deferred(&mut self, nxy: NodeIdx) {
        let node = &mut self.nodes[nxy.index()];
        let elapsed = node.fp_armed - node.fp_budget;
        if elapsed > 0 {
            node.since_decay += elapsed;
            if node.delay_remaining > 0 {
                // Budget ≤ delay_remaining - 1 at arm time, so the
                // countdown cannot have reached zero in between.
                node.delay_remaining -= elapsed;
            }
            node.fp_armed = node.fp_budget;
        }
    }

    /// Re-arms the budgeted fast path after a slow visit: the budget is
    /// the number of consecutive predicted hits guaranteed not to reach
    /// the node's next event (decay due, delay expiry, or saturation of
    /// the predicted counter). Zero disarms — every visit then takes the
    /// slow path, which is exactly the reference semantics.
    fn rearm(&mut self, nxy: NodeIdx) {
        let cfg = &self.config;
        let node = &mut self.nodes[nxy.index()];
        node.fp_budget = 0;
        node.fp_armed = 0;
        if !cfg.inline_cache {
            return;
        }
        let Some(ci) = node.cached else { return };
        let s = node.successors.as_slice()[ci as usize];
        let until_saturation = u32::from(cfg.max_counter) - u32::from(s.count);
        let until_decay = (cfg.decay_interval - node.since_decay).saturating_sub(1);
        let until_delay = if node.delay_remaining > 0 {
            node.delay_remaining - 1
        } else {
            u32::MAX
        };
        let budget = until_saturation.min(until_decay).min(until_delay);
        node.fp_budget = budget;
        node.fp_armed = budget;
        node.fp_block = s.to_block;
        node.fp_next = s.node;
        node.fp_slot = ci;
    }

    /// Records that branch `yz` followed the branch at `nxy`, updating the
    /// edge counter, the start delay, and the decay schedule. Returns the
    /// node for `yz`, which becomes the new context.
    ///
    /// This is the reference (pre-overhaul) logic verbatim, bracketed by
    /// [`Self::sync_deferred`] and [`Self::rearm`].
    fn record_slow(&mut self, nxy: NodeIdx, yz: Branch) -> NodeIdx {
        self.sync_deferred(nxy);
        let cfg = self.config;
        let z = yz.1;

        // Inline-cache check: cached prediction matches.
        let mut next: Option<NodeIdx> = None;
        {
            let node = &mut self.nodes[nxy.index()];
            node.executions += 1;
            if cfg.inline_cache {
                if let Some(ci) = node.cached {
                    let s = &mut node.successors.as_mut_slice()[ci as usize];
                    if s.to_block == z {
                        if s.count < cfg.max_counter {
                            s.count += 1;
                            node.total_weight += 1;
                        }
                        self.stats.cache_hits += 1;
                        next = Some(s.node);
                    }
                }
            }
            if next.is_none() {
                self.stats.cache_misses += 1;
                // Slow path: scan the known correlations.
                if let Some(i) = node
                    .successors
                    .as_slice()
                    .iter()
                    .position(|s| s.to_block == z)
                {
                    let s = &mut node.successors.as_mut_slice()[i];
                    if s.count < cfg.max_counter {
                        s.count += 1;
                        node.total_weight += 1;
                    }
                    let s_node = s.node;
                    if node.cached.is_none() {
                        node.cached = Some(i as u32);
                    }
                    next = Some(s_node);
                }
            }
        }

        // Lazy construction: new correlation, possibly a new node.
        let next = match next {
            Some(n) => n,
            None => {
                let nyz = self.get_or_create(yz);
                let node = &mut self.nodes[nxy.index()];
                node.successors.push(Successor {
                    to_block: z,
                    count: 1,
                    node: nyz,
                });
                node.total_weight += 1;
                if node.cached.is_none() {
                    node.cached = Some((node.successors.len() - 1) as u32);
                }
                self.stats.edges_created += 1;
                let target = &mut self.nodes[nyz.index()];
                if !target.preds.contains(&nxy) {
                    target.preds.push(nxy);
                }
                nyz
            }
        };

        // Start-state delay countdown; leaving it is a state change.
        let mut decay_due = false;
        {
            let node = &mut self.nodes[nxy.index()];
            if node.delay_remaining > 0 {
                node.delay_remaining -= 1;
                if node.delay_remaining == 0 {
                    let new = node.compute_state(cfg.threshold);
                    if new != node.state {
                        let old = node.state;
                        // §3.3: leaving the start-state delay is the only
                        // transition possible here — the state machine
                        // holds NewlyCreated for the delay's whole span.
                        #[cfg(feature = "debug-invariants")]
                        assert_eq!(
                            old,
                            crate::state::NodeState::NewlyCreated,
                            "{nxy}: delay expiry from a non-start state"
                        );
                        node.state = new;
                        self.signals.push(Signal {
                            node: nxy,
                            branch: node.branch,
                            kind: SignalKind::StateChange { old, new },
                        });
                        self.stats.state_signals += 1;
                    }
                }
            }
            node.since_decay += 1;
            if node.since_decay >= cfg.decay_interval {
                decay_due = true;
            }
        }
        if decay_due {
            self.decay(nxy);
        }
        self.rearm(nxy);
        next
    }

    /// Forces a node's periodic decay to fire *now*, regardless of how
    /// many executions have elapsed since the last one. This is a
    /// test/chaos hook: the conformance campaigns use it to explore
    /// counter-decay interleavings that a natural dispatch stream would
    /// need billions of blocks to reach. Semantically it is exactly the
    /// decay the node would have performed at its next interval boundary
    /// (deferred fast-path bookkeeping is applied first, and the
    /// budgeted fast path is re-armed afterwards), so a model following
    /// the paper's decay rule stays in lockstep.
    pub fn force_decay(&mut self, idx: NodeIdx) {
        self.sync_deferred(idx);
        self.decay(idx);
        self.rearm(idx);
        #[cfg(feature = "debug-invariants")]
        self.assert_node_invariants(idx);
    }

    /// Performs the periodic decay of one node: shifts all its correlation
    /// counters right, prunes dead edges, re-elects the predicted
    /// successor, and rechecks the state — signalling the trace cache if
    /// the state or the prediction changed (§4.1.1).
    fn decay(&mut self, idx: NodeIdx) {
        let cfg = self.config;
        let node = &mut self.nodes[idx.index()];
        let old_state = node.state;
        let old_pred = node.predicted().map(|s| s.to_block);

        for s in node.successors.as_mut_slice() {
            s.count >>= cfg.decay_shift;
        }
        node.successors.retain(|s| s.count > 0);
        node.total_weight = node
            .successors
            .as_slice()
            .iter()
            .map(|s| u32::from(s.count))
            .sum();

        // Re-elect the cached prediction: the maximally correlated edge.
        node.cached = node
            .successors
            .as_slice()
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.count)
            .map(|(i, _)| i as u32);

        let new_state = if node.delay_remaining > 0 {
            // Still filtered; no re-evaluation until hot. While delayed
            // the tag can only ever be the start state (§3.3).
            #[cfg(feature = "debug-invariants")]
            assert_eq!(
                old_state,
                crate::state::NodeState::NewlyCreated,
                "{idx}: delayed node decayed from a non-start state"
            );
            old_state
        } else {
            node.compute_state(cfg.threshold)
        };
        node.state = new_state;
        node.since_decay = 0;
        self.stats.decays += 1;

        let new_pred = node.predicted().map(|s| s.to_block);
        let branch = node.branch;
        if new_state != old_state {
            self.signals.push(Signal {
                node: idx,
                branch,
                kind: SignalKind::StateChange {
                    old: old_state,
                    new: new_state,
                },
            });
            self.stats.state_signals += 1;
        } else if new_state.is_hot() && new_pred != old_pred {
            self.signals.push(Signal {
                node: idx,
                branch,
                kind: SignalKind::PredictionChange {
                    old: old_pred,
                    new: new_pred,
                },
            });
            self.stats.prediction_signals += 1;
        }

        // Re-raise signals parked by a full construction queue: the decay
        // cycle is the re-delivery point (see `defer_signals`).
        if !self.deferred.is_empty() {
            self.stats.signals_reraised += self.deferred.len() as u64;
            self.signals.append(&mut self.deferred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::NodeState;
    use jvm_bytecode::FuncId;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn cfg(delay: u32, threshold: f64) -> BcgConfig {
        BcgConfig::default()
            .with_start_delay(delay)
            .with_threshold(threshold)
    }

    /// Feed a repeating cyclic block pattern `n` times.
    fn feed(bcg: &mut BranchCorrelationGraph, pattern: &[u32], reps: usize) {
        for _ in 0..reps {
            for &b in pattern {
                bcg.observe(blk(b));
            }
        }
    }

    #[test]
    fn first_block_creates_nothing() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        assert_eq!(bcg.observe(blk(0)), None);
        assert!(bcg.is_empty());
        assert_eq!(bcg.stats().dispatches, 1);
    }

    #[test]
    fn decay_epoch_advances_with_the_dispatch_window() {
        let interval = BcgConfig::default().decay_interval as usize;
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        assert_eq!(bcg.decay_epoch(), 0);
        feed(&mut bcg, &[0, 1], interval / 2);
        assert_eq!(bcg.decay_epoch(), 1, "one full window of dispatches");
        feed(&mut bcg, &[0, 1], interval / 2);
        assert_eq!(bcg.decay_epoch(), 2);
        // The clock counts *dispatches*, exactly like the lazy per-node
        // decay schedule.
        assert_eq!(bcg.decay_epoch(), bcg.stats().dispatches / interval as u64);
    }

    #[test]
    fn observe_returns_the_context_node() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        bcg.observe(blk(0));
        let n01 = bcg.observe(blk(1)).expect("branch formed");
        assert_eq!(bcg.node(n01).branch(), (blk(0), blk(1)));
        let n10 = bcg.observe(blk(0)).expect("branch formed");
        assert_eq!(bcg.node(n10).branch(), (blk(1), blk(0)));
        // Repeats return the same nodes via the inline-cache fast path.
        assert_eq!(bcg.observe(blk(1)), Some(n01));
        assert_eq!(bcg.observe(blk(0)), Some(n10));
    }

    #[test]
    fn pair_stream_builds_two_nodes_and_edges() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1], 10);
        // Branches: (0,1) and (1,0).
        assert_eq!(bcg.len(), 2);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let n10 = bcg.node_index((blk(1), blk(0))).unwrap();
        let node01 = bcg.node(n01);
        assert_eq!(node01.successors().len(), 1);
        assert_eq!(node01.successors()[0].to_block, blk(0));
        assert_eq!(node01.successors()[0].node, n10);
        assert_eq!(node01.state(), NodeState::Unique);
        assert!(bcg.node(n10).predecessors().contains(&n01));
    }

    #[test]
    fn start_delay_gates_hotness() {
        let mut bcg = BranchCorrelationGraph::new(cfg(64, 0.97));
        feed(&mut bcg, &[0, 1], 30); // each branch executes < 64 times
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        assert_eq!(bcg.node(n01).state(), NodeState::NewlyCreated);
        feed(&mut bcg, &[0, 1], 40); // crosses the 64-execution delay
        assert_eq!(bcg.node(n01).state(), NodeState::Unique);
        // Exactly one state-change signal for that node.
        let sigs = bcg.take_signals();
        let for_n01: Vec<_> = sigs.iter().filter(|s| s.node == n01).collect();
        assert_eq!(for_n01.len(), 1);
        assert!(matches!(
            for_n01[0].kind,
            SignalKind::StateChange {
                old: NodeState::NewlyCreated,
                new: NodeState::Unique
            }
        ));
    }

    #[test]
    fn biased_branch_becomes_strong_not_unique() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.90));
        // Context (0,1) is followed by 2 most of the time, 3 occasionally:
        // stream 0 1 2 0 1 2 ... with a 3 every 20th round. Run past the
        // 256-execution decay interval so the state tag is re-evaluated.
        for i in 0..400 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(if i % 20 == 19 { 3 } else { 2 }));
        }
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let node = bcg.node(n01);
        assert_eq!(node.successors().len(), 2);
        assert_eq!(node.state(), NodeState::Strong);
        assert!(node.correlation_to(blk(2)) >= 0.90);
    }

    #[test]
    fn unbiased_branch_is_weak() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        for i in 0..400 {
            bcg.observe(blk(0));
            bcg.observe(blk(1));
            bcg.observe(blk(if i % 2 == 0 { 2 } else { 3 }));
        }
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let node = bcg.node(n01);
        assert_eq!(node.state(), NodeState::Weak);
        let c2 = node.correlation_to(blk(2));
        assert!((0.3..=0.7).contains(&c2), "c2 = {c2}");
    }

    #[test]
    fn inline_cache_hits_dominate_on_regular_stream() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1, 2, 3], 1000);
        let s = bcg.stats();
        assert!(
            s.cache_hit_ratio() > 0.99,
            "hit ratio {}",
            s.cache_hit_ratio()
        );
    }

    #[test]
    fn disabling_inline_cache_preserves_graph_shape() {
        let mut with_cache = BranchCorrelationGraph::new(cfg(1, 0.97));
        let mut without = BranchCorrelationGraph::new(BcgConfig {
            inline_cache: false,
            ..cfg(1, 0.97)
        });
        for g in [&mut with_cache, &mut without] {
            for i in 0..300 {
                g.observe(blk(0));
                g.observe(blk(1));
                g.observe(blk(if i % 10 == 9 { 3 } else { 2 }));
            }
        }
        assert_eq!(with_cache.len(), without.len());
        assert_eq!(without.stats().cache_hits, 0);
        let n01 = (blk(0), blk(1));
        let a = with_cache.node(with_cache.node_index(n01).unwrap());
        let b = without.node(without.node_index(n01).unwrap());
        assert_eq!(a.state(), b.state());
        assert_eq!(a.total_weight(), b.total_weight());
    }

    #[test]
    fn decay_halves_counters_and_caps_window() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        // Run for many decay intervals; counters must stay bounded by
        // roughly 2 * decay_interval (geometric series of halvings).
        feed(&mut bcg, &[0, 1], 4000);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let node = bcg.node(n01);
        let c = node.successors()[0].count;
        assert!(c > 0);
        assert!(
            u32::from(c) <= 2 * bcg.config().decay_interval,
            "counter {c} should be bounded by the decay window"
        );
        assert!(bcg.stats().decays > 0);
    }

    #[test]
    fn phase_change_flips_prediction_and_signals() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        // Phase 1: (0,1) -> 2.
        feed(&mut bcg, &[0, 1, 2], 400);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        assert_eq!(bcg.node(n01).predicted().unwrap().to_block, blk(2));
        let _ = bcg.take_signals();
        // Phase 2: (0,1) -> 3 forever after.
        feed(&mut bcg, &[0, 1, 3], 4000);
        let node = bcg.node(n01);
        assert_eq!(node.predicted().unwrap().to_block, blk(3));
        // The old edge must eventually decay away entirely.
        assert_eq!(node.successors().len(), 1, "stale edge should be pruned");
        assert_eq!(node.state(), NodeState::Unique);
        let sigs = bcg.take_signals();
        assert!(
            sigs.iter().any(|s| s.node == n01),
            "phase change must signal the trace cache"
        );
    }

    #[test]
    fn generation_marking_round_trips() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1], 5);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        assert_eq!(bcg.node(n01).generation(), 0);
        bcg.mark_generation(n01, 42);
        assert_eq!(bcg.node(n01).generation(), 42);
    }

    #[test]
    fn begin_stream_resets_context_but_keeps_graph() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1], 10);
        let before = bcg.len();
        bcg.begin_stream();
        // A fresh stream's first block forms no branch with the old one.
        bcg.observe(blk(7));
        assert_eq!(bcg.len(), before);
        bcg.observe(blk(8));
        assert_eq!(bcg.len(), before + 1);
    }

    #[test]
    fn counters_saturate_without_overflow() {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig {
            decay_interval: u32::MAX, // never decay: force saturation path
            max_counter: 100,
            ..cfg(1, 0.97)
        });
        feed(&mut bcg, &[0, 1], 500);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let node = bcg.node(n01);
        assert_eq!(node.successors()[0].count, 100);
        assert_eq!(node.total_weight(), 100);
    }

    /// Decay truncation can drop the maximal successor's correlation
    /// back below the completion threshold: a Strong node must demote to
    /// Weak (with a state-change signal), not stay pinned Strong.
    #[test]
    fn decay_lands_strong_node_back_below_threshold() {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig {
            decay_interval: u32::MAX, // only explicit force_decay ticks
            ..cfg(1, 0.70)
        });
        // Context (0,1) sees 2 ten times and 3 four times: counts 10:4.
        feed(&mut bcg, &[0, 1, 2], 10);
        feed(&mut bcg, &[0, 1, 3], 4);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let _ = bcg.take_signals();

        // First decay: 10:4 -> 5:2, corr 5/7 ~ 0.714 >= 0.70 => Strong.
        bcg.force_decay(n01);
        assert_eq!(bcg.node(n01).state(), NodeState::Strong);

        // Second decay: 5:2 -> 2:1, corr 2/3 ~ 0.667 < 0.70 => Weak.
        bcg.force_decay(n01);
        assert_eq!(bcg.node(n01).state(), NodeState::Weak);
        let sigs = bcg.take_signals();
        assert!(
            sigs.iter().any(|s| s.node == n01
                && matches!(
                    s.kind,
                    SignalKind::StateChange {
                        old: NodeState::Strong,
                        new: NodeState::Weak
                    }
                )),
            "demotion below threshold must signal Strong -> Weak, got {sigs:?}"
        );
    }

    /// At the full 16-bit range the edge counter parks at `u16::MAX` and
    /// stays there — no wraparound back through zero, and `total_weight`
    /// stops advancing in lockstep with the saturated edge.
    #[test]
    fn sixteen_bit_counter_saturates_at_max_without_wrap() {
        let mut bcg = BranchCorrelationGraph::new(BcgConfig {
            decay_interval: u32::MAX, // never decay: drive to saturation
            ..cfg(1, 0.97)
        });
        assert_eq!(bcg.config().max_counter, u16::MAX);
        // 70_000 executions per branch: > u16::MAX, would wrap to ~4464.
        feed(&mut bcg, &[0, 1], 70_000);
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        let node = bcg.node(n01);
        // (the creating visit is not an execution, hence one less)
        assert_eq!(node.executions(), 69_999);
        assert!(node.executions() > u64::from(u16::MAX));
        assert_eq!(node.successors()[0].count, u16::MAX);
        assert_eq!(node.total_weight(), u32::from(u16::MAX));
        assert_eq!(node.state(), NodeState::Unique);
    }

    #[test]
    fn dispatch_count_tracks_observations() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1, 2], 7);
        assert_eq!(bcg.stats().dispatches, 21);
    }

    #[test]
    fn drain_signals_into_reuses_the_buffer() {
        let mut bcg = BranchCorrelationGraph::new(cfg(2, 0.97));
        feed(&mut bcg, &[0, 1], 10);
        assert!(bcg.has_signals());
        let mut buf = Vec::new();
        bcg.drain_signals_into(&mut buf);
        assert!(!buf.is_empty());
        assert!(!bcg.has_signals());
        let cap = buf.capacity();
        let first = buf.clone();
        // Draining again clears the buffer without reallocating.
        bcg.drain_signals_into(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
        // And matches what take_signals would have produced.
        feed(&mut bcg, &[4, 5], 10);
        bcg.drain_signals_into(&mut buf);
        let mut bcg2 = BranchCorrelationGraph::new(cfg(2, 0.97));
        feed(&mut bcg2, &[0, 1], 10);
        assert_eq!(bcg2.take_signals(), first);
    }

    #[test]
    fn deferred_signals_reraise_at_the_next_decay() {
        let mut bcg = BranchCorrelationGraph::new(cfg(2, 0.97));
        feed(&mut bcg, &[0, 1], 10);
        assert!(bcg.has_signals());
        let mut buf = Vec::new();
        bcg.drain_signals_into(&mut buf);
        let dropped = buf.clone();
        assert!(!dropped.is_empty());

        // Consumer could not take the batch: hand it back.
        bcg.defer_signals(&dropped);
        assert_eq!(bcg.deferred_len(), dropped.len());
        assert!(!bcg.has_signals(), "deferring must not re-raise eagerly");

        // Re-deferring the identical batch is idempotent (dedup by node).
        bcg.defer_signals(&dropped);
        assert_eq!(bcg.deferred_len(), dropped.len());
        assert_eq!(bcg.stats().signals_deferred, dropped.len() as u64);

        // The next decay cycle re-delivers every parked signal.
        let n01 = bcg.node_index((blk(0), blk(1))).unwrap();
        bcg.force_decay(n01);
        assert!(bcg.has_signals());
        bcg.drain_signals_into(&mut buf);
        for d in &dropped {
            assert!(
                buf.iter().any(|s| s.node == d.node),
                "deferred signal for {} must re-raise at decay",
                d.node
            );
        }
        assert_eq!(bcg.deferred_len(), 0);
        assert_eq!(bcg.stats().signals_reraised, dropped.len() as u64);
    }

    #[test]
    fn memory_estimate_grows_with_the_graph_and_stays_lazy() {
        let mut small = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut small, &[0, 1], 50);
        let small_mem = small.memory_estimate();
        assert!(small_mem > 0);

        let mut big = BranchCorrelationGraph::new(cfg(1, 0.97));
        for i in 0..32u32 {
            for _ in 0..10 {
                big.observe(blk(i));
                big.observe(blk(i + 32));
            }
        }
        assert!(
            big.memory_estimate() > small_mem,
            "more realized branches must cost more memory"
        );
        // Lazy construction: memory tracks realized pairs (~hundreds of
        // bytes each), not some quadratic blowup.
        assert!(big.memory_estimate() < 64 * 1024);
    }

    #[test]
    fn memory_estimate_accounts_for_the_index_capacity() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        // Enough distinct branches to force several index growths.
        for i in 0..200u32 {
            bcg.observe(blk(i % 100));
            bcg.observe(blk(100 + i % 100));
        }
        let est = bcg.memory_estimate();
        use std::mem::size_of;
        let node_bytes = bcg.len() * size_of::<Node>();
        assert!(
            est >= node_bytes,
            "estimate {est} must cover at least the node array {node_bytes}"
        );
    }

    #[test]
    fn iter_visits_every_node() {
        let mut bcg = BranchCorrelationGraph::new(cfg(1, 0.97));
        feed(&mut bcg, &[0, 1, 2, 3], 3);
        let n = bcg.len();
        assert_eq!(bcg.iter().count(), n);
        for (idx, node) in bcg.iter() {
            assert_eq!(bcg.node_index(node.branch()), Some(idx));
        }
    }
}

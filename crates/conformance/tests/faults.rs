//! Engine-level fault-injection campaigns: the full shared deployment
//! (budgeted cache, supervised off-thread constructor, fault plan) on
//! all six workloads and on generated fuzz programs, with the plain
//! interpreter as the result oracle. Whatever the fault plan does —
//! corrupt artifacts, failed budget checks, constructor kills, dropped
//! or duplicated batches — results and checksums must never move.

use trace_cache::FaultConfig;
use trace_conformance::chaos::parse_corpus_case;
use trace_conformance::faults::run_fault_case;
use trace_conformance::genprog::{args_from, build_program, gen_block};
use trace_workloads::prng::{seed_stream, Xoshiro256StarStar};
use trace_workloads::registry::{all, Scale};

#[test]
fn six_workloads_match_interpreter_under_standard_faults() {
    let mut fired_total = 0;
    for (k, w) in all(Scale::Test).iter().enumerate() {
        let seed = seed_stream(0xFA17_CA5E, k as u64);
        let report = run_fault_case(&w.program, &w.args, FaultConfig::standard(), seed)
            .unwrap_or_else(|e| panic!("workload {} (fault seed {seed:#x}): {e}", w.name));
        fired_total += report.faults.total_fired();
    }
    assert!(
        fired_total > 0,
        "the standard plan fired no faults across six workloads — the campaign tested nothing"
    );
}

#[test]
fn fuzz_programs_match_interpreter_under_standard_faults() {
    const BASE: u64 = 0xFA17_F022;
    let mut fired_total = 0;
    for k in 0..24u64 {
        let seed = seed_stream(BASE, k);
        let mut rng = Xoshiro256StarStar::new(seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        let report = run_fault_case(&program, &args, FaultConfig::standard(), seed)
            .unwrap_or_else(|e| panic!("fuzz case {k} (seed {seed:#x}): {e}"));
        fired_total += report.faults.total_fired();
    }
    assert!(fired_total > 0, "no faults fired across 24 fuzz cases");
}

#[test]
fn constructor_killer_is_deterministically_degraded_and_correct() {
    // Same seed, two independent runs: identical fault decisions,
    // identical degraded outcome, interpreter-identical results both
    // times (the harness itself checks results per run).
    let w = &all(Scale::Test)[1];
    let a = run_fault_case(
        &w.program,
        &w.args,
        FaultConfig::constructor_killer(),
        0xDEAD,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let b = run_fault_case(
        &w.program,
        &w.args,
        FaultConfig::constructor_killer(),
        0xDEAD,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert!(a.health.degraded && b.health.degraded);
    assert_eq!(a.cache.traces_constructed, 0);
    assert_eq!(b.cache.traces_constructed, 0);
    assert_eq!(
        a.faults.fired, b.faults.fired,
        "fault plan must be deterministic"
    );
}

/// Corpus cases that carry `faults=` keys are replayed through the
/// engine-level harness on the case's generated program — the saved
/// reproduction of the fault campaign, pinned in CI.
#[test]
fn saved_fault_corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut replayed = 0usize;
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus case");
        let case = parse_corpus_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let Some((fault, fault_seed)) = case.faults else {
            continue;
        };
        let mut rng = Xoshiro256StarStar::new(case.seed);
        let stmts = gen_block(&mut rng, 3, 1, 8);
        let program = build_program(&stmts);
        let args = args_from(rng.next_i64());
        run_fault_case(&program, &args, fault, fault_seed).unwrap_or_else(|e| {
            panic!(
                "fault corpus case {} (seed {:#x}, fault seed {fault_seed:#x}) failed: {e}",
                path.display(),
                case.seed
            )
        });
        replayed += 1;
    }
    assert!(
        replayed >= 2,
        "expected the saved fault corpus, found {replayed} fault cases"
    );
}

//! The conformance suite: lockstep runs of the production pipeline
//! against the executable paper model on all six workloads and on 256
//! generated fuzz programs; chaos campaigns (clean and quirked); corpus
//! replay; shrinker regression; side-exit validity.
//!
//! Every failure message carries the seed (or workload name) that
//! reproduces it deterministically.

use trace_bcg::BcgConfig;
use trace_cache::ConstructorConfig;
use trace_conformance::chaos::{
    campaign_configs, parse_corpus_case, run_campaign, run_case, run_case_on, shrink, ChaosConfig,
    Perturbation,
};
use trace_conformance::genprog::gen_block;
use trace_conformance::model::Quirk;
use trace_conformance::Lockstep;
use trace_workloads::prng::{seed_stream, Xoshiro256StarStar};
use trace_workloads::registry::{all, Scale};

/// Tunables that exercise the full machinery on test-scale inputs:
/// short start delay, loose threshold, paper decay interval.
fn workload_configs() -> (BcgConfig, ConstructorConfig) {
    (
        BcgConfig::default()
            .with_start_delay(8)
            .with_threshold(0.90),
        ConstructorConfig::default().with_threshold(0.90),
    )
}

#[test]
fn all_six_workloads_stay_in_lockstep() {
    for w in all(Scale::Test) {
        let (bcfg, ccfg) = workload_configs();
        let mut ls = Lockstep::new(bcfg, ccfg);
        ls.run_program(&w.program, &w.args)
            .unwrap_or_else(|d| panic!("workload {}: {d}", w.name));
        assert!(
            ls.steps() > 1_000,
            "workload {} dispatched only {} blocks — not a meaningful run",
            w.name,
            ls.steps()
        );
    }
}

#[test]
fn fuzz_programs_stay_in_lockstep_256_cases() {
    // ChaosConfig::none() makes run_case a plain lockstep replay.
    let report = run_campaign(0x10C4_57E9, 256, &ChaosConfig::none(), None);
    if let Some((seed, d)) = report.failure {
        panic!(
            "fuzz lockstep diverged: seed {seed:#x} (case {}): {d}",
            report.cases - 1
        );
    }
    assert_eq!(report.cases, 256);
}

#[test]
fn chaos_campaign_on_clean_systems_is_silent() {
    let report = run_campaign(0xC4A0_5CA5, 48, &ChaosConfig::full(), None);
    if let Some((seed, d)) = report.failure {
        panic!("chaos campaign diverged on clean systems: seed {seed:#x}: {d}");
    }
}

#[test]
fn deferred_construction_campaign_is_silent() {
    // Plain lockstep replays, but with every signal batch constructed a
    // window of dispatches late — the single-threaded model of the
    // shared cache's off-thread constructor.
    let report = run_campaign(
        0xDEFE_44ED,
        48,
        &ChaosConfig::none().with_defer_window(32),
        None,
    );
    if let Some((seed, d)) = report.failure {
        panic!("deferred-construction campaign diverged: seed {seed:#x}: {d}");
    }
}

/// Regression trio for the queue-overload degradation path: a model
/// that forgets dropped batches (`Quirk::DroppedSignalsForgotten`) is
/// invisible to plain lockstep but must be caught once the campaign
/// drops batches, because the production profiler re-raises them at
/// decay cycles and the model then disagrees.
#[test]
fn queue_overload_chaos_catches_the_forgetful_model() {
    const BASE: u64 = 0xD40B_BA7C;
    const CASES: u64 = 64;
    let overload = ChaosConfig::only(Perturbation::QueueOverload);

    let plain = run_campaign(
        BASE,
        CASES,
        &ChaosConfig::none(),
        Some(Quirk::DroppedSignalsForgotten),
    );
    assert!(
        plain.failure.is_none(),
        "quirk should be invisible without dropped batches, but: {:?}",
        plain.failure
    );

    let caught = run_campaign(BASE, CASES, &overload, Some(Quirk::DroppedSignalsForgotten));
    let (seed, d) = caught
        .failure
        .expect("queue-overload campaign must expose the forgetful model");
    assert!(
        d.what.contains("signal batch mismatch") || d.what.contains("link"),
        "seed {seed:#x}: unexpected divergence field: {d}"
    );

    let clean = run_campaign(BASE, CASES, &overload, None);
    assert!(
        clean.failure.is_none(),
        "clean model must survive the identical drop schedule, but: {:?}",
        clean.failure
    );
}

/// Regression trio for "chaos catches what plain lockstep cannot": a
/// deliberately planted off-by-one in the model's *forced* decay prune
/// (`Quirk::ForcedDecayKeepsZeroEdges`).
#[test]
fn forced_decay_chaos_catches_the_planted_quirk() {
    const BASE: u64 = 0xDECA_FBAD;
    const CASES: u64 = 64;
    let forced = ChaosConfig::only(Perturbation::ForcedDecay);

    // (1) Without chaos, the quirk sits on a path plain lockstep never
    // takes: the same seeds replay silently.
    let plain = run_campaign(
        BASE,
        CASES,
        &ChaosConfig::none(),
        Some(Quirk::ForcedDecayKeepsZeroEdges),
    );
    assert!(
        plain.failure.is_none(),
        "quirk should be invisible without chaos, but: {:?}",
        plain.failure
    );

    // (2) Forced-decay chaos drives the quirky path and must catch it.
    let caught = run_campaign(BASE, CASES, &forced, Some(Quirk::ForcedDecayKeepsZeroEdges));
    let (seed, d) = caught
        .failure
        .expect("forced-decay campaign must expose the planted off-by-one");
    assert!(
        d.what.contains("successors") || d.what.contains("state") || d.what.contains("weight"),
        "seed {seed:#x}: unexpected divergence field: {d}"
    );

    // (3) The same chaos schedule over the clean model stays silent, so
    // the catch is the quirk's doing, not the harness's.
    let clean = run_campaign(BASE, CASES, &forced, None);
    assert!(
        clean.failure.is_none(),
        "clean model must survive the identical chaos schedule, but: {:?}",
        clean.failure
    );
}

#[test]
fn shrinker_minimises_a_failing_chaos_case() {
    // Find the first seed the quirk campaign fails on, then shrink its
    // program while preserving the failure.
    const BASE: u64 = 0xDECA_FBAD;
    let forced = ChaosConfig::only(Perturbation::ForcedDecay);
    let quirk = Some(Quirk::ForcedDecayKeepsZeroEdges);
    let report = run_campaign(BASE, 64, &forced, quirk);
    let (seed, _) = report.failure.expect("need a failing case to shrink");

    // Reproduce the original program, and a predicate that replays a
    // mutated AST under the same seed (the rng is advanced past the
    // generation draws so arguments and the chaos schedule stay as
    // aligned as the mutated program allows).
    let original = {
        let mut rng = Xoshiro256StarStar::new(seed);
        gen_block(&mut rng, 3, 1, 8)
    };
    let mut still_fails = |stmts: &[trace_conformance::genprog::Stmt]| {
        let mut rng = Xoshiro256StarStar::new(seed);
        let _ = gen_block(&mut rng, 3, 1, 8);
        run_case_on(stmts, &mut rng, &forced, quirk).is_err()
    };
    assert!(still_fails(&original), "seed {seed:#x} must reproduce");

    let minimal = shrink(&original, &mut still_fails);
    assert!(
        !minimal.is_empty() && minimal.len() <= original.len(),
        "seed {seed:#x}: shrink went wrong ({} -> {})",
        original.len(),
        minimal.len()
    );
    assert!(
        still_fails(&minimal),
        "seed {seed:#x}: minimised case no longer fails"
    );
}

#[test]
fn saved_corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/corpus");
    let mut cases = 0usize;
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus case");
        let case = parse_corpus_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        run_case(case.seed, &case.chaos, None).unwrap_or_else(|d| {
            panic!(
                "corpus case {} (seed {:#x}) diverged: {d}",
                path.display(),
                case.seed
            )
        });
        cases += 1;
    }
    assert!(cases >= 5, "expected the saved corpus, found {cases} cases");
}

#[test]
fn linked_traces_have_valid_side_exits() {
    use jvm_vm::decode::DecodedProgram;

    let mut checked = 0usize;
    for w in all(Scale::Test) {
        let (bcfg, ccfg) = campaign_configs();
        let mut ls = Lockstep::new(bcfg, ccfg);
        ls.run_program(&w.program, &w.args)
            .unwrap_or_else(|d| panic!("workload {}: {d}", w.name));

        let mut decoded = DecodedProgram::decode(&w.program);
        for (entry, trace) in ls.cache.iter_links() {
            // Some cached traces legitimately refuse compilation
            // (disconnected block pairs after invalidation); validity
            // applies to the ones the engine would actually run.
            let Ok(ct) = trace_exec::compile(&w.program, trace) else {
                continue;
            };
            let lt = trace_exec::lower_trace(&w.program, &mut decoded, &ct);
            trace_conformance::invariants::check_side_exits(&w.program, &decoded, &lt);
            let _ = entry;
            checked += 1;
        }
    }
    assert!(
        checked > 0,
        "no linked trace compiled — side-exit validity was never exercised"
    );
}

#[test]
fn fuzz_seed_stream_matches_workspace_convention() {
    // The suite's case seeds come from the shared seed_stream helper, so
    // a seed printed here can be replayed by any other harness.
    assert_eq!(seed_stream(0x10C4_57E9, 0), seed_stream(0x10C4_57E9, 0));
    assert_ne!(seed_stream(0x10C4_57E9, 0), seed_stream(0x10C4_57E9, 1));
}

/// Regression trio for the budget-eviction path: a model whose sweep
/// reclaims the victim trace but forgets to remove its entry link
/// (`Quirk::EvictionLeavesStaleLink`) is invisible until a campaign
/// applies budget pressure, at which point the stale link must show up
/// as a link-table divergence.
#[test]
fn budget_pressure_chaos_catches_the_stale_link_model() {
    const BASE: u64 = 0xB4D6_E7ED;
    const CASES: u64 = 64;
    let pressure = ChaosConfig::only(Perturbation::BudgetPressure);

    let plain = run_campaign(
        BASE,
        CASES,
        &ChaosConfig::none(),
        Some(Quirk::EvictionLeavesStaleLink),
    );
    assert!(
        plain.failure.is_none(),
        "quirk should be invisible without a budget, but: {:?}",
        plain.failure
    );

    let caught = run_campaign(BASE, CASES, &pressure, Some(Quirk::EvictionLeavesStaleLink));
    let (seed, d) = caught
        .failure
        .expect("budget-pressure campaign must expose the stale-link model");
    assert!(
        d.what.contains("link") || d.what.contains("payload"),
        "seed {seed:#x}: unexpected divergence field: {d}"
    );

    let clean = run_campaign(BASE, CASES, &pressure, None);
    assert!(
        clean.failure.is_none(),
        "clean model must survive the identical pressure schedule, but: {:?}",
        clean.failure
    );
}

/// Regression trio for the quarantine path: a model that tombstones a
/// faulting trace but forgets to blacklist its `(entry, path)` key
/// (`Quirk::QuarantineForgotten`) is invisible until a campaign
/// quarantines live traces; the missing blacklist entry (or the rebuild
/// the production cache refuses) must then diverge.
#[test]
fn quarantine_chaos_catches_the_forgetful_quarantine_model() {
    const BASE: u64 = 0x04A4_A27E;
    const CASES: u64 = 64;
    let quarantine = ChaosConfig::only(Perturbation::QuarantineTrace);

    let plain = run_campaign(
        BASE,
        CASES,
        &ChaosConfig::none(),
        Some(Quirk::QuarantineForgotten),
    );
    assert!(
        plain.failure.is_none(),
        "quirk should be invisible without quarantine chaos, but: {:?}",
        plain.failure
    );

    let caught = run_campaign(BASE, CASES, &quarantine, Some(Quirk::QuarantineForgotten));
    let (seed, d) = caught
        .failure
        .expect("quarantine campaign must expose the forgetful model");
    assert!(
        d.what.contains("quarantine") || d.what.contains("link") || d.what.contains("trace count"),
        "seed {seed:#x}: unexpected divergence field: {d}"
    );

    let clean = run_campaign(BASE, CASES, &quarantine, None);
    assert!(
        clean.failure.is_none(),
        "clean model must survive the identical quarantine schedule, but: {:?}",
        clean.failure
    );
}

/// The phase-shift workload family (the trace-health fixture: a hot
/// guard whose bias flips mid-run) must stay in lockstep like the six
/// paper workloads — the rotting branch is a behavior change, not a
/// profiling divergence.
#[test]
fn phase_shift_workloads_stay_in_lockstep() {
    use trace_workloads::registry;
    for w in [
        registry::phase_shift(Scale::Test),
        registry::phase_shift_early(Scale::Test),
        registry::phase_shift_late(Scale::Test),
    ] {
        let (bcfg, ccfg) = workload_configs();
        let mut ls = Lockstep::new(bcfg, ccfg);
        ls.run_program(&w.program, &w.args)
            .unwrap_or_else(|d| panic!("workload {}: {d}", w.name));
        assert!(
            ls.steps() > 1_000,
            "workload {} dispatched only {} blocks — not a meaningful run",
            w.name,
            ls.steps()
        );
    }
}

/// Regression trio for the trace-health path: a model whose health
/// epoch decides but never applies demotions
/// (`Quirk::RottenTraceKeptLinked`) is invisible to plain lockstep —
/// nothing feeds trace outcomes — but must be caught once the campaign
/// injects phase-shifted outcome bursts, because the production ladder
/// then demotes (unlink + tombstone + blacklist) while the model keeps
/// the rotten trace linked.
#[test]
fn phase_shift_chaos_catches_the_rotten_trace_model() {
    const BASE: u64 = 0x20AF_5417;
    const CASES: u64 = 64;
    let shift = ChaosConfig::only(Perturbation::PhaseShift);

    let plain = run_campaign(
        BASE,
        CASES,
        &ChaosConfig::none(),
        Some(Quirk::RottenTraceKeptLinked),
    );
    assert!(
        plain.failure.is_none(),
        "quirk should be invisible without phase-shift chaos, but: {:?}",
        plain.failure
    );

    let caught = run_campaign(BASE, CASES, &shift, Some(Quirk::RottenTraceKeptLinked));
    let (seed, d) = caught
        .failure
        .expect("phase-shift campaign must expose the rotten-trace model");
    assert!(
        d.what.contains("demotions") || d.what.contains("link") || d.what.contains("quarantine"),
        "seed {seed:#x}: unexpected divergence field: {d}"
    );

    let clean = run_campaign(BASE, CASES, &shift, None);
    assert!(
        clean.failure.is_none(),
        "clean model must survive the identical phase-shift schedule, but: {:?}",
        clean.failure
    );
}

#[test]
fn duplicate_batch_campaign_is_silent() {
    // Duplicated construction batches must be idempotent on both sides.
    let report = run_campaign(
        0xD0B1_BA7C,
        48,
        &ChaosConfig::only(Perturbation::DuplicateBatch),
        None,
    );
    if let Some((seed, d)) = report.failure {
        panic!("duplicate-batch campaign diverged: seed {seed:#x}: {d}");
    }
}

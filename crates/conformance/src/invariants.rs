//! Externally checkable invariants over the live structures.
//!
//! These checks use only public APIs, so they run in every build — the
//! `debug-invariants` feature additionally turns on the *in-situ*
//! asserts inside `trace-bcg` and `trace-cache` (checked on every hot
//! event, with access to private state). Each function panics with a
//! description of the violated paper rule; DESIGN.md ("Conformance
//! invariants") maps every invariant to the rule it encodes.

use jvm_bytecode::Program;
use jvm_vm::decode::DecodedProgram;
use trace_bcg::BranchCorrelationGraph;
use trace_cache::TraceCache;
use trace_exec::{LoweredTrace, XInstr};

/// Graph-wide counter and state-machine invariants (§3.3, §4.1.1):
/// counters bounded by the saturation limit, `total_weight` equal to the
/// successor-count sum, and hot states only on nodes with usable
/// statistics past the start delay.
pub fn check_graph(bcg: &BranchCorrelationGraph) {
    let cfg = bcg.config();
    for (idx, node) in bcg.iter() {
        let mut sum = 0u32;
        for s in node.successors() {
            assert!(
                s.count <= cfg.max_counter,
                "{idx}: counter {} exceeds the 16-bit saturation bound {}",
                s.count,
                cfg.max_counter
            );
            sum += u32::from(s.count);
        }
        assert_eq!(
            node.total_weight(),
            sum,
            "{idx}: total_weight out of sync with successor counters"
        );
        if node.state().is_hot() {
            assert!(
                node.executions() >= u64::from(cfg.start_delay),
                "{idx}: hot before the start-state delay ({} < {})",
                node.executions(),
                cfg.start_delay
            );
            assert!(
                node.total_weight() > 0,
                "{idx}: hot with no successor statistics"
            );
        }
        for &p in node.predecessors() {
            // Predecessor entries may be stale, but must stay in range.
            let _ = bcg.node(p);
        }
    }
}

/// Cache-side structural invariants (§4.2): every linked trace is
/// non-empty, entered at its first block, and carries a completion
/// estimate in `(0, 1]`.
pub fn check_cache_links(cache: &TraceCache) {
    for (entry, trace) in cache.iter_links() {
        assert!(!trace.blocks().is_empty(), "{entry:?}: empty linked trace");
        assert_eq!(
            entry.1,
            trace.blocks()[0],
            "{entry:?}: link does not land on the trace's first block"
        );
        let c = trace.expected_completion();
        assert!(
            c > 0.0 && c <= 1.0,
            "{entry:?}: completion estimate {c} outside (0, 1]"
        );
    }
}

/// Version-stamped trace-link coherence: any node whose inline
/// trace-link slot carries the cache's *current* version stamp must
/// agree — positively or negatively — with the authoritative entry
/// table. (Stale stamps are fine; they revalidate on first use.)
pub fn check_link_coherence(cache: &TraceCache, bcg: &BranchCorrelationGraph) {
    let version = cache.version();
    for (idx, node) in bcg.iter() {
        let (stamp, raw) = node.trace_link();
        if stamp != version {
            continue;
        }
        let table = cache.lookup_entry(node.branch());
        let slot = (raw != trace_bcg::node::NO_TRACE_LINK).then_some(raw as usize);
        assert_eq!(
            slot,
            table.map(|t| t.index()),
            "{idx}: current-version trace-link slot disagrees with the entry table"
        );
    }
}

/// Side-exit target validity: every guard's exit anchor in a lowered
/// trace must resume at an in-range decoded pc of its function, inside
/// the block the anchor names; every decoded jump target must be a block
/// entry marker. A violation would make a failing guard resume the
/// interpreter at a garbage pc — the exact class of bug trace execution
/// must never exhibit.
pub fn check_side_exits(program: &Program, decoded: &DecodedProgram, lt: &LoweredTrace) {
    let check_exit = |what: &str, e: &trace_exec::Exit| {
        assert!(
            (e.func.0 as usize) < decoded.funcs.len(),
            "{what}: exit names unknown function {:?}",
            e.func
        );
        let df = &decoded.funcs[e.func.0 as usize];
        assert!(
            (e.dpc as usize) < df.code.len(),
            "{what}: exit dpc {} out of range",
            e.dpc
        );
        assert_eq!(
            df.block_of[e.dpc as usize], e.block,
            "{what}: exit block does not contain the resume pc"
        );
        let nblocks = program.function(e.func).blocks().len() as u32;
        assert!(
            e.block < nblocks,
            "{what}: exit block {} out of range",
            e.block
        );
    };
    // Return continuations (`ret` on call guards) resume *mid-block* at
    // the decoded pc right after the call — in range, but not required
    // to be a block entry.
    let check_resume = |what: &str, func: jvm_bytecode::FuncId, t: u32| {
        let df = &decoded.funcs[func.0 as usize];
        assert!(
            (t as usize) < df.code.len(),
            "{what}: resume pc {t} out of range"
        );
    };
    let check_marker = |what: &str, func: jvm_bytecode::FuncId, t: u32| {
        let df = &decoded.funcs[func.0 as usize];
        assert!(
            (t as usize) < df.code.len(),
            "{what}: decoded target {t} out of range"
        );
        assert!(
            t == 0 || df.block_of[t as usize - 1] != df.block_of[t as usize],
            "{what}: decoded target {t} is not a block entry marker"
        );
    };

    // Exits anchor into the function owning each instruction. The
    // lowered stream switches functions at Enter/GuardVirtual (into the
    // callee) and GuardReturn (into the recorded continuation's
    // function — which may leave the trace's entry function, so a call
    // stack would not suffice); track the current function alongside
    // and require every guard's exit to anchor inside it.
    let mut cur = lt.src_blocks[0].func;
    for x in &lt.code {
        let check_exit_here = |what: &str, e: &trace_exec::Exit| {
            check_exit(what, e);
            assert_eq!(
                e.func, cur,
                "{what}: exit anchors in {:?} but the stream is executing {cur:?}",
                e.func
            );
        };
        match x {
            XInstr::Jump { target } => check_marker("jump", cur, *target),
            XInstr::GuardCond { target, exit, .. } => {
                check_exit_here("guard-cond", exit);
                check_marker("guard-cond", cur, *target);
            }
            XInstr::GuardSwitch {
                targets,
                default,
                expected,
                exit,
                ..
            } => {
                check_exit_here("guard-switch", exit);
                for &t in targets.iter() {
                    check_marker("guard-switch", cur, t);
                }
                check_marker("guard-switch-default", cur, *default);
                check_marker("guard-switch-expected", cur, *expected);
            }
            XInstr::EnterStatic { callee, ret } => {
                check_resume("enter-static-ret", cur, *ret);
                cur = *callee;
            }
            XInstr::GuardVirtual {
                expected,
                ret,
                exit,
                ..
            } => {
                check_exit_here("guard-virtual", exit);
                check_resume("guard-virtual-ret", cur, *ret);
                cur = *expected;
            }
            XInstr::GuardReturn { expected, exit, .. } => {
                check_exit_here("guard-return", exit);
                cur = expected.func;
            }
            XInstr::Finish { exit, .. } => check_exit_here("finish", exit),
            XInstr::Op(_) | XInstr::Fused(_) | XInstr::FallThrough => {}
        }
    }
}

//! Model-based conformance harness for the trace-cache workspace.
//!
//! The production profiler ([`trace_bcg`]) and trace cache
//! ([`trace_cache`]) are heavily engineered: budgeted fast paths,
//! deferred counter settlement, hash-consed trace objects, inline
//! version-stamped trace links. This crate re-derives the *naive*
//! semantics straight from the paper (Berndl & Hendren, CGO 2003) as an
//! executable model — allocation-happy, `HashMap`-keyed, no fast paths —
//! and checks the optimised systems against it in lockstep on every
//! dispatched block.
//!
//! Three layers:
//!
//! * [`model`] — the executable paper model: BCG node lifecycle with
//!   the 256-execution decay, start-state delay, completion-threshold
//!   signalling, plus a model trace constructor and cache. Supports
//!   deliberately planted [`model::Quirk`]s for testing the tester.
//! * [`lockstep`] + [`invariants`] — the comparison harness feeding
//!   both systems the same block stream and diffing node states,
//!   signals, caches, and links after every event; plus externally
//!   checkable structural invariants (and, under the
//!   `debug-invariants` feature, in-situ asserts inside the production
//!   crates).
//! * [`chaos`] + [`genprog`] — deterministic chaos campaigns replaying
//!   generated fuzz programs under injected perturbations (forced decay
//!   ticks, signal reordering, cache pressure, mid-trace invalidation,
//!   construction-queue overload, budget pressure, trace quarantine,
//!   duplicated batches), optionally under the harness's
//!   deferred-construction mode, with per-case seeds, AST shrinking of
//!   failures, and a saved corpus replayed in CI.
//! * [`faults`] — engine-level fault injection: a real [`trace_exec`]
//!   shared deployment (budgeted cache + supervised constructor) driven
//!   under a deterministic [`trace_cache::FaultPlan`], with the plain
//!   interpreter as the result oracle.
//! * [`snapshot`] — hostile-input conformance for the persistence
//!   boundary: a seeded mutation campaign (bit flips, truncations,
//!   section swaps, length-field rewrites) over valid snapshot
//!   containers, plus a warm-boot semantic oracle. The planted
//!   [`Quirk::StaleSnapshotAccepted`] proves the campaign catches a
//!   reader that silently accepts cross-program snapshots.

pub mod chaos;
pub mod faults;
pub mod genprog;
pub mod invariants;
pub mod lockstep;
pub mod model;
pub mod snapshot;

pub use chaos::{run_campaign, run_case, ChaosConfig, CorpusCase, Perturbation};
pub use faults::{run_fault_case, FaultCaseReport};
pub use lockstep::{Divergence, Lockstep};
pub use model::{ModelBcg, Quirk};
pub use snapshot::{
    must_reject, reader_with_quirk, run_snapshot_campaign, run_warm_boot_case, stale_hash_mutants,
    CampaignReport, Mutation, WarmBootCaseReport,
};

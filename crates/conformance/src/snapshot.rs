//! Hostile-input conformance for the snapshot container.
//!
//! The chaos campaigns attack the profiling pipeline and the fault
//! campaigns attack the execution deployment; this module attacks the
//! **persistence boundary**: the versioned, checksummed snapshot
//! container (`trace-persist`) that carries a warmed profile and trace
//! cache across processes. A snapshot file arrives from outside the
//! process, so the decoder must be total — any mutation of valid bytes
//! yields a clean [`SnapshotError`], never a panic and never a silently
//! accepted corrupt state.
//!
//! [`run_snapshot_campaign`] makes that an executable contract: a
//! seeded mutation campaign (bit flips, truncations, section swaps,
//! length-field rewrites) over a valid snapshot, with every mutant fed
//! to the reader under `catch_unwind`. A correct reader rejects every
//! mutant that differs from the original bytes; the campaign counts
//! panics and silent acceptances, and the suite asserts both are zero.
//!
//! To prove the campaign can actually catch a silent acceptance, the
//! planted [`Quirk::StaleSnapshotAccepted`](crate::model::Quirk) wires
//! in [`SnapshotReader::skipping_program_hash`] — a reader whose
//! staleness check is disabled. Under that quirk, mutants that only
//! touch the header's program-hash field decode successfully, and the
//! campaign's `silently_accepted` counter goes positive. Only this
//! campaign can expose that bug: every other suite reads snapshots it
//! wrote itself, where the hash always matches.
//!
//! [`run_warm_boot_case`] is the companion semantic oracle: a VM booted
//! from a snapshot must produce the plain interpreter's result,
//! checksum, and instruction count exactly — a warm cache may change
//! *speed*, never *meaning*.

use std::panic::{catch_unwind, AssertUnwindSafe};

use jvm_bytecode::Program;
use jvm_vm::{NullObserver, Value, Vm};
use trace_exec::{EngineConfig, TracingVm, WarmBootReport};
use trace_persist::{SnapshotError, SnapshotReader};
use trace_workloads::prng::Xoshiro256StarStar;

/// Header size of the snapshot container: magic(8) + version(4) +
/// flags(4) + program hash(8). Kept in sync with `trace-persist` by
/// [`section_spans`], which re-walks the real layout and is verified
/// against freshly written snapshots in the tests.
pub const HEADER_LEN: usize = 24;

/// Byte offset of the program-hash field inside the header.
pub const PROGRAM_HASH_OFFSET: usize = 16;

/// One mutation strategy of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip one random bit of one random byte (header included).
    BitFlip,
    /// Truncate the container at a random length.
    Truncate,
    /// Swap two whole section envelopes (tag + length + payload + CRC).
    SectionSwap,
    /// Rewrite a section's 8-byte length field with a random value.
    LengthField,
}

const MUTATIONS: [Mutation; 4] = [
    Mutation::BitFlip,
    Mutation::Truncate,
    Mutation::SectionSwap,
    Mutation::LengthField,
];

/// What one hostile-input campaign observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Mutants generated and fed to the reader.
    pub mutants_run: usize,
    /// Mutants rejected with a clean [`SnapshotError`].
    pub rejected: usize,
    /// Mutants that decoded successfully despite differing from the
    /// valid bytes. Zero for a correct reader.
    pub silently_accepted: usize,
    /// Mutants whose decode panicked. Zero for a correct reader.
    pub panics: usize,
    /// Mutants that happened to reproduce the original bytes (possible
    /// for section swaps of identical sections) — skipped, not counted
    /// against the reader.
    pub identical_skipped: usize,
}

impl CampaignReport {
    /// The campaign's pass condition for a correct reader.
    pub fn is_clean(&self) -> bool {
        self.panics == 0 && self.silently_accepted == 0
    }
}

/// Walks the container layout and returns each section's byte span
/// (envelope included), or `None` if the bytes do not parse as a
/// well-formed sequence of sections. Mirrors the `trace-persist` layout
/// so the campaign can aim structure-aware mutations.
pub fn section_spans(bytes: &[u8]) -> Option<Vec<std::ops::Range<usize>>> {
    let mut spans = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        // tag:u32 len:u64 payload crc:u32
        let len_bytes: [u8; 8] = bytes.get(pos + 4..pos + 12)?.try_into().ok()?;
        let payload_len = u64::from_le_bytes(len_bytes) as usize;
        let end = pos.checked_add(16)?.checked_add(payload_len)?;
        if end > bytes.len() {
            return None;
        }
        spans.push(pos..end);
        pos = end;
    }
    Some(spans)
}

/// Generates mutant `k` of the campaign rooted at `seed`. Returns the
/// mutant bytes and the strategy used. Deterministic in `(seed, k,
/// valid)`.
pub fn mutate(valid: &[u8], seed: u64, k: u64) -> (Vec<u8>, Mutation) {
    let mut rng = Xoshiro256StarStar::new(trace_workloads::prng::seed_stream(seed, k));
    let kind = *rng.pick(&MUTATIONS);
    let mut m = valid.to_vec();
    match kind {
        Mutation::BitFlip => {
            let i = rng.range_usize(0, m.len());
            m[i] ^= 1 << rng.range_u32(0, 8);
        }
        Mutation::Truncate => {
            m.truncate(rng.range_usize(0, m.len()));
        }
        Mutation::SectionSwap => {
            match section_spans(valid) {
                Some(spans) if spans.len() >= 2 => {
                    let a = rng.range_usize(0, spans.len());
                    let mut b = rng.range_usize(0, spans.len() - 1);
                    if b >= a {
                        b += 1;
                    }
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    let mut swapped = valid[..spans[lo].start].to_vec();
                    swapped.extend_from_slice(&valid[spans[hi].clone()]);
                    swapped.extend_from_slice(&valid[spans[lo].end..spans[hi].start]);
                    swapped.extend_from_slice(&valid[spans[lo].clone()]);
                    swapped.extend_from_slice(&valid[spans[hi].end..]);
                    m = swapped;
                }
                // No two sections to swap (shouldn't happen for real
                // snapshots): degrade to a bit flip.
                _ => {
                    let i = rng.range_usize(0, m.len());
                    m[i] ^= 1 << rng.range_u32(0, 8);
                }
            }
        }
        Mutation::LengthField => match section_spans(valid) {
            Some(spans) if !spans.is_empty() => {
                let s = &spans[rng.range_usize(0, spans.len())];
                let len_at = s.start + 4;
                // Mix small off-by deltas with wild values: both classes
                // of hostile length field must be rejected.
                let cur = u64::from_le_bytes(valid[len_at..len_at + 8].try_into().unwrap());
                let new = match rng.range_u32(0, 4) {
                    0 => cur.wrapping_add(1),
                    1 => cur.wrapping_sub(1),
                    2 => cur.wrapping_add(rng.next_below(1 << 20)),
                    _ => rng.next_u64(),
                };
                m[len_at..len_at + 8].copy_from_slice(&new.to_le_bytes());
            }
            _ => {
                let i = rng.range_usize(0, m.len());
                m[i] ^= 1 << rng.range_u32(0, 8);
            }
        },
    }
    (m, kind)
}

/// Runs a seeded hostile-input campaign: `mutants` mutations of
/// `valid`, each decoded by `reader` under `catch_unwind`. The decoder
/// contract says every mutant that differs from the valid bytes must
/// yield `Err(SnapshotError)`; [`CampaignReport::is_clean`] checks it.
pub fn run_snapshot_campaign(
    valid: &[u8],
    expected_program_hash: u64,
    reader: &SnapshotReader,
    seed: u64,
    mutants: usize,
) -> CampaignReport {
    let mut report = CampaignReport::default();
    for k in 0..mutants {
        let (mutant, _kind) = mutate(valid, seed, k as u64);
        if mutant == valid {
            report.identical_skipped += 1;
            continue;
        }
        report.mutants_run += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            reader.read(&mutant, expected_program_hash)
        }));
        match outcome {
            Ok(Ok(_)) => report.silently_accepted += 1,
            Ok(Err(_)) => report.rejected += 1,
            Err(_) => report.panics += 1,
        }
    }
    report
}

/// What one warm-boot oracle case observed.
#[derive(Debug, Clone, Copy)]
pub struct WarmBootCaseReport {
    /// What the boot restored and pre-built.
    pub boot: WarmBootReport,
    /// Block dispatches paid before the warm run's first trace entry
    /// (`0` = the run never entered a trace).
    pub warm_first_entry_dispatch: u64,
    /// Same marker for the cold VM that wrote the snapshot.
    pub cold_first_entry_dispatch: u64,
}

/// Warms a private [`TracingVm`] on `(program, args)`, snapshots it,
/// boots a fresh VM from the snapshot, and checks the booted VM's run
/// against the plain interpreter: result, observation checksum, and
/// executed instruction count must match exactly (the engine is
/// semantically transparent, warm cache or not).
///
/// # Errors
///
/// A human-readable description of the first divergence.
pub fn run_warm_boot_case(
    program: &Program,
    args: &[Value],
    config: EngineConfig,
) -> Result<WarmBootCaseReport, String> {
    let mut plain = Vm::new(program);
    let want = plain
        .run(args, &mut NullObserver)
        .map_err(|e| format!("interpreter failed: {e:?}"))?;
    let want_checksum = plain.checksum();

    let mut warm = TracingVm::new(program, config);
    let cold_report = warm
        .run(args)
        .map_err(|e| format!("warming run failed: {e:?}"))?;
    let bytes = warm.snapshot();

    let mut booted = TracingVm::new(program, config);
    let boot = booted
        .load_snapshot(&bytes)
        .map_err(|e| format!("own snapshot must load: {e}"))?;
    let got = booted
        .run(args)
        .map_err(|e| format!("warm-booted run failed: {e:?}"))?;
    if got.result != want {
        return Err(format!(
            "warm-booted result {:?} diverged from interpreter {want:?}",
            got.result
        ));
    }
    if got.checksum != want_checksum {
        return Err(format!(
            "warm-booted checksum {:#x} diverged from interpreter {want_checksum:#x}",
            got.checksum
        ));
    }
    if got.exec.instructions != plain.stats().instructions {
        return Err(format!(
            "warm-booted instruction count {} diverged from interpreter {}",
            got.exec.instructions,
            plain.stats().instructions
        ));
    }
    Ok(WarmBootCaseReport {
        boot,
        warm_first_entry_dispatch: got.traces.first_entry_dispatch,
        cold_first_entry_dispatch: cold_report.traces.first_entry_dispatch,
    })
}

/// A reader as configured by an (optional) planted quirk: the strict
/// production reader normally, or the hash-check-skipping reader under
/// [`Quirk::StaleSnapshotAccepted`](crate::model::Quirk).
pub fn reader_with_quirk(quirk: Option<crate::model::Quirk>) -> SnapshotReader {
    match quirk {
        Some(crate::model::Quirk::StaleSnapshotAccepted) => SnapshotReader::skipping_program_hash(),
        _ => SnapshotReader::new(),
    }
}

/// Mutants that rewrite only the header's program-hash field: the
/// regression trio feeding the planted-quirk test. Each differs from
/// `valid` in exactly the hash bytes, so the *only* check standing
/// between them and acceptance is the staleness check.
pub fn stale_hash_mutants(valid: &[u8], seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..3)
        .map(|_| {
            let mut m = valid.to_vec();
            let hash = &mut m[PROGRAM_HASH_OFFSET..PROGRAM_HASH_OFFSET + 8];
            let cur = u64::from_le_bytes(hash.try_into().unwrap());
            let mut new = rng.next_u64();
            if new == cur {
                new = new.wrapping_add(1);
            }
            hash.copy_from_slice(&new.to_le_bytes());
            m
        })
        .collect()
}

/// Convenience: asserts the reader rejects `bytes` without panicking,
/// returning the error.
pub fn must_reject(
    reader: &SnapshotReader,
    bytes: &[u8],
    expected_program_hash: u64,
) -> Result<SnapshotError, String> {
    match catch_unwind(AssertUnwindSafe(|| {
        reader.read(bytes, expected_program_hash)
    })) {
        Ok(Err(e)) => Ok(e),
        Ok(Ok(_)) => Err("reader accepted bytes it must reject".into()),
        Err(_) => Err("reader panicked".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_workloads::registry::{all, Scale};

    fn warmed_snapshot() -> (Vec<u8>, u64) {
        let w = &all(Scale::Test)[0];
        let mut vm = TracingVm::new(&w.program, crate::faults::fault_campaign_config());
        vm.run(&w.args).expect("warming run");
        let hash = trace_persist::program_hash(&w.program);
        (vm.snapshot(), hash)
    }

    #[test]
    fn section_spans_walk_real_snapshots() {
        let (bytes, _) = warmed_snapshot();
        let spans = section_spans(&bytes).expect("valid snapshot must walk");
        assert_eq!(spans.len(), 3, "bcg + cache + quarantine");
        assert_eq!(spans[0].start, HEADER_LEN);
        assert_eq!(spans[2].end, bytes.len());
    }

    #[test]
    fn strict_reader_survives_a_small_campaign() {
        let (bytes, hash) = warmed_snapshot();
        let report = run_snapshot_campaign(&bytes, hash, &SnapshotReader::new(), 0xBAD5EED, 64);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.rejected, report.mutants_run);
    }

    #[test]
    fn planted_stale_quirk_is_caught_by_hash_mutants() {
        let (bytes, hash) = warmed_snapshot();
        let quirky = reader_with_quirk(Some(crate::model::Quirk::StaleSnapshotAccepted));
        let mut accepted = 0;
        for m in stale_hash_mutants(&bytes, 0x5A1E) {
            // The strict reader rejects every one...
            assert!(matches!(
                must_reject(&SnapshotReader::new(), &m, hash),
                Ok(SnapshotError::StaleProgram { .. })
            ));
            // ...the quirky reader lets every one through.
            if quirky.read(&m, hash).is_ok() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 3, "quirk must silently accept all three");
    }

    #[test]
    fn warm_boot_oracle_matches_interpreter() {
        let w = &all(Scale::Test)[0];
        let report =
            run_warm_boot_case(&w.program, &w.args, crate::faults::fault_campaign_config())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(report.boot.links_installed > 0);
    }
}

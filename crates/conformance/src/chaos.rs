//! Deterministic chaos campaigns.
//!
//! A campaign replays generated fuzz programs through the lockstep
//! harness while injecting perturbations the normal dispatch stream
//! would produce only rarely, at positions drawn from a per-case seeded
//! PRNG:
//!
//! * **forced decay ticks** — a node is decayed *now*, off its
//!   256-execution schedule, on both systems;
//! * **signal reordering** — one batch is rotated (identically on both
//!   sides) before the constructors see it;
//! * **cache-capacity pressure** — when the link table exceeds a small
//!   cap, deterministic victims are unlinked from both caches;
//! * **mid-trace invalidation** — a live entry link is removed from both
//!   caches while the program is still running;
//! * **queue overload** — a signal batch is dropped on both sides (the
//!   full-construction-queue degradation path) and must re-raise at the
//!   next decay cycle;
//! * **phase shift** — the trace at one live entry "rots": a burst of
//!   mostly-side-exit dispatch outcomes lands in both health ledgers
//!   and a health epoch follows, so the demotion ladder (probation,
//!   streak demotion, cooldown hysteresis) must walk identically on
//!   both sides.
//!
//! Campaigns can additionally run the whole case in the lockstep
//! harness's deferred-construction mode ([`ChaosConfig::defer_window`]),
//! modelling off-thread construction lag.
//!
//! Every case is identified by `seed_stream(base, k)`, so a failure
//! message names one `u64` that reproduces program, arguments, and the
//! entire perturbation schedule. A failing case is then minimised by
//! shrinking its statement AST (see [`shrink`]).

use trace_bcg::BcgConfig;
use trace_cache::{trace_cost, ConstructorConfig, FaultConfig, TraceOutcome};
use trace_workloads::prng::{seed_stream, Xoshiro256StarStar};

use crate::genprog::{args_from, build_program, gen_block, Stmt};
use crate::lockstep::{Divergence, Lockstep};
use crate::model::Quirk;

/// One perturbation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// Decay a random known node immediately, off schedule.
    ForcedDecay,
    /// Rotate the next signal batch before the constructors see it.
    SignalReorder,
    /// Unlink deterministic victims once the link table exceeds the cap.
    CachePressure,
    /// Unlink one live entry mid-run.
    MidTraceInvalidation,
    /// Drop the next signal batch back to both profilers (construction
    /// queue full), exercising the decay-cycle re-raise.
    QueueOverload,
    /// Set (or shrink) a payload byte budget on both caches, forcing the
    /// second-chance eviction sweep to pick identical victims.
    BudgetPressure,
    /// Quarantine the trace linked at one live entry on both caches
    /// (a faulting trace), exercising tombstone + blacklist parity.
    QuarantineTrace,
    /// Feed the next signal batch to both constructors twice (duplicated
    /// queue delivery); hash-consing must make the replay idempotent.
    DuplicateBatch,
    /// Rot the trace at one live entry: record a mostly-side-exit
    /// outcome burst into both health ledgers, then run a health epoch,
    /// exercising the whole demotion ladder in lockstep.
    PhaseShift,
}

impl Perturbation {
    /// Every class, for full-coverage campaigns.
    pub const ALL: [Perturbation; 9] = [
        Perturbation::ForcedDecay,
        Perturbation::SignalReorder,
        Perturbation::CachePressure,
        Perturbation::MidTraceInvalidation,
        Perturbation::QueueOverload,
        Perturbation::BudgetPressure,
        Perturbation::QuarantineTrace,
        Perturbation::DuplicateBatch,
        Perturbation::PhaseShift,
    ];

    /// Stable name, used by the corpus format.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::ForcedDecay => "forced-decay",
            Perturbation::SignalReorder => "signal-reorder",
            Perturbation::CachePressure => "cache-pressure",
            Perturbation::MidTraceInvalidation => "mid-trace-invalidation",
            Perturbation::QueueOverload => "queue-overload",
            Perturbation::BudgetPressure => "budget-pressure",
            Perturbation::QuarantineTrace => "quarantine-trace",
            Perturbation::DuplicateBatch => "duplicate-batch",
            Perturbation::PhaseShift => "phase-shift",
        }
    }

    /// Parses a stable name back.
    pub fn from_name(s: &str) -> Option<Self> {
        Perturbation::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Chaos knobs for one case.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Enabled perturbation classes (empty = plain lockstep).
    pub kinds: Vec<Perturbation>,
    /// Per-dispatch probability of injecting a perturbation.
    pub rate: f64,
    /// Link-count cap for [`Perturbation::CachePressure`].
    pub cache_cap: usize,
    /// Deferred-construction window for the whole case (0 = construct
    /// immediately; see [`Lockstep::with_deferred_construction`]).
    pub defer_window: u64,
}

impl ChaosConfig {
    /// No perturbations: plain lockstep conformance.
    pub fn none() -> Self {
        ChaosConfig {
            kinds: Vec::new(),
            rate: 0.0,
            cache_cap: usize::MAX,
            defer_window: 0,
        }
    }

    /// All perturbation classes at a lively rate, with construction
    /// deferred by a small window on top.
    pub fn full() -> Self {
        ChaosConfig {
            kinds: Perturbation::ALL.to_vec(),
            rate: 0.02,
            cache_cap: 4,
            defer_window: 24,
        }
    }

    /// One specific class only.
    pub fn only(kind: Perturbation) -> Self {
        ChaosConfig {
            kinds: vec![kind],
            rate: 0.05,
            cache_cap: 4,
            defer_window: 0,
        }
    }

    /// Sets the deferred-construction window.
    pub fn with_defer_window(mut self, window: u64) -> Self {
        self.defer_window = window;
        self
    }
}

/// Aggressive profiler/constructor tunables for campaigns: short delay,
/// loose threshold, quick decay — maximum machinery per dispatched block.
pub fn campaign_configs() -> (BcgConfig, ConstructorConfig) {
    let bcg = BcgConfig {
        decay_interval: 64,
        ..BcgConfig::default()
            .with_start_delay(2)
            .with_threshold(0.90)
    };
    let ctor = ConstructorConfig::default().with_threshold(0.90);
    (bcg, ctor)
}

/// Runs one case: generates the program from `seed`, replays it through
/// the lockstep harness under the chaos schedule, and reports any
/// divergence. Fully deterministic in `(seed, chaos, quirk)`.
pub fn run_case(seed: u64, chaos: &ChaosConfig, quirk: Option<Quirk>) -> Result<(), Divergence> {
    let mut rng = Xoshiro256StarStar::new(seed);
    let stmts = gen_block(&mut rng, 3, 1, 8);
    run_case_on(&stmts, &mut rng, chaos, quirk)
}

/// Replays a specific statement list (used by the shrinker, which must
/// re-run a case on mutated ASTs). `rng` must already be past the
/// generation draws so the argument and schedule streams line up with
/// the original failure as closely as the mutated program allows.
pub fn run_case_on(
    stmts: &[Stmt],
    rng: &mut Xoshiro256StarStar,
    chaos: &ChaosConfig,
    quirk: Option<Quirk>,
) -> Result<(), Divergence> {
    let program = build_program(stmts);
    let args = args_from(rng.next_i64());
    let (bcg_cfg, ctor_cfg) = campaign_configs();
    let mut ls = Lockstep::new(bcg_cfg, ctor_cfg);
    if chaos.defer_window > 0 {
        ls = ls.with_deferred_construction(chaos.defer_window);
    }
    if let Some(q) = quirk {
        ls = ls.with_model_quirk(q);
    }

    let mut vm = jvm_vm::interp::Vm::new(&program);
    let mut outcome: Result<(), Divergence> = Ok(());
    {
        let mut observer = |b: jvm_bytecode::BlockId| {
            if outcome.is_err() {
                return;
            }
            if let Err(d) = ls.on_block(b) {
                outcome = Err(d);
                return;
            }
            if !chaos.kinds.is_empty() && rng.chance(chaos.rate) {
                let kind = *rng.pick(&chaos.kinds);
                if let Err(d) = inject(&mut ls, kind, rng, chaos) {
                    outcome = Err(d);
                }
            }
        };
        vm.run(&args, &mut observer)
            .expect("generated program runs");
    }
    outcome?;
    ls.finish()
}

/// Applies one perturbation to both systems.
fn inject(
    ls: &mut Lockstep,
    kind: Perturbation,
    rng: &mut Xoshiro256StarStar,
    chaos: &ChaosConfig,
) -> Result<(), Divergence> {
    match kind {
        Perturbation::ForcedDecay => {
            let branches = ls.known_branches();
            if !branches.is_empty() {
                let b = branches[rng.range_usize(0, branches.len())];
                ls.force_decay(b)?;
            }
        }
        Perturbation::SignalReorder => {
            ls.rotate_next_batch(rng.range_usize(1, 8));
        }
        Perturbation::CachePressure => {
            let entries = ls.linked_entries();
            if entries.len() > chaos.cache_cap {
                let excess = entries.len() - chaos.cache_cap;
                let start = rng.range_usize(0, entries.len());
                for k in 0..excess {
                    ls.unlink(entries[(start + k) % entries.len()])?;
                }
            }
        }
        Perturbation::MidTraceInvalidation => {
            let entries = ls.linked_entries();
            if !entries.is_empty() {
                ls.unlink(entries[rng.range_usize(0, entries.len())])?;
            }
        }
        Perturbation::QueueOverload => {
            ls.drop_next_batch();
        }
        Perturbation::BudgetPressure => {
            // A budget of a few two-block traces, drawn small enough to
            // force evictions as the constructors keep building.
            let traces = rng.range_usize(2, chaos.cache_cap.clamp(3, 16) + 2);
            ls.set_cache_budget(trace_cost(2) * traces)?;
        }
        Perturbation::QuarantineTrace => {
            let entries = ls.linked_entries();
            if !entries.is_empty() {
                let e = entries[rng.range_usize(0, entries.len())];
                ls.quarantine(e, rng.range_u32(1, 4))?;
            }
        }
        Perturbation::DuplicateBatch => {
            ls.duplicate_next_batch();
        }
        Perturbation::PhaseShift => {
            // The trace at one live entry "rots" — its guard bias has
            // flipped — so a burst of side exits (with a few
            // completions mixed in) lands in both health ledgers, and
            // the epoch that follows walks the demotion ladder on both
            // sides. Exit counts straddle the streak limit (16) and
            // the completion rate sits far under the probation
            // threshold, so campaigns exercise streak demotions,
            // probation, second-epoch demotions, and (on repeat picks
            // of the same entry) cooldown hysteresis.
            let entries = ls.linked_entries();
            if !entries.is_empty() {
                let e = entries[rng.range_usize(0, entries.len())];
                let completions = rng.range_u32(0, 3);
                let exits = rng.range_u32(12, 20);
                let mut outcomes = Vec::with_capacity((completions + exits) as usize);
                for _ in 0..completions {
                    outcomes.push(TraceOutcome::Completed);
                }
                for _ in 0..exits {
                    outcomes.push(TraceOutcome::SideExit {
                        site: rng.range_u32(0, 4),
                    });
                }
                ls.record_trace_outcomes(e, &outcomes)?;
                ls.health_epoch()?;
            }
        }
    }
    Ok(())
}

/// A campaign's outcome.
#[derive(Debug)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: u64,
    /// First failure: the per-case seed and the divergence.
    pub failure: Option<(u64, Divergence)>,
}

/// Runs `cases` chaos cases rooted at `base_seed`; stops at the first
/// divergence (deterministic, so one failure is enough to reproduce).
pub fn run_campaign(
    base_seed: u64,
    cases: u64,
    chaos: &ChaosConfig,
    quirk: Option<Quirk>,
) -> CampaignReport {
    for k in 0..cases {
        let seed = seed_stream(base_seed, k);
        if let Err(d) = run_case(seed, chaos, quirk) {
            return CampaignReport {
                cases: k + 1,
                failure: Some((seed, d)),
            };
        }
    }
    CampaignReport {
        cases,
        failure: None,
    }
}

/// Greedy AST minimisation of a failing case: repeatedly try deleting a
/// statement or hoisting a compound statement's body into its place,
/// keeping any mutation under which the case still fails. Deterministic;
/// terminates because every accepted mutation strictly shrinks the AST's
/// node count.
pub fn shrink<F: FnMut(&[Stmt]) -> bool>(stmts: &[Stmt], still_fails: &mut F) -> Vec<Stmt> {
    fn weight(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then, other, .. } => 1 + weight(then) + weight(other),
                Stmt::Loop { body, .. } => 1 + weight(body),
                _ => 1,
            })
            .sum()
    }

    let mut cur = stmts.to_vec();
    loop {
        let mut progressed = false;
        // Pass 1: drop one statement at a time.
        let mut i = 0;
        while i < cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                cur = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        // Pass 2: hoist compound bodies in place of their parent.
        let mut i = 0;
        while i < cur.len() {
            let replacement: Option<Vec<Stmt>> = match &cur[i] {
                Stmt::If { then, other, .. } => {
                    let mut r = then.clone();
                    r.extend(other.iter().cloned());
                    Some(r)
                }
                Stmt::Loop { body, .. } => Some(body.clone()),
                _ => None,
            };
            if let Some(r) = replacement {
                let mut candidate = cur.clone();
                candidate.splice(i..=i, r);
                if weight(&candidate) < weight(&cur) && still_fails(&candidate) {
                    cur = candidate;
                    progressed = true;
                    continue;
                }
            }
            i += 1;
        }
        if !progressed {
            return cur;
        }
    }
}

/// A corpus entry: one saved chaos case, replayed by CI.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// The exact case seed (program + arguments + schedule).
    pub seed: u64,
    /// Enabled perturbation classes.
    pub chaos: ChaosConfig,
    /// Engine-level fault-injection profile and its plan seed, if the
    /// case also runs through the execution-engine fault harness
    /// (`faults=` / `fault_seed=` keys).
    pub faults: Option<(FaultConfig, u64)>,
}

/// Parses the `key=value`-per-line corpus format:
///
/// ```text
/// # comment
/// seed=0x1234abcd
/// chaos=forced-decay,mid-trace-invalidation
/// rate=0.05
/// cache_cap=4
/// defer_window=24
/// faults=standard
/// fault_seed=0x5eed
/// ```
pub fn parse_corpus_case(text: &str) -> Result<CorpusCase, String> {
    let mut seed = None;
    let mut chaos = ChaosConfig::none();
    let mut fault_profile: Option<FaultConfig> = None;
    let mut fault_seed: Option<u64> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed corpus line: {line}"))?;
        match key.trim() {
            "seed" => {
                // Underscore group separators are allowed, as in Rust literals.
                let v = value.trim().replace('_', "");
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                seed = Some(parsed.map_err(|e| format!("bad seed {v}: {e}"))?);
            }
            "chaos" => {
                chaos.kinds = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty() && *s != "none")
                    .map(|s| {
                        Perturbation::from_name(s)
                            .ok_or_else(|| format!("unknown perturbation {s}"))
                    })
                    .collect::<Result<_, _>>()?;
                if !chaos.kinds.is_empty() && chaos.rate == 0.0 {
                    chaos.rate = 0.05;
                    chaos.cache_cap = 4;
                }
            }
            "rate" => {
                chaos.rate = value.trim().parse().map_err(|e| format!("bad rate: {e}"))?;
            }
            "cache_cap" => {
                chaos.cache_cap = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad cache_cap: {e}"))?;
            }
            "defer_window" => {
                chaos.defer_window = value
                    .trim()
                    .parse()
                    .map_err(|e| format!("bad defer_window: {e}"))?;
            }
            "faults" => {
                fault_profile = match value.trim() {
                    "none" => None,
                    "standard" => Some(FaultConfig::standard()),
                    "constructor-killer" => Some(FaultConfig::constructor_killer()),
                    other => return Err(format!("unknown fault profile {other}")),
                };
            }
            "fault_seed" => {
                let v = value.trim().replace('_', "");
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                fault_seed = Some(parsed.map_err(|e| format!("bad fault_seed {v}: {e}"))?);
            }
            other => return Err(format!("unknown corpus key {other}")),
        }
    }
    let seed = seed.ok_or("corpus case missing seed=")?;
    let faults = match fault_profile {
        // The fault plan seed defaults to the case seed.
        Some(cfg) => Some((cfg, fault_seed.unwrap_or(seed))),
        None if fault_seed.is_some() => return Err("fault_seed= given without faults=".to_string()),
        None => None,
    };
    Ok(CorpusCase {
        seed,
        chaos,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_format_round_trips() {
        let c = parse_corpus_case(
            "# demo\nseed=0xABCD\nchaos=forced-decay, signal-reorder\nrate=0.1\ncache_cap=3\ndefer_window=16\n",
        )
        .expect("parses");
        assert_eq!(c.seed, 0xABCD);
        assert_eq!(
            c.chaos.kinds,
            vec![Perturbation::ForcedDecay, Perturbation::SignalReorder]
        );
        assert!((c.chaos.rate - 0.1).abs() < 1e-12);
        assert_eq!(c.chaos.cache_cap, 3);
        assert_eq!(c.chaos.defer_window, 16);
        assert!(parse_corpus_case("seed=1\nchaos=queue-overload\n").is_ok());
        assert!(parse_corpus_case("chaos=forced-decay\n").is_err());
        assert!(parse_corpus_case("seed=1\nchaos=warp-core-breach\n").is_err());
        assert!(parse_corpus_case(
            "seed=1\nchaos=budget-pressure,quarantine-trace,duplicate-batch,phase-shift\n"
        )
        .is_ok());

        // Engine-level fault keys.
        let f = parse_corpus_case("seed=7\nfaults=standard\nfault_seed=0x5eed\n").expect("parses");
        assert_eq!(f.faults, Some((FaultConfig::standard(), 0x5eed)));
        let f = parse_corpus_case("seed=7\nfaults=constructor-killer\n").expect("parses");
        assert_eq!(f.faults, Some((FaultConfig::constructor_killer(), 7)));
        assert!(parse_corpus_case("seed=7\nfaults=gamma-ray\n").is_err());
        assert!(parse_corpus_case("seed=7\nfault_seed=3\n").is_err());
    }

    #[test]
    fn shrinker_reaches_a_small_reproducer() {
        // Failure predicate: "contains an Emit of local 2 anywhere".
        fn has_emit2(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Emit { a } => *a == 2,
                Stmt::If { then, other, .. } => has_emit2(then) || has_emit2(other),
                Stmt::Loop { body, .. } => has_emit2(body),
                _ => false,
            })
        }
        let noisy = vec![
            Stmt::Const { d: 0, c: 7 },
            Stmt::Loop {
                n: 3,
                body: vec![
                    Stmt::Arith {
                        d: 1,
                        a: 0,
                        b: 0,
                        op: 0,
                    },
                    Stmt::If {
                        a: 0,
                        b: 1,
                        cmp: 0,
                        then: vec![Stmt::Emit { a: 2 }],
                        other: vec![Stmt::Const { d: 3, c: 1 }],
                    },
                ],
            },
            Stmt::Emit { a: 0 },
        ];
        let minimal = shrink(&noisy, &mut |s| has_emit2(s));
        assert_eq!(minimal, vec![Stmt::Emit { a: 2 }]);
    }
}

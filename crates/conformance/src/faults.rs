//! Engine-level fault-injection conformance.
//!
//! The chaos campaigns in [`crate::chaos`] perturb the *profiling and
//! construction* pipeline inside the single-threaded lockstep harness.
//! This module attacks the *execution* deployment instead: a real
//! [`trace_exec::TracingVm`] dispatching against a real shared cache
//! with a supervised off-thread constructor, while a deterministic
//! [`FaultPlan`] corrupts published artifacts, fails budget checks,
//! kills the constructor mid-batch, and drops or duplicates signal
//! batches — the full fault surface of PR 5's robustness layer.
//!
//! The oracle is the plain interpreter: whatever faults fire, every run
//! must produce the interpreter's result and observation checksum.
//! Degraded mode means "interpreter speed", never "wrong answer".

use std::sync::Arc;

use jvm_bytecode::Program;
use jvm_vm::{NullObserver, Value, Vm};
use trace_cache::{
    FaultConfig, FaultPlan, FaultStats, ServiceHealthSnapshot, SharedCacheStats, SupervisorConfig,
};
use trace_exec::{run_supervised_shared_constructor, shared_session, EngineConfig, TracingVm};
use trace_jit::TraceJitConfig;

/// Runs the VM makes against the shared cache per fault case: the first
/// runs warm the profiler and build traces, the later ones dispatch
/// through whatever the fault plan left standing.
pub const RUNS_PER_CASE: u32 = 6;

/// Payload byte budget applied to the shared cache in every fault case —
/// deliberately below the working-set size of the busier workloads, so
/// the eviction sweep runs for real.
pub fn case_budget_bytes() -> usize {
    8 * trace_cache::trace_cost(16)
}

/// What a fault case observed, for campaign-level assertions.
#[derive(Debug, Clone)]
pub struct FaultCaseReport {
    /// Runs executed against the shared session.
    pub runs: u32,
    /// Fault-plan draw/fire counters.
    pub faults: FaultStats,
    /// Shared-cache counters after the last run.
    pub cache: SharedCacheStats,
    /// Supervisor health after the constructor exited.
    pub health: ServiceHealthSnapshot,
    /// Payload bytes held by the cache after the last run.
    pub payload_bytes: usize,
}

/// Aggressive engine tunables for fault campaigns: short start delay and
/// loose thresholds so test-scale programs actually trace, maximising
/// the machinery each injected fault can break.
pub fn fault_campaign_config() -> EngineConfig {
    EngineConfig {
        jit: TraceJitConfig {
            start_delay: 8,
            decay_interval: 64,
            ..TraceJitConfig::paper_default()
        }
        .with_threshold(0.90),
        optimize: false,
        superinstructions: true,
        reg_ir: true,
        dop_fusion: true,
        health: true,
    }
}

/// Runs one engine-level fault case: the program is executed
/// [`RUNS_PER_CASE`] times on a [`TracingVm`] sharing a budgeted cache
/// with a supervised constructor under the given fault profile, and
/// every run is compared against the plain interpreter's result and
/// checksum. Fully deterministic in `(program, args, fault, fault_seed)`
/// up to construction timing — which the conformance contract says must
/// never change results.
pub fn run_fault_case(
    program: &Program,
    args: &[Value],
    fault: FaultConfig,
    fault_seed: u64,
) -> Result<FaultCaseReport, String> {
    let config = fault_campaign_config();
    let mut plain = Vm::new(program);
    let want = plain
        .run(args, &mut NullObserver)
        .map_err(|e| format!("interpreter failed: {e:?}"))?;
    let want_checksum = plain.checksum();

    let (cache, session, rx) = shared_session(trace_exec::shared::DEFAULT_QUEUE_CAPACITY);
    let plan = Arc::new(FaultPlan::new(fault_seed, fault));
    cache.set_faults(Arc::clone(&plan));
    session.queue.set_faults(Arc::clone(&plan));
    let budget = case_budget_bytes();
    session.set_cache_budget(Some(budget));
    let health = Arc::clone(&session.health);
    let supervisor = SupervisorConfig {
        max_restarts: 3,
        backoff_base_ms: 0,
        backoff_max_ms: 0,
    };

    let outcome: Result<(), String> = std::thread::scope(|s| {
        let h = Arc::clone(&health);
        let c = Arc::clone(&cache);
        let svc_plan = Arc::clone(&plan);
        let svc = s.spawn(move || {
            run_supervised_shared_constructor(
                rx,
                &c,
                program,
                config,
                supervisor,
                &h,
                Some(svc_plan),
            )
        });

        let result = (|| {
            let mut vm = TracingVm::new_shared(program, config, session);
            for run in 0..RUNS_PER_CASE {
                let report = vm
                    .run(args)
                    .map_err(|e| format!("run {run}: traced VM failed: {e:?}"))?;
                if report.result != want {
                    return Err(format!(
                        "run {run}: result {:?} diverged from interpreter {want:?}",
                        report.result
                    ));
                }
                if report.checksum != want_checksum {
                    return Err(format!(
                        "run {run}: checksum {:#x} diverged from interpreter {want_checksum:#x}",
                        report.checksum
                    ));
                }
                // The budget must hold at every settled point unless a
                // single trace overran it (counted, never silent).
                let stats = cache.stats();
                if stats.budget_overruns == 0 && cache.payload_bytes() > budget {
                    return Err(format!(
                        "run {run}: payload {} exceeds budget {budget} \
                         with no recorded overrun",
                        cache.payload_bytes()
                    ));
                }
            }
            Ok(())
        })();
        // The VM (and its session clone) is gone; the receiver side sees
        // the senders disconnect and the service thread exits.
        svc.join().expect("supervisor thread must not panic itself");
        result
    });
    outcome?;

    Ok(FaultCaseReport {
        runs: RUNS_PER_CASE,
        faults: plan.stats(),
        cache: cache.stats(),
        health: health.snapshot(),
        payload_bytes: cache.payload_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_workloads::registry::{all, Scale};

    #[test]
    fn fault_free_plan_matches_interpreter_and_respects_budget() {
        let w = &all(Scale::Test)[0];
        let report = run_fault_case(&w.program, &w.args, FaultConfig::none(), 1)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(report.faults.total_fired(), 0);
        assert!(!report.health.degraded);
        assert!(
            report.cache.budget_overruns > 0 || report.payload_bytes <= case_budget_bytes(),
            "budget must hold: {report:?}"
        );
    }

    #[test]
    fn constructor_killer_degrades_without_changing_results() {
        let w = &all(Scale::Test)[0];
        let report = run_fault_case(&w.program, &w.args, FaultConfig::constructor_killer(), 3)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(report.health.degraded, "kill=1.0 must degrade: {report:?}");
        assert!(report.health.panics >= 1);
        assert_eq!(report.cache.traces_constructed, 0);
    }
}

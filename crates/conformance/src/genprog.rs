//! Random structured program generation.
//!
//! A terminating statement AST (arithmetic over integer locals,
//! `if`/`else`, bounded counted loops, checksum emissions) plus its
//! translator into verified bytecode programs. Shared between the root
//! workspace fuzz suites and the conformance chaos campaigns, so a seed
//! printed by one harness reproduces the identical program in another —
//! and so the chaos shrinker can minimise the AST of a failing case.

use jvm_bytecode::{CmpOp, FuncId, FunctionBuilder, Intrinsic, Program, ProgramBuilder};
use jvm_vm::value::Value;
use trace_workloads::prng::Xoshiro256StarStar;

/// A terminating statement over a fixed set of integer locals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `l[d] = l[a] <op> l[b]` with op ∈ {+,-,*,^,&,|}.
    Arith {
        /// Destination local.
        d: u8,
        /// Left operand local.
        a: u8,
        /// Right operand local.
        b: u8,
        /// Operator selector (mod 6).
        op: u8,
    },
    /// `l[d] = c`.
    Const {
        /// Destination local.
        d: u8,
        /// The constant.
        c: i8,
    },
    /// Emit `l[a]` into the checksum.
    Emit {
        /// Source local.
        a: u8,
    },
    /// `if l[a] <cmp> l[b] { then } else { other }`.
    If {
        /// Left compare local.
        a: u8,
        /// Right compare local.
        b: u8,
        /// Comparison selector (mod 6).
        cmp: u8,
        /// Taken branch body.
        then: Vec<Stmt>,
        /// Fallthrough branch body.
        other: Vec<Stmt>,
    },
    /// `for _ in 0..n { body }` with its own loop counter.
    Loop {
        /// Iteration count.
        n: u8,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// Number of program-visible integer locals.
pub const NUM_LOCALS: u8 = 4;

fn gen_local(rng: &mut Xoshiro256StarStar) -> u8 {
    rng.range_u32(0, u32::from(NUM_LOCALS)) as u8
}

fn gen_leaf(rng: &mut Xoshiro256StarStar) -> Stmt {
    match rng.range_u32(0, 3) {
        0 => Stmt::Arith {
            d: gen_local(rng),
            a: gen_local(rng),
            b: gen_local(rng),
            op: rng.range_u32(0, 6) as u8,
        },
        1 => Stmt::Const {
            d: gen_local(rng),
            c: rng.next_u64() as i8,
        },
        _ => Stmt::Emit { a: gen_local(rng) },
    }
}

/// One statement of recursion budget `depth`; `depth == 0` forces a
/// leaf, otherwise leaves and compound statements are mixed.
pub fn gen_stmt(rng: &mut Xoshiro256StarStar, depth: u32) -> Stmt {
    if depth == 0 || rng.chance(0.5) {
        return gen_leaf(rng);
    }
    if rng.chance(0.5) {
        Stmt::If {
            a: gen_local(rng),
            b: gen_local(rng),
            cmp: rng.range_u32(0, 6) as u8,
            then: gen_block(rng, depth - 1, 0, 4),
            other: gen_block(rng, depth - 1, 0, 4),
        }
    } else {
        Stmt::Loop {
            n: rng.range_u32(1, 40) as u8,
            body: gen_block(rng, depth - 1, 1, 4),
        }
    }
}

/// A list of `min..max` statements at the given recursion budget.
pub fn gen_block(rng: &mut Xoshiro256StarStar, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    (0..rng.range_usize(min, max))
        .map(|_| gen_stmt(rng, depth))
        .collect()
}

fn cmp_of(idx: u8) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][idx as usize % 6]
}

/// Emits a statement list; loop counters use locals allocated past the
/// program-visible ones.
fn emit_stmts(b: &mut FunctionBuilder, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Arith { d, a, b: rb, op } => {
                b.load(u16::from(*a)).load(u16::from(*rb));
                match op % 6 {
                    0 => b.iadd(),
                    1 => b.isub(),
                    2 => b.imul(),
                    3 => b.ixor(),
                    4 => b.iand(),
                    _ => b.ior(),
                };
                b.store(u16::from(*d));
            }
            Stmt::Const { d, c } => {
                b.iconst(i64::from(*c)).store(u16::from(*d));
            }
            Stmt::Emit { a } => {
                b.load(u16::from(*a)).intrinsic(Intrinsic::Checksum);
            }
            Stmt::If {
                a,
                b: rb,
                cmp,
                then,
                other,
            } => {
                let else_l = b.new_label();
                let end = b.new_label();
                b.load(u16::from(*a)).load(u16::from(*rb));
                b.if_icmp(cmp_of(*cmp).negate(), else_l);
                emit_stmts(b, then);
                b.goto(end);
                b.bind(else_l);
                emit_stmts(b, other);
                b.bind(end);
                b.nop(); // keeps `end` bindable even when it's at the tail
            }
            Stmt::Loop { n, body } => {
                let i = b.alloc_local();
                b.iconst(i64::from(*n)).store(i);
                let head = b.bind_new_label();
                let exit = b.new_label();
                b.load(i).if_i(CmpOp::Le, exit);
                emit_stmts(b, body);
                b.iinc(i, -1).goto(head);
                b.bind(exit);
            }
        }
    }
}

/// Builds and verifies a single-function program from a statement list.
pub fn build_program(stmts: &[Stmt]) -> Program {
    let mut pb = ProgramBuilder::new();
    let f = pb.declare_function("main", u16::from(NUM_LOCALS), false);
    {
        let b = pb.function_mut(f);
        emit_stmts(b, stmts);
        // Emit all visible locals so every program has observable output.
        for l in 0..NUM_LOCALS {
            b.load(u16::from(l)).intrinsic(Intrinsic::Checksum);
        }
        b.ret_void();
    }
    pb.build(FuncId(0)).expect("generated programs must verify")
}

/// Deterministic argument vector for a generated program.
pub fn args_from(seed: i64) -> Vec<Value> {
    (0..NUM_LOCALS)
        .map(|i| Value::Int(seed.wrapping_mul(i64::from(i) + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_vm::interp::Vm;
    use jvm_vm::observer::NullObserver;

    #[test]
    fn generated_programs_verify_and_terminate() {
        for case in 0..16u64 {
            let seed = trace_workloads::prng::seed_stream(0x6E27_0600, case);
            let mut rng = Xoshiro256StarStar::new(seed);
            let stmts = gen_block(&mut rng, 3, 1, 8);
            let program = build_program(&stmts);
            let args = args_from(rng.next_i64());
            let mut vm = Vm::new(&program);
            vm.run(&args, &mut NullObserver)
                .unwrap_or_else(|e| panic!("seed {seed}: program failed: {e:?}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::new(99);
        let mut b = Xoshiro256StarStar::new(99);
        assert_eq!(gen_block(&mut a, 3, 1, 8), gen_block(&mut b, 3, 1, 8));
    }
}

//! Lockstep comparison of the production pipeline against the model.
//!
//! A [`Lockstep`] owns both systems — the production
//! [`BranchCorrelationGraph`] + [`TraceConstructor`] + [`TraceCache`] and
//! the naive [`ModelBcg`] + [`ModelConstructor`] + [`ModelCache`] — and
//! feeds them the same dispatch stream, checking after **every event**
//! that the node just touched agrees field by field, that both sides
//! raised the same signals in the same order, and that the caches hold
//! the same links; a full-graph sweep runs periodically and at the end.
//!
//! Two bookkeeping fields are deliberately *not* compared per event:
//! `since_decay` and `delay_remaining`. The production fast path defers
//! them behind its arming budget (they are settled at the next slow
//! visit), so their instantaneous values differ by design while every
//! observable consequence — decay timing, delay-expiry signalling,
//! states, counters — must still match exactly, and does get compared.

use jvm_bytecode::BlockId;
use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx, Signal};
use trace_cache::{ConstructorConfig, TraceCache, TraceConstructor};

use crate::model::{ModelBcg, ModelCache, ModelConstructor, ModelSignal, Quirk};

/// A detected disagreement between the production pipeline and the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Dispatch-stream position (events observed before the failure).
    pub step: u64,
    /// Human-readable description of what disagreed.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at event {}: {}", self.step, self.what)
    }
}

/// How often (in dispatch events) the full-graph sweep runs.
const SWEEP_INTERVAL: u64 = 8192;

/// The lockstep harness.
pub struct Lockstep {
    /// The production profiler under test.
    pub bcg: BranchCorrelationGraph,
    /// The production constructor under test.
    pub ctor: TraceConstructor,
    /// The production cache under test.
    pub cache: TraceCache,
    model_bcg: ModelBcg,
    model_ctor: ModelConstructor,
    model_cache: ModelCache,
    step: u64,
    last_touched: Option<NodeIdx>,
    sig_buf: Vec<Signal>,
    /// Rotation applied to the *next* non-empty signal batch on both
    /// sides before it reaches the constructors (chaos: signal reorder).
    pending_rotation: Option<usize>,
}

impl Lockstep {
    /// Builds both systems from shared configurations.
    pub fn new(bcg_cfg: trace_bcg::BcgConfig, ctor_cfg: ConstructorConfig) -> Self {
        Lockstep {
            bcg: BranchCorrelationGraph::new(bcg_cfg),
            ctor: TraceConstructor::new(ctor_cfg),
            cache: TraceCache::new(),
            model_bcg: ModelBcg::new(bcg_cfg),
            model_ctor: ModelConstructor::new(ctor_cfg),
            model_cache: ModelCache::new(),
            step: 0,
            last_touched: None,
            sig_buf: Vec::new(),
            pending_rotation: None,
        }
    }

    /// Plants a deliberate model bug (regression-test fixture).
    pub fn with_model_quirk(mut self, quirk: Quirk) -> Self {
        self.model_bcg = ModelBcg::new(*self.model_bcg.config()).with_quirk(quirk);
        self
    }

    /// Events observed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Schedules a rotation of the next signal batch (chaos hook). Both
    /// sides see the identical permuted order, so conformance must hold.
    pub fn rotate_next_batch(&mut self, by: usize) {
        self.pending_rotation = Some(by);
    }

    /// One dispatched block through both systems, with per-event checks.
    pub fn on_block(&mut self, block: BlockId) -> Result<(), Divergence> {
        let touched = self.bcg.observe(block);
        self.model_bcg.observe(block);
        self.step += 1;

        // The node whose counters this event bumped is the one returned
        // by the *previous* observe; the one returned now was only
        // looked up (or created). Compare both.
        if let Some(prev) = self.last_touched {
            self.compare_node(prev)?;
        }
        if let Some(cur) = touched {
            self.compare_node(cur)?;
            #[cfg(feature = "debug-invariants")]
            self.bcg.assert_node_invariants(cur);
        }
        self.last_touched = touched;

        self.pump_signals()?;

        if self.step.is_multiple_of(SWEEP_INTERVAL) {
            self.sweep()?;
        }
        Ok(())
    }

    /// Forces a decay tick on both sides (chaos perturbation), then
    /// pumps and compares the resulting signals.
    pub fn force_decay(&mut self, branch: Branch) -> Result<(), Divergence> {
        let Some(idx) = self.bcg.node_index(branch) else {
            return Ok(());
        };
        self.bcg.force_decay(idx);
        self.model_bcg.force_decay(branch);
        self.compare_node(idx)?;
        self.pump_signals()
    }

    /// Unlinks an entry on both caches (chaos: capacity pressure and
    /// mid-trace invalidation), then re-compares the caches.
    pub fn unlink(&mut self, entry: Branch) -> Result<(), Divergence> {
        self.cache.unlink(entry);
        self.model_cache.unlink(entry);
        self.compare_caches()
    }

    /// Entry branches currently linked, in a deterministic order.
    pub fn linked_entries(&self) -> Vec<Branch> {
        let mut entries: Vec<Branch> = self.cache.iter_links().map(|(b, _)| b).collect();
        entries.sort_by_key(|(f, t)| (f.func.0, f.block, t.func.0, t.block));
        entries
    }

    /// Branches realised in the production graph, in creation order
    /// (deterministic across runs of the same stream).
    pub fn known_branches(&self) -> Vec<Branch> {
        self.bcg.iter().map(|(_, n)| n.branch()).collect()
    }

    /// Drains signals from both profilers, compares them, and feeds the
    /// (possibly chaos-rotated) batch to both constructors.
    fn pump_signals(&mut self) -> Result<(), Divergence> {
        self.sig_buf.clear();
        self.bcg.drain_signals_into(&mut self.sig_buf);
        let mut model_sigs = self.model_bcg.take_signals();
        if self.sig_buf.is_empty() && model_sigs.is_empty() {
            return Ok(());
        }

        let real_view: Vec<ModelSignal> = self
            .sig_buf
            .iter()
            .map(|s| ModelSignal {
                branch: s.branch,
                kind: s.kind,
            })
            .collect();
        if real_view != model_sigs {
            return Err(self.diverged(format!(
                "signal batch mismatch: production {real_view:?} vs model {model_sigs:?}"
            )));
        }

        if let Some(by) = self.pending_rotation.take() {
            if !self.sig_buf.is_empty() {
                let k = by % self.sig_buf.len();
                self.sig_buf.rotate_left(k);
                model_sigs.rotate_left(k);
            }
        }

        self.ctor
            .handle_batch(&self.sig_buf, &mut self.bcg, &mut self.cache);
        self.model_ctor
            .handle_batch(&model_sigs, &mut self.model_bcg, &mut self.model_cache);
        self.compare_caches()
    }

    /// Field-by-field comparison of one node against its model twin.
    fn compare_node(&self, idx: NodeIdx) -> Result<(), Divergence> {
        let real = self.bcg.node(idx);
        let branch = real.branch();
        let Some(model) = self.model_bcg.node(branch) else {
            return Err(self.diverged(format!("model has no node for {branch:?}")));
        };
        if real.state() != model.state {
            return Err(self.diverged(format!(
                "{branch:?}: state {:?} vs model {:?}",
                real.state(),
                model.state
            )));
        }
        if real.executions() != model.executions {
            return Err(self.diverged(format!(
                "{branch:?}: executions {} vs model {}",
                real.executions(),
                model.executions
            )));
        }
        if real.total_weight() != model.total_weight {
            return Err(self.diverged(format!(
                "{branch:?}: total_weight {} vs model {}",
                real.total_weight(),
                model.total_weight
            )));
        }
        let real_succ: Vec<(BlockId, u16)> = real
            .successors()
            .iter()
            .map(|s| (s.to_block, s.count))
            .collect();
        let model_succ: Vec<(BlockId, u16)> = model
            .successors
            .iter()
            .map(|s| (s.to_block, s.count))
            .collect();
        if real_succ != model_succ {
            return Err(self.diverged(format!(
                "{branch:?}: successors {real_succ:?} vs model {model_succ:?}"
            )));
        }
        if real.predicted().map(|s| s.to_block) != model.predicted().map(|s| s.to_block) {
            return Err(self.diverged(format!(
                "{branch:?}: prediction {:?} vs model {:?}",
                real.predicted().map(|s| s.to_block),
                model.predicted().map(|s| s.to_block)
            )));
        }
        let real_preds: Vec<Branch> = real
            .predecessors()
            .iter()
            .map(|&p| self.bcg.node(p).branch())
            .collect();
        if real_preds != model.preds {
            return Err(self.diverged(format!(
                "{branch:?}: preds {real_preds:?} vs model {:?}",
                model.preds
            )));
        }
        Ok(())
    }

    /// Compares the full link tables and trace stores.
    fn compare_caches(&self) -> Result<(), Divergence> {
        if self.cache.link_count() != self.model_cache.link_count() {
            return Err(self.diverged(format!(
                "link count {} vs model {}",
                self.cache.link_count(),
                self.model_cache.link_count()
            )));
        }
        if self.cache.trace_count() != self.model_cache.trace_count() {
            return Err(self.diverged(format!(
                "trace count {} vs model {}",
                self.cache.trace_count(),
                self.model_cache.trace_count()
            )));
        }
        for (entry, trace) in self.cache.iter_links() {
            let Some((blocks, completion)) = self.model_cache.lookup(entry) else {
                return Err(self.diverged(format!("model has no link at {entry:?}")));
            };
            if trace.blocks() != blocks.as_slice() {
                return Err(self.diverged(format!(
                    "{entry:?}: trace {:?} vs model {blocks:?}",
                    trace.blocks()
                )));
            }
            if trace.expected_completion() != *completion {
                return Err(self.diverged(format!(
                    "{entry:?}: completion {} vs model {completion}",
                    trace.expected_completion()
                )));
            }
        }
        #[cfg(feature = "debug-invariants")]
        self.cache.assert_cache_invariants();
        crate::invariants::check_link_coherence(&self.cache, &self.bcg);
        Ok(())
    }

    /// Full-graph sweep: every realised node compared, caches compared,
    /// external invariants checked.
    pub fn sweep(&self) -> Result<(), Divergence> {
        if self.bcg.len() != self.model_bcg.len() {
            return Err(self.diverged(format!(
                "node count {} vs model {}",
                self.bcg.len(),
                self.model_bcg.len()
            )));
        }
        for (idx, _) in self.bcg.iter() {
            self.compare_node(idx)?;
        }
        crate::invariants::check_graph(&self.bcg);
        crate::invariants::check_cache_links(&self.cache);
        self.compare_caches()
    }

    /// Final sweep; call when the stream ends.
    pub fn finish(&self) -> Result<(), Divergence> {
        self.sweep()
    }

    fn diverged(&self, what: String) -> Divergence {
        Divergence {
            step: self.step,
            what,
        }
    }

    /// Runs a whole program under the interpreter, pumping every
    /// dispatched block through the lockstep check.
    pub fn run_program(
        &mut self,
        program: &jvm_bytecode::Program,
        args: &[jvm_vm::value::Value],
    ) -> Result<(), Divergence> {
        let mut vm = jvm_vm::interp::Vm::new(program);
        let mut outcome: Result<(), Divergence> = Ok(());
        {
            let mut observer = |b: BlockId| {
                if outcome.is_ok() {
                    if let Err(d) = self.on_block(b) {
                        outcome = Err(d);
                    }
                }
            };
            vm.run(args, &mut observer).expect("program runs");
        }
        outcome?;
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{BlockId, FuncId};
    use trace_bcg::BcgConfig;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn harness() -> Lockstep {
        Lockstep::new(
            BcgConfig::default()
                .with_start_delay(4)
                .with_threshold(0.90),
            ConstructorConfig::default().with_threshold(0.90),
        )
    }

    #[test]
    fn loop_stream_stays_in_lockstep() {
        let mut ls = harness();
        for i in 0..4000u32 {
            for b in [0u32, 1, 2, if i % 16 == 15 { 3 } else { 2 }] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        ls.finish().expect("final sweep clean");
        assert!(ls.cache.link_count() > 0, "the loop should be traced");
    }

    #[test]
    fn forced_decay_stays_in_lockstep() {
        let mut ls = harness();
        for _ in 0..200 {
            for b in [0u32, 1, 2] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        for branch in ls.known_branches() {
            ls.force_decay(branch).expect("forced decay conforms");
        }
        ls.finish().expect("final sweep clean");
    }

    #[test]
    fn divergence_reports_step_and_field() {
        let mut ls = harness().with_model_quirk(crate::model::Quirk::ForcedDecayKeepsZeroEdges);
        // Build a node with a count-1 edge, then force a decay: the
        // quirky model keeps the zeroed edge and must be caught.
        for _ in 0..8 {
            for b in [0u32, 1, 2] {
                ls.on_block(blk(b)).expect("clean so far");
            }
        }
        for b in [0u32, 1, 3, 1] {
            ls.on_block(blk(b)).expect("clean so far");
        }
        let err = ls
            .force_decay((blk(0), blk(1)))
            .expect_err("quirk must be detected");
        // The surviving zero edge shows up either directly (successor
        // list) or through the state it derives (Unique vs Strong),
        // whichever comparison runs first.
        assert!(
            err.what.contains("successors") || err.what.contains("state"),
            "unexpected divergence field: {err}"
        );
    }
}

//! Lockstep comparison of the production pipeline against the model.
//!
//! A [`Lockstep`] owns both systems — the production
//! [`BranchCorrelationGraph`] + [`TraceConstructor`] + [`TraceCache`] and
//! the naive [`ModelBcg`] + [`ModelConstructor`] + [`ModelCache`] — and
//! feeds them the same dispatch stream, checking after **every event**
//! that the node just touched agrees field by field, that both sides
//! raised the same signals in the same order, and that the caches hold
//! the same links; a full-graph sweep runs periodically and at the end.
//!
//! Two bookkeeping fields are deliberately *not* compared per event:
//! `since_decay` and `delay_remaining`. The production fast path defers
//! them behind its arming budget (they are settled at the next slow
//! visit), so their instantaneous values differ by design while every
//! observable consequence — decay timing, delay-expiry signalling,
//! states, counters — must still match exactly, and does get compared.
//!
//! Two knobs model the shared-cache deployment's construction timing
//! without any threads:
//!
//! * [`Lockstep::with_deferred_construction`] parks every compared
//!   signal batch for a window of further dispatches before feeding it
//!   to *both* constructors, single-threadedly reproducing off-thread
//!   construction lag (the graphs keep evolving between the signalling
//!   dispatch and the plan);
//! * [`Lockstep::drop_next_batch`] hands the next batch back to both
//!   profilers via their `defer_signals` hooks — the queue-full
//!   degradation path — so the decay-cycle re-raise is conformance
//!   checked too.

use jvm_bytecode::BlockId;
use trace_bcg::{Branch, BranchCorrelationGraph, NodeIdx, Signal};
use trace_cache::{
    run_health_epoch, ConstructorConfig, OutcomeRecord, TraceCache, TraceConstructor, TraceOutcome,
    TraceStore,
};

use crate::model::{ModelBcg, ModelCache, ModelConstructor, ModelSignal, Quirk};

/// A detected disagreement between the production pipeline and the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Dispatch-stream position (events observed before the failure).
    pub step: u64,
    /// Human-readable description of what disagreed.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "divergence at event {}: {}", self.step, self.what)
    }
}

/// How often (in dispatch events) the full-graph sweep runs.
const SWEEP_INTERVAL: u64 = 8192;

/// The lockstep harness.
pub struct Lockstep {
    /// The production profiler under test.
    pub bcg: BranchCorrelationGraph,
    /// The production constructor under test.
    pub ctor: TraceConstructor,
    /// The production cache under test.
    pub cache: TraceCache,
    model_bcg: ModelBcg,
    model_ctor: ModelConstructor,
    model_cache: ModelCache,
    step: u64,
    last_touched: Option<NodeIdx>,
    sig_buf: Vec<Signal>,
    model_sig_buf: Vec<ModelSignal>,
    /// Rotation applied to the *next* non-empty signal batch on both
    /// sides before it reaches the constructors (chaos: signal reorder).
    pending_rotation: Option<usize>,
    /// Dispatch window between a signal batch and its construction
    /// (0 = construct immediately, the classic single-VM pipeline).
    defer_window: u64,
    /// Step at which the parked batches must be fed to the constructors.
    defer_deadline: Option<u64>,
    parked_real: Vec<Signal>,
    parked_model: Vec<ModelSignal>,
    /// Hand the next non-empty batch back to both profilers instead of
    /// constructing (chaos: construction-queue overload).
    drop_next: bool,
    batches_dropped: u64,
    /// Feed the next non-empty batch to both constructors twice
    /// (chaos: duplicated delivery — construction must be idempotent).
    duplicate_next: bool,
    batches_duplicated: u64,
}

impl Lockstep {
    /// Builds both systems from shared configurations.
    pub fn new(bcg_cfg: trace_bcg::BcgConfig, ctor_cfg: ConstructorConfig) -> Self {
        Lockstep {
            bcg: BranchCorrelationGraph::new(bcg_cfg),
            ctor: TraceConstructor::new(ctor_cfg),
            cache: TraceCache::new(),
            model_bcg: ModelBcg::new(bcg_cfg),
            model_ctor: ModelConstructor::new(ctor_cfg),
            model_cache: ModelCache::new(),
            step: 0,
            last_touched: None,
            sig_buf: Vec::new(),
            model_sig_buf: Vec::new(),
            pending_rotation: None,
            defer_window: 0,
            defer_deadline: None,
            parked_real: Vec::new(),
            parked_model: Vec::new(),
            drop_next: false,
            batches_dropped: 0,
            duplicate_next: false,
            batches_duplicated: 0,
        }
    }

    /// Switches the harness into deferred-construction mode: signal
    /// batches are still drained and compared on the dispatch that
    /// raised them, but both constructors only see them `window`
    /// dispatches later (accumulated, in raise order). This is the
    /// single-threaded model of the shared-cache deployment, where
    /// construction runs on a background thread and the profilers keep
    /// moving in the meantime.
    pub fn with_deferred_construction(mut self, window: u64) -> Self {
        self.defer_window = window;
        self
    }

    /// Plants a deliberate model bug (regression-test fixture). Profiler
    /// quirks land in the model BCG, cache quirks in the model cache.
    pub fn with_model_quirk(mut self, quirk: Quirk) -> Self {
        match quirk {
            Quirk::ForcedDecayKeepsZeroEdges | Quirk::DroppedSignalsForgotten => {
                self.model_bcg = ModelBcg::new(*self.model_bcg.config()).with_quirk(quirk);
            }
            Quirk::EvictionLeavesStaleLink
            | Quirk::QuarantineForgotten
            | Quirk::RottenTraceKeptLinked => {
                self.model_cache = ModelCache::new().with_quirk(quirk);
            }
            Quirk::StaleSnapshotAccepted => {
                panic!(
                    "StaleSnapshotAccepted is a snapshot-reader quirk; plant it \
                     via crate::snapshot::reader_with_quirk, not the lockstep model"
                )
            }
        }
        self
    }

    /// Events observed so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Schedules a rotation of the next signal batch (chaos hook). Both
    /// sides see the identical permuted order, so conformance must hold.
    pub fn rotate_next_batch(&mut self, by: usize) {
        self.pending_rotation = Some(by);
    }

    /// Drops the next non-empty signal batch on both sides (chaos hook):
    /// instead of reaching the constructors it is handed back through
    /// `defer_signals`, exactly what a dispatcher does when the shared
    /// construction queue is full. The batch must re-raise at the next
    /// decay cycle on both sides identically, so conformance must hold.
    pub fn drop_next_batch(&mut self) {
        self.drop_next = true;
    }

    /// Batches dropped so far via [`Self::drop_next_batch`].
    pub fn batches_dropped(&self) -> u64 {
        self.batches_dropped
    }

    /// One dispatched block through both systems, with per-event checks.
    pub fn on_block(&mut self, block: BlockId) -> Result<(), Divergence> {
        let touched = self.bcg.observe(block);
        self.model_bcg.observe(block);
        self.step += 1;

        // The node whose counters this event bumped is the one returned
        // by the *previous* observe; the one returned now was only
        // looked up (or created). Compare both.
        if let Some(prev) = self.last_touched {
            self.compare_node(prev)?;
        }
        if let Some(cur) = touched {
            self.compare_node(cur)?;
            #[cfg(feature = "debug-invariants")]
            self.bcg.assert_node_invariants(cur);
        }
        self.last_touched = touched;

        self.pump_signals()?;

        if self.defer_deadline.is_some_and(|d| self.step >= d) {
            self.flush_deferred()?;
        }

        if self.step.is_multiple_of(SWEEP_INTERVAL) {
            self.sweep()?;
        }
        Ok(())
    }

    /// Forces a decay tick on both sides (chaos perturbation), then
    /// pumps and compares the resulting signals.
    pub fn force_decay(&mut self, branch: Branch) -> Result<(), Divergence> {
        let Some(idx) = self.bcg.node_index(branch) else {
            return Ok(());
        };
        self.bcg.force_decay(idx);
        self.model_bcg.force_decay(branch);
        self.compare_node(idx)?;
        self.pump_signals()
    }

    /// Unlinks an entry on both caches (chaos: capacity pressure and
    /// mid-trace invalidation), then re-compares the caches.
    pub fn unlink(&mut self, entry: Branch) -> Result<(), Divergence> {
        self.cache.unlink(entry);
        self.model_cache.unlink(entry);
        self.compare_caches()
    }

    /// Sets the payload byte budget on both caches (chaos: budget
    /// pressure) — both immediately enforce it by their second-chance
    /// sweeps, which must pick identical victims.
    pub fn set_cache_budget(&mut self, bytes: usize) -> Result<(), Divergence> {
        self.cache.set_budget(Some(bytes));
        self.model_cache.set_budget(Some(bytes));
        self.compare_caches()
    }

    /// Quarantines the trace linked at `entry` on both caches (chaos:
    /// a trace faulted during execution). Both must tombstone the trace,
    /// remove all its links, and blacklist the same `(entry, path)` key.
    pub fn quarantine(&mut self, entry: Branch, cooldown: u32) -> Result<(), Divergence> {
        self.cache.quarantine(entry, cooldown);
        self.model_cache.quarantine(entry, cooldown);
        self.compare_caches()
    }

    /// Records a burst of trace-dispatch outcomes for the trace linked
    /// at `entry` into both health ledgers (chaos: trace execution
    /// telemetry). The production ledger is fed through the
    /// [`TraceStore`] trait, the model ledger through its transcription;
    /// both sides must agree on whether (and which trace) is linked.
    pub fn record_trace_outcomes(
        &mut self,
        entry: Branch,
        outcomes: &[TraceOutcome],
    ) -> Result<(), Divergence> {
        let real = TraceCache::lookup_entry(&self.cache, entry);
        let model = self.model_cache.lookup_id(entry);
        match (real, model) {
            (Some(tid), Some(mid)) => {
                if tid.index() != mid {
                    return Err(self.diverged(format!(
                        "{entry:?}: linked trace id {} vs model {mid}",
                        tid.index()
                    )));
                }
                let batch: Vec<OutcomeRecord> = outcomes
                    .iter()
                    .map(|&outcome| OutcomeRecord {
                        tid,
                        entry,
                        outcome,
                    })
                    .collect();
                TraceStore::record_outcomes(&mut self.cache, &batch);
                for &outcome in outcomes {
                    self.model_cache.record_outcome(mid, entry, outcome);
                }
                Ok(())
            }
            (None, None) => Ok(()),
            _ => Err(self.diverged(format!(
                "{entry:?}: link presence {real:?} vs model {model:?}"
            ))),
        }
    }

    /// Closes a health epoch on both sides (chaos: the decay-epoch
    /// boundary the executor syncs health to). Production decides and
    /// applies through [`run_health_epoch`]; the model through its
    /// transcription. Both must demote the same traces — tombstone,
    /// unlink, blacklist — so conformance must hold.
    pub fn health_epoch(&mut self) -> Result<(), Divergence> {
        let real = run_health_epoch(&mut self.cache);
        let model = self.model_cache.health_epoch();
        if real != model {
            return Err(self.diverged(format!(
                "health epoch applied {real} demotions vs model {model}"
            )));
        }
        self.compare_caches()
    }

    /// Feeds the next non-empty signal batch to both constructors twice
    /// (chaos: duplicated queue delivery). Hash-consing makes the replay
    /// idempotent, so conformance must hold.
    pub fn duplicate_next_batch(&mut self) {
        self.duplicate_next = true;
    }

    /// Batches duplicated so far via [`Self::duplicate_next_batch`].
    pub fn batches_duplicated(&self) -> u64 {
        self.batches_duplicated
    }

    /// Entry branches currently linked, in a deterministic order.
    pub fn linked_entries(&self) -> Vec<Branch> {
        let mut entries: Vec<Branch> = self.cache.iter_links().map(|(b, _)| b).collect();
        entries.sort_by_key(|(f, t)| (f.func.0, f.block, t.func.0, t.block));
        entries
    }

    /// Branches realised in the production graph, in creation order
    /// (deterministic across runs of the same stream).
    pub fn known_branches(&self) -> Vec<Branch> {
        self.bcg.iter().map(|(_, n)| n.branch()).collect()
    }

    /// Drains signals from both profilers, compares them, and routes the
    /// (possibly chaos-rotated) batch: dropped back to the profilers,
    /// parked for deferred construction, or fed to both constructors.
    fn pump_signals(&mut self) -> Result<(), Divergence> {
        self.bcg.drain_signals_into(&mut self.sig_buf);
        self.model_bcg.drain_signals_into(&mut self.model_sig_buf);
        if self.sig_buf.is_empty() && self.model_sig_buf.is_empty() {
            return Ok(());
        }

        let matches = self.sig_buf.len() == self.model_sig_buf.len()
            && self
                .sig_buf
                .iter()
                .zip(&self.model_sig_buf)
                .all(|(r, m)| r.branch == m.branch && r.kind == m.kind);
        if !matches {
            let real_view: Vec<ModelSignal> = self
                .sig_buf
                .iter()
                .map(|s| ModelSignal {
                    branch: s.branch,
                    kind: s.kind,
                })
                .collect();
            return Err(self.diverged(format!(
                "signal batch mismatch: production {real_view:?} vs model {:?}",
                self.model_sig_buf
            )));
        }

        if self.drop_next {
            // Queue-overload degradation: both sides hand the batch back
            // for re-raise at the next decay. A rotation stays pending
            // for the batch the constructors eventually do see.
            self.drop_next = false;
            self.batches_dropped += 1;
            self.bcg.defer_signals(&self.sig_buf);
            self.model_bcg.defer_signals(&self.model_sig_buf);
            return Ok(());
        }

        if let Some(by) = self.pending_rotation.take() {
            let k = by % self.sig_buf.len();
            self.sig_buf.rotate_left(k);
            self.model_sig_buf.rotate_left(k);
        }

        let copies = if self.duplicate_next {
            self.duplicate_next = false;
            self.batches_duplicated += 1;
            2
        } else {
            1
        };

        if self.defer_window > 0 {
            for _ in 0..copies {
                self.parked_real.extend_from_slice(&self.sig_buf);
                self.parked_model.extend_from_slice(&self.model_sig_buf);
            }
            let deadline = self.step + self.defer_window;
            self.defer_deadline.get_or_insert(deadline);
            return Ok(());
        }

        for _ in 0..copies {
            self.ctor
                .handle_batch(&self.sig_buf, &mut self.bcg, &mut self.cache);
            self.model_ctor.handle_batch(
                &self.model_sig_buf,
                &mut self.model_bcg,
                &mut self.model_cache,
            );
        }
        self.compare_caches()
    }

    /// Feeds every parked batch to both constructors (deferred mode).
    fn flush_deferred(&mut self) -> Result<(), Divergence> {
        self.defer_deadline = None;
        if self.parked_real.is_empty() && self.parked_model.is_empty() {
            return Ok(());
        }
        self.ctor
            .handle_batch(&self.parked_real, &mut self.bcg, &mut self.cache);
        self.model_ctor.handle_batch(
            &self.parked_model,
            &mut self.model_bcg,
            &mut self.model_cache,
        );
        self.parked_real.clear();
        self.parked_model.clear();
        self.compare_caches()
    }

    /// Field-by-field comparison of one node against its model twin.
    fn compare_node(&self, idx: NodeIdx) -> Result<(), Divergence> {
        let real = self.bcg.node(idx);
        let branch = real.branch();
        let Some(model) = self.model_bcg.node(branch) else {
            return Err(self.diverged(format!("model has no node for {branch:?}")));
        };
        if real.state() != model.state {
            return Err(self.diverged(format!(
                "{branch:?}: state {:?} vs model {:?}",
                real.state(),
                model.state
            )));
        }
        if real.executions() != model.executions {
            return Err(self.diverged(format!(
                "{branch:?}: executions {} vs model {}",
                real.executions(),
                model.executions
            )));
        }
        if real.total_weight() != model.total_weight {
            return Err(self.diverged(format!(
                "{branch:?}: total_weight {} vs model {}",
                real.total_weight(),
                model.total_weight
            )));
        }
        let real_succ: Vec<(BlockId, u16)> = real
            .successors()
            .iter()
            .map(|s| (s.to_block, s.count))
            .collect();
        let model_succ: Vec<(BlockId, u16)> = model
            .successors
            .iter()
            .map(|s| (s.to_block, s.count))
            .collect();
        if real_succ != model_succ {
            return Err(self.diverged(format!(
                "{branch:?}: successors {real_succ:?} vs model {model_succ:?}"
            )));
        }
        if real.predicted().map(|s| s.to_block) != model.predicted().map(|s| s.to_block) {
            return Err(self.diverged(format!(
                "{branch:?}: prediction {:?} vs model {:?}",
                real.predicted().map(|s| s.to_block),
                model.predicted().map(|s| s.to_block)
            )));
        }
        let real_preds: Vec<Branch> = real
            .predecessors()
            .iter()
            .map(|&p| self.bcg.node(p).branch())
            .collect();
        if real_preds != model.preds {
            return Err(self.diverged(format!(
                "{branch:?}: preds {real_preds:?} vs model {:?}",
                model.preds
            )));
        }
        Ok(())
    }

    /// Compares the full link tables and trace stores.
    fn compare_caches(&self) -> Result<(), Divergence> {
        if self.cache.link_count() != self.model_cache.link_count() {
            return Err(self.diverged(format!(
                "link count {} vs model {}",
                self.cache.link_count(),
                self.model_cache.link_count()
            )));
        }
        if self.cache.trace_count() != self.model_cache.trace_count() {
            return Err(self.diverged(format!(
                "trace count {} vs model {}",
                self.cache.trace_count(),
                self.model_cache.trace_count()
            )));
        }
        for (entry, trace) in self.cache.iter_links() {
            let Some((blocks, completion)) = self.model_cache.lookup(entry) else {
                return Err(self.diverged(format!("model has no link at {entry:?}")));
            };
            if trace.blocks() != blocks.as_slice() {
                return Err(self.diverged(format!(
                    "{entry:?}: trace {:?} vs model {blocks:?}",
                    trace.blocks()
                )));
            }
            if trace.expected_completion() != *completion {
                return Err(self.diverged(format!(
                    "{entry:?}: completion {} vs model {completion}",
                    trace.expected_completion()
                )));
            }
        }
        if self.cache.payload_bytes() != self.model_cache.payload_bytes() {
            return Err(self.diverged(format!(
                "payload bytes {} vs model {}",
                self.cache.payload_bytes(),
                self.model_cache.payload_bytes()
            )));
        }
        let real_q: Vec<(Branch, Vec<BlockId>, u32)> = self
            .cache
            .iter_quarantine()
            .map(|(b, p, r)| (b, p.to_vec(), r))
            .collect();
        let model_q = self.model_cache.quarantine_list();
        if real_q != model_q {
            return Err(self.diverged(format!("quarantine list {real_q:?} vs model {model_q:?}")));
        }
        #[cfg(feature = "debug-invariants")]
        self.cache.assert_cache_invariants();
        crate::invariants::check_link_coherence(&self.cache, &self.bcg);
        Ok(())
    }

    /// Full-graph sweep: every realised node compared, caches compared,
    /// external invariants checked.
    pub fn sweep(&self) -> Result<(), Divergence> {
        if self.bcg.len() != self.model_bcg.len() {
            return Err(self.diverged(format!(
                "node count {} vs model {}",
                self.bcg.len(),
                self.model_bcg.len()
            )));
        }
        for (idx, _) in self.bcg.iter() {
            self.compare_node(idx)?;
        }
        crate::invariants::check_graph(&self.bcg);
        crate::invariants::check_cache_links(&self.cache);
        self.compare_caches()
    }

    /// Final sweep; call when the stream ends. In deferred mode any
    /// still-parked batches are constructed first — the background
    /// thread would drain its queue before shutdown the same way.
    pub fn finish(&mut self) -> Result<(), Divergence> {
        self.flush_deferred()?;
        self.sweep()
    }

    fn diverged(&self, what: String) -> Divergence {
        Divergence {
            step: self.step,
            what,
        }
    }

    /// Runs a whole program under the interpreter, pumping every
    /// dispatched block through the lockstep check.
    pub fn run_program(
        &mut self,
        program: &jvm_bytecode::Program,
        args: &[jvm_vm::value::Value],
    ) -> Result<(), Divergence> {
        let mut vm = jvm_vm::interp::Vm::new(program);
        let mut outcome: Result<(), Divergence> = Ok(());
        {
            let mut observer = |b: BlockId| {
                if outcome.is_ok() {
                    if let Err(d) = self.on_block(b) {
                        outcome = Err(d);
                    }
                }
            };
            vm.run(args, &mut observer).expect("program runs");
        }
        outcome?;
        self.finish()
    }

    /// Runs a whole program with profile-driven superinstruction fusion
    /// applied to the decoded stream, pumping every dispatched block
    /// through the lockstep check **and** comparing the fused dispatch
    /// stream element-wise against an unfused [`ReferenceVm`] stream.
    ///
    /// The reference comparison is load-bearing: a mis-fused group that
    /// swallows a block marker feeds the production profiler and the
    /// model the *same* wrong stream, so lockstep alone stays green.
    /// Only the independent oracle stream makes that bug observable —
    /// which the planted [`FuseQuirk`](jvm_vm::fuse::FuseQuirk) test
    /// proves.
    ///
    /// [`ReferenceVm`]: jvm_vm::reference::ReferenceVm
    pub fn run_program_fused(
        &mut self,
        program: &jvm_bytecode::Program,
        args: &[jvm_vm::value::Value],
        quirk: Option<jvm_vm::fuse::FuseQuirk>,
    ) -> Result<(), Divergence> {
        // Independent oracle stream from the frozen reference VM.
        let mut reference = jvm_vm::reference::ReferenceVm::new(program);
        let mut ref_stream = jvm_vm::observer::RecordingObserver::new();
        reference
            .run(args, &mut ref_stream)
            .expect("reference runs");

        // Profiling warmup (not lockstep-checked), then the rewrite.
        let mut vm = jvm_vm::interp::Vm::new(program);
        let mut counts = jvm_vm::fuse::BlockCounts::for_program(program);
        vm.run(args, &mut counts).expect("profiling run succeeds");
        vm.fuse_with_profile(counts, &jvm_vm::fuse::FusionConfig::aggressive());
        if let Some(q) = quirk {
            assert!(
                vm.plant_fuse_quirk(q),
                "program offers no site for the planted quirk"
            );
        }

        let expected = &ref_stream.blocks;
        let mut pos = 0usize;
        let mut outcome: Result<(), Divergence> = Ok(());
        let mut step = self.step;
        {
            let mut observer = |b: BlockId| {
                if outcome.is_err() {
                    return;
                }
                step += 1;
                if expected.get(pos) != Some(&b) {
                    outcome = Err(Divergence {
                        step,
                        what: format!(
                            "fused dispatch stream diverged at position {pos}: \
                             got {b:?}, reference has {:?}",
                            expected.get(pos)
                        ),
                    });
                    return;
                }
                pos += 1;
                if let Err(d) = self.on_block(b) {
                    outcome = Err(d);
                }
            };
            vm.run(args, &mut observer).expect("fused run succeeds");
        }
        outcome?;
        if pos != expected.len() {
            return Err(self.diverged(format!(
                "fused dispatch stream ended early: {pos} of {} reference dispatches",
                expected.len()
            )));
        }
        if vm.stats() != reference.stats() {
            return Err(self.diverged(format!(
                "fused exec stats diverged: {:?} vs reference {:?}",
                vm.stats(),
                reference.stats()
            )));
        }
        if vm.checksum() != reference.checksum() {
            return Err(self.diverged(format!(
                "fused checksum {:#018x} vs reference {:#018x}",
                vm.checksum(),
                reference.checksum()
            )));
        }
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::{BlockId, FuncId};
    use trace_bcg::BcgConfig;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    fn harness() -> Lockstep {
        Lockstep::new(
            BcgConfig::default()
                .with_start_delay(4)
                .with_threshold(0.90),
            ConstructorConfig::default().with_threshold(0.90),
        )
    }

    #[test]
    fn loop_stream_stays_in_lockstep() {
        let mut ls = harness();
        for i in 0..4000u32 {
            for b in [0u32, 1, 2, if i % 16 == 15 { 3 } else { 2 }] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        ls.finish().expect("final sweep clean");
        assert!(ls.cache.link_count() > 0, "the loop should be traced");
    }

    #[test]
    fn forced_decay_stays_in_lockstep() {
        let mut ls = harness();
        for _ in 0..200 {
            for b in [0u32, 1, 2] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        for branch in ls.known_branches() {
            ls.force_decay(branch).expect("forced decay conforms");
        }
        ls.finish().expect("final sweep clean");
    }

    #[test]
    fn deferred_construction_stays_in_lockstep_and_still_traces() {
        let mut ls = harness().with_deferred_construction(32);
        for i in 0..4000u32 {
            for b in [0u32, 1, 2, if i % 16 == 15 { 3 } else { 2 }] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        ls.finish().expect("final sweep clean");
        assert!(
            ls.cache.link_count() > 0,
            "construction deferred is still construction"
        );
    }

    #[test]
    fn dropped_batches_reraise_and_stay_in_lockstep() {
        // Drop every batch raised in the first half of the run: the
        // deferred signals must re-raise at decay cycles on both sides
        // and the loop must still end up traced.
        let mut ls = harness();
        for i in 0..4000u32 {
            if i < 2000 {
                ls.drop_next_batch();
            }
            for b in [0u32, 1, 2, if i % 16 == 15 { 3 } else { 2 }] {
                ls.on_block(blk(b)).expect("no divergence");
            }
        }
        ls.finish().expect("final sweep clean");
        assert!(ls.batches_dropped() > 0, "drops must actually happen");
        assert!(
            ls.cache.link_count() > 0,
            "re-raised signals must still produce traces"
        );
    }

    #[test]
    fn forgetful_defer_quirk_is_detected() {
        // The model silently forgets dropped batches; the production
        // profiler re-raises them at the next decay, so the very next
        // pump after that decay must report a batch mismatch (or the
        // constructed links must differ at a sweep).
        let mut ls = harness().with_model_quirk(crate::model::Quirk::DroppedSignalsForgotten);
        let mut failure = None;
        'outer: for i in 0..4000u32 {
            if i % 4 == 0 {
                ls.drop_next_batch();
            }
            for b in [0u32, 1, 2, if i % 16 == 15 { 3 } else { 2 }] {
                if let Err(d) = ls.on_block(blk(b)) {
                    failure = Some(d);
                    break 'outer;
                }
            }
        }
        let d = failure.expect("the forgetful model must be caught");
        assert!(
            d.what.contains("signal batch mismatch") || d.what.contains("link"),
            "unexpected divergence field: {d}"
        );
    }

    #[test]
    fn fused_runs_stay_in_lockstep_on_the_workloads() {
        // Fusion on, aggressive selection: the production pipeline, the
        // model, and the unfused reference stream must all agree on
        // every dispatch of every workload.
        for w in trace_workloads::registry::all(trace_workloads::Scale::Test) {
            let mut ls = harness();
            ls.run_program_fused(&w.program, &w.args, None)
                .unwrap_or_else(|d| panic!("{}: {d}", w.name));
        }
    }

    #[test]
    fn fused_boundary_quirk_is_detected() {
        // A fused group that swallows a block marker produces the same
        // wrong stream on both lockstep sides — only the reference
        // comparison inside `run_program_fused` can see it.
        use jvm_bytecode::{CmpOp, ProgramBuilder};
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 1, true);
        {
            let b = pb.function_mut(f);
            let other = b.new_label();
            let merge = b.new_label();
            b.load(0).if_i(CmpOp::Gt, other);
            b.load(0); // ends the block; falls through into `merge`
            b.bind(merge);
            b.iconst(1).iadd().ret();
            // Deep expression keeps verified max_stack above what the
            // mis-fused group pushes, so the quirk surfaces as stream
            // divergence rather than a frame overflow.
            b.bind(other);
            b.load(0).iconst(1).iconst(2).iadd().iadd().goto(merge);
        }
        let program = pb.build(f).unwrap();

        let mut ls = harness();
        let d = ls
            .run_program_fused(
                &program,
                &[jvm_vm::value::Value::Int(-3)],
                Some(jvm_vm::fuse::FuseQuirk::FuseAcrossBlockBoundary),
            )
            .expect_err("the swallowed marker must be caught");
        assert!(
            d.what.contains("fused dispatch stream") || d.what.contains("stats"),
            "unexpected divergence field: {d}"
        );
    }

    #[test]
    fn divergence_reports_step_and_field() {
        let mut ls = harness().with_model_quirk(crate::model::Quirk::ForcedDecayKeepsZeroEdges);
        // Build a node with a count-1 edge, then force a decay: the
        // quirky model keeps the zeroed edge and must be caught.
        for _ in 0..8 {
            for b in [0u32, 1, 2] {
                ls.on_block(blk(b)).expect("clean so far");
            }
        }
        for b in [0u32, 1, 3, 1] {
            ls.on_block(blk(b)).expect("clean so far");
        }
        let err = ls
            .force_decay((blk(0), blk(1)))
            .expect_err("quirk must be detected");
        // The surviving zero edge shows up either directly (successor
        // list) or through the state it derives (Unique vs Strong),
        // whichever comparison runs first.
        assert!(
            err.what.contains("successors") || err.what.contains("state"),
            "unexpected divergence field: {err}"
        );
    }
}

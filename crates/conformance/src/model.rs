//! The executable from-the-paper model.
//!
//! A deliberately naive, allocation-happy implementation of the paper's
//! rules — BCG node lifecycle (§3.3, §4.1.1), the 256-execution decay,
//! the start-state delay, completion-threshold signalling, and trace
//! cutting by expected completion probability (§3.7, §4.2) — written
//! directly from the prose, with none of the production crates'
//! machinery (no packed keys, no inline caches, no budgeted fast path,
//! no hash-consed arena). Nodes are keyed by their [`Branch`] in plain
//! hash maps, successor lists are `Vec`s, and every event is processed
//! the slow way.
//!
//! The [`crate::lockstep`] harness drives this model and the production
//! `trace-bcg` + `trace-cache` pipeline with the same dispatch stream and
//! compares them event by event: the model is the oracle, so any
//! divergence is a bug in one of the two (or a deliberate
//! [`Quirk`] planted to prove the harness can see it).
//!
//! Two semantic details are load-bearing and replicated on purpose:
//!
//! * `Iterator::max_by_key` returns the **last** maximal element on
//!   ties; both the maximum-likelihood successor and decay's cached
//!   re-election depend on that tie-break;
//! * a saturated counter (`count == max_counter`) bumps **neither** the
//!   count nor `total_weight`, keeping correlation ratios frozen.

use std::collections::{HashMap, HashSet, VecDeque};

use jvm_bytecode::BlockId;
use trace_bcg::{BcgConfig, Branch, NodeState, PackedBranch, SignalKind};
use trace_cache::{trace_cost, ConstructorConfig, TraceOutcome};

/// A deliberately planted model bug, used by the regression tests to
/// prove the harness detects real divergences. `None` in normal runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quirk {
    /// Off-by-one in the *forced* decay's prune threshold: edges whose
    /// counter decays to zero are kept instead of removed. Natural decay
    /// is unaffected, so only a chaos campaign that injects forced decay
    /// ticks can expose this bug.
    ForcedDecayKeepsZeroEdges,
    /// Signals handed back by [`ModelBcg::defer_signals`] are silently
    /// dropped instead of parked for re-raise at the next decay. The
    /// defer path only runs under construction-queue overload, so only
    /// a chaos campaign that drops signal batches can expose this bug.
    DroppedSignalsForgotten,
    /// The model's budget sweep reclaims the victim trace but forgets to
    /// remove its entry link, leaving a stale link behind. Eviction only
    /// runs once a byte budget is set, so only a chaos campaign that
    /// applies budget pressure can expose this bug.
    EvictionLeavesStaleLink,
    /// The model's quarantine tombstones the faulting trace but forgets
    /// to blacklist its `(entry, path)` key, so refused rebuilds differ.
    /// Only a chaos campaign that quarantines live traces can expose
    /// this bug.
    QuarantineForgotten,
    /// The snapshot reader skips the program-hash staleness check, so a
    /// profile measured against *different bytecode* is silently merged
    /// into a live VM. Every ordinary suite reads snapshots it wrote
    /// itself (hash always matches), so only the hostile-input campaign
    /// in [`crate::snapshot`] — whose mutants rewrite the hash field —
    /// can expose this bug.
    StaleSnapshotAccepted,
    /// The model's health epoch runs the ledger math but never applies
    /// the demotion decisions: a rotten trace (one whose branch bias
    /// flipped after admission) stays linked and its `(entry, path)`
    /// key is never blacklisted. Ordinary lockstep never feeds trace
    /// outcomes, so only a chaos campaign that injects phase-shifted
    /// dispatch outcomes and health epochs can expose this bug.
    RottenTraceKeptLinked,
}

/// A profiler signal in model coordinates (branches, not node indices).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSignal {
    /// The branch whose node changed.
    pub branch: Branch,
    /// What changed (shared with the production profiler).
    pub kind: SignalKind,
}

/// A successor correlation edge of a [`ModelNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSuccessor {
    /// The block this edge predicts.
    pub to_block: BlockId,
    /// Decayed 16-bit execution counter.
    pub count: u16,
}

/// One BCG node `N_XY` of the model, in the paper's terms.
#[derive(Debug, Clone)]
pub struct ModelNode {
    /// The branch `(X, Y)`.
    pub branch: Branch,
    /// Current correlation state tag.
    pub state: NodeState,
    /// Remaining start-state delay executions (§3.3).
    pub delay_remaining: u32,
    /// Executions since the last decay (§4.1.1).
    pub since_decay: u32,
    /// Lifetime execution count.
    pub executions: u64,
    /// Sum of successor counts.
    pub total_weight: u32,
    /// Successor edges in discovery order.
    pub successors: Vec<ModelSuccessor>,
    /// Predecessor branches in discovery order (possibly stale).
    pub preds: Vec<Branch>,
    /// Index of the cached (predicted) successor.
    pub cached: Option<usize>,
    /// Trace-constructor generation stamp (cascade suppression).
    pub generation: u64,
}

impl ModelNode {
    fn new(branch: Branch, start_delay: u32) -> Self {
        ModelNode {
            branch,
            state: NodeState::NewlyCreated,
            delay_remaining: start_delay,
            since_decay: 0,
            executions: 0,
            total_weight: 0,
            successors: Vec::new(),
            preds: Vec::new(),
            cached: None,
            generation: 0,
        }
    }

    /// The maximal successor; the last one wins ties, like
    /// `Iterator::max_by_key` in the production code.
    pub fn max_successor(&self) -> Option<&ModelSuccessor> {
        self.successors.iter().max_by_key(|s| s.count)
    }

    /// The cached (predicted) successor.
    pub fn predicted(&self) -> Option<&ModelSuccessor> {
        self.cached.map(|i| &self.successors[i])
    }

    /// Correlation ratio of one edge.
    pub fn correlation(&self, s: &ModelSuccessor) -> f64 {
        if self.total_weight == 0 {
            0.0
        } else {
            f64::from(s.count) / f64::from(self.total_weight)
        }
    }

    /// Correlation toward a specific block, 0.0 if never observed.
    pub fn correlation_to(&self, block: BlockId) -> f64 {
        self.successors
            .iter()
            .find(|s| s.to_block == block)
            .map(|s| self.correlation(s))
            .unwrap_or(0.0)
    }

    fn compute_state(&self, threshold: f64) -> NodeState {
        if self.delay_remaining > 0 {
            return NodeState::NewlyCreated;
        }
        if self.total_weight == 0 || self.successors.is_empty() {
            return NodeState::NewlyCreated;
        }
        if self.successors.len() == 1 {
            return NodeState::Unique;
        }
        let max = self.max_successor().expect("nonempty");
        if self.correlation(max) >= threshold {
            NodeState::Strong
        } else {
            NodeState::Weak
        }
    }
}

/// The model profiler: the paper's BCG with nothing optimised away.
#[derive(Debug)]
pub struct ModelBcg {
    config: BcgConfig,
    nodes: HashMap<Branch, ModelNode>,
    last_block: Option<BlockId>,
    ctx: Option<Branch>,
    signals: Vec<ModelSignal>,
    /// Signals handed back by [`Self::defer_signals`]; re-raised
    /// wholesale at the next decay, like the production profiler.
    deferred: Vec<ModelSignal>,
    quirk: Option<Quirk>,
}

impl ModelBcg {
    /// Creates the model with the same configuration as the production
    /// profiler it will be compared against.
    pub fn new(config: BcgConfig) -> Self {
        ModelBcg {
            config,
            nodes: HashMap::new(),
            last_block: None,
            ctx: None,
            signals: Vec::new(),
            deferred: Vec::new(),
            quirk: None,
        }
    }

    /// Plants a deliberate bug (regression-test fixture).
    pub fn with_quirk(mut self, quirk: Quirk) -> Self {
        self.quirk = Some(quirk);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> &BcgConfig {
        &self.config
    }

    /// Number of nodes realised so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the model graph is still empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node for a branch, if realised.
    pub fn node(&self, branch: Branch) -> Option<&ModelNode> {
        self.nodes.get(&branch)
    }

    /// Drains the pending signals.
    pub fn take_signals(&mut self) -> Vec<ModelSignal> {
        std::mem::take(&mut self.signals)
    }

    /// Drains all pending signals into `out` (cleared first), retaining
    /// both buffers' capacity — the model-side twin of the production
    /// profiler's `drain_signals_into`, so the lockstep harness can pump
    /// every batch without touching the allocator.
    pub fn drain_signals_into(&mut self, out: &mut Vec<ModelSignal>) {
        out.clear();
        out.append(&mut self.signals);
    }

    /// Hands a drained signal batch back (the consumer could not take
    /// it — construction-queue overload). Parked signals are
    /// deduplicated by branch and re-raised wholesale at the next decay,
    /// mirroring the production profiler's degradation contract.
    pub fn defer_signals(&mut self, signals: &[ModelSignal]) {
        if self.quirk == Some(Quirk::DroppedSignalsForgotten) {
            return;
        }
        for sig in signals {
            if self.deferred.iter().all(|d| d.branch != sig.branch) {
                self.deferred.push(*sig);
            }
        }
    }

    /// Number of signals currently parked by [`Self::defer_signals`].
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Forgets the dispatch context (new stream / thread switch).
    pub fn begin_stream(&mut self) {
        self.last_block = None;
        self.ctx = None;
    }

    /// Stamps a node's constructor generation.
    pub fn mark_generation(&mut self, branch: Branch, generation: u64) {
        if let Some(n) = self.nodes.get_mut(&branch) {
            n.generation = generation;
        }
    }

    /// One dispatched block, straight from the paper's description.
    pub fn observe(&mut self, z: BlockId) {
        let y = match self.last_block.replace(z) {
            None => return,
            Some(y) => y,
        };
        let yz = (y, z);
        match self.ctx {
            None => {
                self.get_or_create(yz);
            }
            Some(xy) => self.record(xy, yz),
        }
        self.ctx = Some(yz);
    }

    fn get_or_create(&mut self, branch: Branch) {
        let delay = self.config.start_delay;
        self.nodes
            .entry(branch)
            .or_insert_with(|| ModelNode::new(branch, delay));
    }

    fn record(&mut self, xy: Branch, yz: Branch) {
        let cfg = self.config;
        let z = yz.1;

        // Edge bump (saturating; a saturated edge freezes total_weight
        // too so the ratio stays put), creating edge and target node on
        // first sighting.
        let known = {
            let node = self.nodes.get_mut(&xy).expect("context node exists");
            node.executions += 1;
            match node.successors.iter().position(|s| s.to_block == z) {
                Some(i) => {
                    let s = &mut node.successors[i];
                    if s.count < cfg.max_counter {
                        s.count += 1;
                        node.total_weight += 1;
                    }
                    if node.cached.is_none() {
                        node.cached = Some(i);
                    }
                    true
                }
                None => false,
            }
        };
        if !known {
            self.get_or_create(yz);
            let node = self.nodes.get_mut(&xy).expect("context node exists");
            node.successors.push(ModelSuccessor {
                to_block: z,
                count: 1,
            });
            node.total_weight += 1;
            if node.cached.is_none() {
                node.cached = Some(node.successors.len() - 1);
            }
            let target = self.nodes.get_mut(&yz).expect("just created");
            if !target.preds.contains(&xy) {
                target.preds.push(xy);
            }
        }

        // Start-state delay (§3.3): the state is first computed when the
        // delay expires, and the change is signalled.
        let mut decay_due = false;
        {
            let node = self.nodes.get_mut(&xy).expect("context node exists");
            if node.delay_remaining > 0 {
                node.delay_remaining -= 1;
                if node.delay_remaining == 0 {
                    let new = node.compute_state(cfg.threshold);
                    if new != node.state {
                        let old = node.state;
                        node.state = new;
                        self.signals.push(ModelSignal {
                            branch: xy,
                            kind: SignalKind::StateChange { old, new },
                        });
                    }
                }
            }
            node.since_decay += 1;
            if node.since_decay >= cfg.decay_interval {
                decay_due = true;
            }
        }
        if decay_due {
            self.decay(xy, false);
        }
    }

    /// A forced decay tick (chaos perturbation): decays the node right
    /// now, regardless of its `since_decay` position.
    pub fn force_decay(&mut self, branch: Branch) {
        if self.nodes.contains_key(&branch) {
            self.decay(branch, true);
        }
    }

    /// Periodic decay (§4.1.1): shift every counter right, prune dead
    /// edges, re-elect the prediction, recompute the state, and signal
    /// the trace cache if either changed.
    fn decay(&mut self, branch: Branch, forced: bool) {
        let cfg = self.config;
        let keep_zero = forced && self.quirk == Some(Quirk::ForcedDecayKeepsZeroEdges);
        let node = self.nodes.get_mut(&branch).expect("decaying node exists");
        let old_state = node.state;
        let old_pred = node.predicted().map(|s| s.to_block);

        for s in &mut node.successors {
            s.count >>= cfg.decay_shift;
        }
        if !keep_zero {
            node.successors.retain(|s| s.count > 0);
        }
        node.total_weight = node.successors.iter().map(|s| u32::from(s.count)).sum();

        node.cached = node
            .successors
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.count)
            .map(|(i, _)| i);

        let new_state = if node.delay_remaining > 0 {
            old_state
        } else {
            node.compute_state(cfg.threshold)
        };
        node.state = new_state;
        node.since_decay = 0;

        let new_pred = node.predicted().map(|s| s.to_block);
        if new_state != old_state {
            self.signals.push(ModelSignal {
                branch,
                kind: SignalKind::StateChange {
                    old: old_state,
                    new: new_state,
                },
            });
        } else if new_state.is_hot() && new_pred != old_pred {
            self.signals.push(ModelSignal {
                branch,
                kind: SignalKind::PredictionChange {
                    old: old_pred,
                    new: new_pred,
                },
            });
        }

        // Re-raise signals parked by a full construction queue: the
        // decay cycle is the re-delivery point, as in production.
        if !self.deferred.is_empty() {
            self.signals.append(&mut self.deferred);
        }
    }
}

/// Health-policy thresholds, transcribed verbatim from
/// `HealthPolicy::default()` in `trace-cache`. They live here as plain
/// constants — the model has no policy struct — and the lockstep
/// harness flags any drift between the two copies as a divergence.
mod health_policy {
    /// Weight of the newest epoch's completion rate in the EWMA.
    pub const EWMA_ALPHA: f64 = 0.5;
    /// EWMA below which a healthy trace enters probation and a
    /// probationary trace is demoted.
    pub const PROBATION_RATE: f64 = 0.5;
    /// Minimum entries for an epoch to be judged.
    pub const MIN_EPOCH_ENTRIES: u64 = 8;
    /// Consecutive early exits that demote outright, from any state.
    pub const STREAK_LIMIT: u32 = 16;
    /// Base quarantine cooldown handed to the cache on demotion.
    pub const COOLDOWN: u32 = 4;
    /// Cap on the hysteresis escalation shift.
    pub const MAX_COOLDOWN_SHIFT: u32 = 4;
    /// Idle epochs after which a ledger entry is pruned.
    pub const IDLE_EPOCHS_PRUNED: u32 = 4;
}

/// Decision-relevant health telemetry for one model trace. Lifetime
/// counters and per-guard exit histograms are observability-only in
/// production, so the model tracks just what the demotion ladder reads.
#[derive(Debug, Clone)]
pub struct ModelTraceHealth {
    /// Entry branch of the most recent dispatch (the quarantine key).
    pub entry: Branch,
    /// Consecutive early exits since the last completion.
    pub streak: u32,
    /// EWMA of the per-epoch completion rate.
    pub ewma: f64,
    /// Epochs with enough entries to score.
    pub judged_epochs: u64,
    /// Entries in the current epoch window.
    pub epoch_entries: u64,
    /// Completions in the current epoch window.
    pub epoch_completions: u64,
    /// Consecutive epochs with zero entries (prune clock).
    pub idle_epochs: u32,
    /// Whether the trace is on probation (vs healthy).
    pub on_probation: bool,
}

impl ModelTraceHealth {
    fn new(entry: Branch, on_probation: bool) -> Self {
        ModelTraceHealth {
            entry,
            streak: 0,
            ewma: 1.0,
            judged_epochs: 0,
            epoch_entries: 0,
            epoch_completions: 0,
            idle_epochs: 0,
            on_probation,
        }
    }
}

/// A model demotion decision: `(trace id, entry, escalated cooldown)`.
pub type ModelDemotion = (usize, Branch, u32);

/// The model health ledger: the demotion ladder of `trace-cache`'s
/// `HealthLedger`, written the slow way from its documented rules.
/// Keyed by model trace id; the flap memory (hysteresis) is keyed by
/// plain `Branch` and never pruned, as in production.
#[derive(Debug, Default)]
pub struct ModelHealth {
    traces: HashMap<usize, ModelTraceHealth>,
    flaps: HashMap<Branch, u32>,
}

impl ModelHealth {
    /// Telemetry for a tracked trace.
    pub fn health_of(&self, id: usize) -> Option<&ModelTraceHealth> {
        self.traces.get(&id)
    }

    /// Called on every successful cache admission: an entry that has
    /// flapped before starts its new trace on probation.
    fn note_admission(&mut self, id: usize, entry: Branch) {
        if self.flaps.contains_key(&entry) {
            self.traces.insert(id, ModelTraceHealth::new(entry, true));
        }
    }

    /// Drops a trace from the ledger (tombstoned outside the health
    /// path).
    fn forget(&mut self, id: usize) {
        self.traces.remove(&id);
    }

    /// Ingests one dispatch outcome; unknown traces register lazily.
    fn record(&mut self, id: usize, entry: Branch, outcome: TraceOutcome) {
        let h = self
            .traces
            .entry(id)
            .or_insert_with(|| ModelTraceHealth::new(entry, false));
        h.entry = entry;
        h.epoch_entries += 1;
        match outcome {
            TraceOutcome::Completed => {
                h.epoch_completions += 1;
                h.streak = 0;
            }
            TraceOutcome::SideExit { .. } => {
                h.streak += 1;
            }
        }
    }

    /// Closes the epoch window: scores every tracked trace in ascending
    /// id order, walks the ladder, and returns the demotion decisions.
    fn epoch(&mut self) -> Vec<ModelDemotion> {
        use health_policy as p;
        let mut demotions = Vec::new();
        let mut ids: Vec<usize> = self.traces.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let h = self.traces.get_mut(&id).expect("id collected above");
            if h.epoch_entries == 0 {
                h.idle_epochs += 1;
                if h.idle_epochs >= p::IDLE_EPOCHS_PRUNED {
                    self.traces.remove(&id);
                }
                continue;
            }
            h.idle_epochs = 0;
            let judged = h.epoch_entries >= p::MIN_EPOCH_ENTRIES;
            if judged {
                let rate = h.epoch_completions as f64 / h.epoch_entries as f64;
                h.ewma = if h.judged_epochs == 0 {
                    rate
                } else {
                    p::EWMA_ALPHA * rate + (1.0 - p::EWMA_ALPHA) * h.ewma
                };
                h.judged_epochs += 1;
            }
            h.epoch_entries = 0;
            h.epoch_completions = 0;
            let demoted = if h.streak >= p::STREAK_LIMIT {
                true
            } else if judged && h.ewma < p::PROBATION_RATE {
                if h.on_probation {
                    true
                } else {
                    h.on_probation = true;
                    false
                }
            } else {
                if judged && h.on_probation {
                    h.on_probation = false;
                }
                false
            };
            if demoted {
                let entry = h.entry;
                let flaps = self.flaps.entry(entry).or_insert(0);
                *flaps += 1;
                let shift = (*flaps - 1).min(p::MAX_COOLDOWN_SHIFT);
                demotions.push((id, entry, p::COOLDOWN << shift));
                self.traces.remove(&id);
            }
        }
        demotions
    }
}

/// The model trace cache: hash-consed sequences plus entry links, with
/// no packed tables. Mirrors the production cache's robustness policy —
/// the closed-form [`trace_cost`] byte accounting, the second-chance
/// (clock) eviction sweep, tombstoning (ids never reused), the
/// quarantine blacklist with its per-refusal cooldown decay, and the
/// lifetime health ledger with its demotion ladder — written the slow
/// way over `Branch`-keyed hash maps.
#[derive(Debug, Default)]
pub struct ModelCache {
    /// Trace slots in construction order; tombstoned (evicted or
    /// quarantined) traces are `None`. Slots are never reused.
    traces: Vec<Option<(Vec<BlockId>, f64)>>,
    /// Byte cost charged per trace; zeroed when tombstoned.
    costs: Vec<usize>,
    /// Live entry links per trace (the reverse of `links`).
    entry_links: Vec<Vec<Branch>>,
    by_blocks: HashMap<Vec<BlockId>, usize>,
    /// Entry branch → index into `traces`.
    links: HashMap<Branch, usize>,
    /// Second-chance sweep order (may hold stale entries; `referenced`
    /// is the source of truth, exactly as in production).
    clock: VecDeque<Branch>,
    /// Live link → second-chance bit.
    referenced: HashMap<Branch, bool>,
    /// Blacklist: entry → (exact block path, refusals remaining).
    quarantined: HashMap<Branch, (Vec<BlockId>, u32)>,
    /// Lifetime trace-health ledger (owned by the cache, as in
    /// production, so admission and tombstoning feed it in one place).
    health: ModelHealth,
    payload: usize,
    budget: Option<usize>,
    quirk: Option<Quirk>,
}

impl ModelCache {
    /// Creates an empty model cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plants a deliberate bug (regression-test fixture).
    pub fn with_quirk(mut self, quirk: Quirk) -> Self {
        self.quirk = Some(quirk);
        self
    }

    /// Number of distinct trace objects ever constructed (including
    /// tombstoned ones — ids are never reused, as in production).
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Number of live entry links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Bytes currently charged against the budget.
    pub fn payload_bytes(&self) -> usize {
        self.payload
    }

    /// Sets (or clears) the payload byte budget and immediately enforces
    /// it, like the production cache.
    pub fn set_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
        self.enforce_budget(None);
    }

    /// The quarantine blacklist, sorted by packed entry key — the same
    /// deterministic order the production cache's `iter_quarantine`
    /// reports, so the lockstep harness can compare them directly.
    pub fn quarantine_list(&self) -> Vec<(Branch, Vec<BlockId>, u32)> {
        let mut q: Vec<(Branch, Vec<BlockId>, u32)> = self
            .quarantined
            .iter()
            .map(|(&b, (p, r))| (b, p.clone(), *r))
            .collect();
        q.sort_by_key(|(b, _, _)| PackedBranch::pack(*b).0);
        q
    }

    fn insert_and_link(&mut self, entry: Branch, blocks: Vec<BlockId>, completion: f64) {
        let id = match self.by_blocks.get(&blocks) {
            Some(&id) => id,
            None => {
                let id = self.traces.len();
                let cost = trace_cost(blocks.len());
                self.traces.push(Some((blocks.clone(), completion)));
                self.costs.push(cost);
                self.entry_links.push(Vec::new());
                self.payload += cost;
                self.by_blocks.insert(blocks, id);
                id
            }
        };
        if let Some(old) = self.links.insert(entry, id) {
            if old != id {
                self.entry_links[old].retain(|&b| b != entry);
                self.reclaim_if_unlinked(old);
            }
        }
        match self.referenced.entry(entry) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.insert(true);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(false);
                self.clock.push_back(entry);
            }
        }
        if !self.entry_links[id].contains(&entry) {
            self.entry_links[id].push(entry);
        }
        self.health.note_admission(id, entry);
        self.enforce_budget(Some(entry));
    }

    /// [`Self::insert_and_link`] behind the quarantine blacklist,
    /// mirroring the production cooldown decay: a refused attempt ticks
    /// the cooldown down, and at zero the key is re-admitted (the *next*
    /// attempt succeeds). Returns whether the insert was admitted.
    fn try_insert_and_link(
        &mut self,
        entry: Branch,
        blocks: Vec<BlockId>,
        completion: f64,
    ) -> bool {
        if let Some((qblocks, remaining)) = self.quarantined.get_mut(&entry) {
            if *qblocks == blocks {
                *remaining -= 1;
                if *remaining == 0 {
                    self.quarantined.remove(&entry);
                }
                return false;
            }
        }
        self.insert_and_link(entry, blocks, completion);
        true
    }

    /// Removes the link at an entry branch.
    pub fn unlink(&mut self, entry: Branch) -> bool {
        let Some(id) = self.links.remove(&entry) else {
            return false;
        };
        self.referenced.remove(&entry);
        self.entry_links[id].retain(|&b| b != entry);
        self.reclaim_if_unlinked(id);
        true
    }

    /// Tombstones the trace linked at `entry` and blacklists its
    /// `(entry, path)` key, mirroring the production cache: every entry
    /// link of the trace is removed, only the faulting entry is
    /// blacklisted. Returns whether anything was linked there.
    pub fn quarantine(&mut self, entry: Branch, cooldown: u32) -> bool {
        let Some(&id) = self.links.get(&entry) else {
            return false;
        };
        if self.quirk != Some(Quirk::QuarantineForgotten) {
            let path = self.traces[id]
                .as_ref()
                .expect("linked trace is live")
                .0
                .clone();
            self.quarantined.insert(entry, (path, cooldown.max(1)));
        }
        for b in std::mem::take(&mut self.entry_links[id]) {
            self.links.remove(&b);
            self.referenced.remove(&b);
        }
        self.tombstone(id);
        true
    }

    fn tombstone(&mut self, id: usize) {
        self.payload -= self.costs[id];
        self.costs[id] = 0;
        if let Some((blocks, _)) = self.traces[id].take() {
            self.by_blocks.remove(&blocks);
        }
        self.health.forget(id);
    }

    /// In budget mode an unlinked trace is reclaimed as soon as its last
    /// link goes; without a budget it stays retrievable (production
    /// parity).
    fn reclaim_if_unlinked(&mut self, id: usize) {
        if self.budget.is_some() && self.entry_links[id].is_empty() && self.traces[id].is_some() {
            self.tombstone(id);
        }
    }

    /// The second-chance sweep, transcribed from the production cache:
    /// two passes over the clock clear referenced bits, the just-written
    /// link is protected, and an empty sweep (only the protected link
    /// left) ends the pass over budget.
    fn enforce_budget(&mut self, protect: Option<Branch>) {
        let Some(budget) = self.budget else {
            return;
        };
        while self.payload > budget {
            let mut victim = None;
            let mut remaining = 2 * self.clock.len() + 1;
            while remaining > 0 {
                remaining -= 1;
                let Some(key) = self.clock.pop_front() else {
                    break;
                };
                match self.referenced.get(&key).copied() {
                    None => continue, // stale: unlinked outside the sweep
                    Some(_) if Some(key) == protect => self.clock.push_back(key),
                    Some(true) => {
                        self.referenced.insert(key, false);
                        self.clock.push_back(key);
                    }
                    Some(false) => {
                        victim = Some(key);
                        break;
                    }
                }
            }
            let Some(key) = victim else {
                break;
            };
            let id = if self.quirk == Some(Quirk::EvictionLeavesStaleLink) {
                // Planted bug: the victim's payload is reclaimed but its
                // entry link survives, dangling.
                *self.links.get(&key).expect("sweep key must be linked")
            } else {
                self.links.remove(&key).expect("sweep key must be linked")
            };
            self.referenced.remove(&key);
            self.entry_links[id].retain(|&b| b != key);
            if self.entry_links[id].is_empty() {
                self.tombstone(id);
            }
        }
    }

    /// The linked `(blocks, completion)` at an entry, if any.
    pub fn lookup(&self, entry: Branch) -> Option<&(Vec<BlockId>, f64)> {
        self.links
            .get(&entry)
            .and_then(|&i| self.traces[i].as_ref())
    }

    /// The model trace id linked at an entry, if any. Ids are `traces`
    /// indices in construction order, so they coincide with production
    /// `TraceId` indices — the lockstep harness asserts that.
    pub fn lookup_id(&self, entry: Branch) -> Option<usize> {
        self.links.get(&entry).copied()
    }

    /// Health telemetry for a tracked trace.
    pub fn trace_health(&self, id: usize) -> Option<&ModelTraceHealth> {
        self.health.health_of(id)
    }

    /// Ingests one trace dispatch outcome into the health ledger.
    pub fn record_outcome(&mut self, id: usize, entry: Branch, outcome: TraceOutcome) {
        self.health.record(id, entry, outcome);
    }

    /// Runs one health epoch: the ledger decides, and every demotion is
    /// applied through [`Self::quarantine`] — the same single policy
    /// path production routes through `run_health_epoch`. A decision is
    /// skipped when the entry was relinked to a different trace since
    /// the outcomes were recorded. Returns the demotions applied.
    pub fn health_epoch(&mut self) -> u32 {
        let demotions = self.health.epoch();
        let mut applied = 0;
        for (id, entry, cooldown) in demotions {
            if self.quirk == Some(Quirk::RottenTraceKeptLinked) {
                // Planted bug: the decision is dropped on the floor and
                // the rotten trace stays linked.
                continue;
            }
            if self.links.get(&entry) == Some(&id) && self.quarantine(entry, cooldown) {
                applied += 1;
            }
        }
        applied
    }
}

/// The model trace constructor, transcribed from §4.2: back-track to
/// entry points, walk the maximum-likelihood path, cut by cumulative
/// completion probability.
#[derive(Debug)]
pub struct ModelConstructor {
    config: ConstructorConfig,
    generation: u64,
}

impl ModelConstructor {
    /// Creates the model constructor (same tunables as the real one).
    pub fn new(config: ConstructorConfig) -> Self {
        ModelConstructor {
            config,
            generation: 0,
        }
    }

    /// Reacts to one signal batch.
    pub fn handle_batch(
        &mut self,
        signals: &[ModelSignal],
        bcg: &mut ModelBcg,
        cache: &mut ModelCache,
    ) {
        self.generation += 1;
        for sig in signals {
            let up_to_date = bcg
                .node(sig.branch)
                .is_some_and(|n| n.generation == self.generation);
            if up_to_date {
                continue;
            }
            self.handle_one(sig.branch, bcg, cache);
        }
    }

    fn handle_one(&mut self, origin: Branch, bcg: &mut ModelBcg, cache: &mut ModelCache) {
        let entries = self.find_entry_points(origin, bcg);
        for entry in entries {
            let (path, loop_start) = self.walk_path(entry, bcg);
            for &b in &path {
                bcg.mark_generation(b, self.generation);
            }
            self.cut_and_emit(&path, loop_start, bcg, cache);
        }
    }

    fn find_entry_points(&mut self, origin: Branch, bcg: &ModelBcg) -> Vec<Branch> {
        let mut visited: HashSet<Branch> = HashSet::new();
        let mut stack = vec![origin];
        visited.insert(origin);
        let mut entries = Vec::new();
        while let Some(b) = stack.pop() {
            if entries.len() >= self.config.max_entry_points {
                break;
            }
            let node = bcg.node(b).expect("visited node exists");
            let mut has_strong_pred = false;
            for &p in &node.preds {
                let pn = bcg.node(p).expect("pred node exists");
                let points_here = pn.max_successor().is_some_and(|s| (p.1, s.to_block) == b);
                if pn.state.is_traceable() && points_here {
                    has_strong_pred = true;
                    if visited.insert(p) {
                        stack.push(p);
                    }
                }
            }
            if !has_strong_pred {
                entries.push(b);
            }
        }
        if entries.is_empty() {
            entries.push(origin);
        }
        entries
    }

    fn walk_path(&mut self, entry: Branch, bcg: &ModelBcg) -> (Vec<Branch>, Option<usize>) {
        let mut path = vec![entry];
        let mut pos_of: HashMap<Branch, usize> = HashMap::new();
        pos_of.insert(entry, 0);
        loop {
            let cur = *path.last().expect("path nonempty");
            let node = bcg.node(cur).expect("path node exists");
            if !node.state.is_traceable() {
                break;
            }
            let Some(ms) = node.max_successor() else {
                break;
            };
            if ms.count == 0 {
                break;
            }
            let next = (cur.1, ms.to_block);
            if let Some(&k) = pos_of.get(&next) {
                return (path, Some(k));
            }
            let Some(next_node) = bcg.node(next) else {
                break;
            };
            if !next_node.state.is_hot() {
                break;
            }
            path.push(next);
            pos_of.insert(next, path.len() - 1);
            if path.len() >= self.config.max_path_nodes {
                break;
            }
        }
        (path, None)
    }

    fn cut_and_emit(
        &mut self,
        path: &[Branch],
        loop_start: Option<usize>,
        bcg: &ModelBcg,
        cache: &mut ModelCache,
    ) {
        match loop_start {
            None => self.cut_chain(path, path.len(), bcg, cache),
            Some(k) => {
                let body = &path[k..];
                let copies = 1 + self.config.loop_unroll;
                let mut unrolled: Vec<Branch> = Vec::with_capacity(body.len() * copies);
                for _ in 0..copies {
                    unrolled.extend_from_slice(body);
                }
                self.cut_chain(&unrolled, body.len(), bcg, cache);
                if k > 0 {
                    self.cut_chain(&path[..=k], k, bcg, cache);
                }
            }
        }
    }

    fn cut_chain(
        &mut self,
        chain: &[Branch],
        emit_limit: usize,
        bcg: &ModelBcg,
        cache: &mut ModelCache,
    ) {
        if chain.len() < 2 {
            if let Some(&b) = chain.first() {
                cache.unlink(b);
            }
            return;
        }
        let link_prob: Vec<f64> = (0..chain.len() - 1)
            .map(|i| {
                let node = bcg.node(chain[i]).expect("chain node exists");
                node.correlation_to(chain[i + 1].1)
            })
            .collect();

        let mut i = 0;
        while i < chain.len() && i < emit_limit {
            let mut j = i;
            let mut prob = 1.0;
            while j + 1 < chain.len() && (j + 1 - i) < self.config.max_trace_blocks {
                let extended = prob * link_prob[j];
                if extended < self.config.threshold {
                    break;
                }
                prob = extended;
                j += 1;
            }
            let len = j + 1 - i;
            if len >= self.config.min_trace_blocks {
                let entry = chain[i];
                let blocks: Vec<BlockId> = chain[i..=j].iter().map(|b| b.1).collect();
                // Quarantine refusals tick the cooldown and install
                // nothing, exactly like the production constructor.
                let _ = cache.try_insert_and_link(entry, blocks, prob);
                i = j + 1;
            } else {
                cache.unlink(chain[i]);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jvm_bytecode::FuncId;
    use trace_bcg::ReferenceBcg;
    use trace_workloads::prng::Xoshiro256StarStar;

    fn blk(b: u32) -> BlockId {
        BlockId::new(FuncId(0), b)
    }

    /// The model must agree with the frozen pre-overhaul reference
    /// profiler on random block streams: same nodes, same per-node
    /// statistics, same signal sequence. (The production graph is in turn
    /// pinned against the reference by the workspace differential tests,
    /// closing the triangle.)
    #[test]
    fn model_matches_reference_profiler_on_random_streams() {
        for case in 0..24u64 {
            let seed = trace_workloads::prng::seed_stream(0xC0DE_5EED, case);
            let mut rng = Xoshiro256StarStar::new(seed);
            let cfg = BcgConfig {
                start_delay: rng.range_u32(1, 8),
                decay_interval: rng.range_u32(16, 64),
                ..BcgConfig::default().with_threshold(0.90)
            };
            let mut model = ModelBcg::new(cfg);
            let mut reference = ReferenceBcg::new(cfg);
            let blocks: Vec<BlockId> = (0..2000).map(|_| blk(rng.range_u32(0, 12))).collect();
            for &b in &blocks {
                model.observe(b);
                reference.observe(b);
                let model_sigs = model.take_signals();
                let ref_sigs: Vec<ModelSignal> = reference
                    .take_signals()
                    .into_iter()
                    .map(|s| ModelSignal {
                        branch: s.branch,
                        kind: s.kind,
                    })
                    .collect();
                assert_eq!(model_sigs, ref_sigs, "seed {seed}: signals diverged");
            }
            assert_eq!(model.len(), reference.len(), "seed {seed}: node count");
            for (_, rn) in reference.iter() {
                let mn = model
                    .node(rn.branch())
                    .unwrap_or_else(|| panic!("seed {seed}: model missing node {:?}", rn.branch()));
                assert_eq!(mn.state, rn.state(), "seed {seed}: state {:?}", rn.branch());
                assert_eq!(mn.executions, rn.executions(), "seed {seed}");
                assert_eq!(mn.total_weight, rn.total_weight(), "seed {seed}");
                let model_succ: Vec<(BlockId, u16)> = mn
                    .successors
                    .iter()
                    .map(|s| (s.to_block, s.count))
                    .collect();
                let ref_succ: Vec<(BlockId, u16)> = rn
                    .successors()
                    .iter()
                    .map(|s| (s.to_block, s.count))
                    .collect();
                assert_eq!(
                    model_succ,
                    ref_succ,
                    "seed {seed}: successors {:?}",
                    rn.branch()
                );
                assert_eq!(
                    mn.predicted().map(|s| s.to_block),
                    rn.predicted().map(|s| s.to_block),
                    "seed {seed}: prediction {:?}",
                    rn.branch()
                );
            }
        }
    }

    #[test]
    fn quirky_forced_decay_keeps_a_zero_edge() {
        let cfg = BcgConfig {
            decay_interval: u32::MAX,
            ..BcgConfig::default().with_start_delay(1).with_threshold(0.9)
        };
        let mut clean = ModelBcg::new(cfg);
        let mut quirky = ModelBcg::new(cfg).with_quirk(Quirk::ForcedDecayKeepsZeroEdges);
        for m in [&mut clean, &mut quirky] {
            for _ in 0..8 {
                m.observe(blk(0));
                m.observe(blk(1));
                m.observe(blk(2));
            }
            // A count-1 edge that the next decay shifts to zero.
            m.observe(blk(0));
            m.observe(blk(1));
            m.observe(blk(3));
            m.force_decay((blk(0), blk(1)));
        }
        assert_eq!(clean.node((blk(0), blk(1))).unwrap().successors.len(), 1);
        assert_eq!(quirky.node((blk(0), blk(1))).unwrap().successors.len(), 2);
    }

    /// Feeds `completions` + `exits` outcomes for the trace linked at
    /// `entry` (completions first, as one burst).
    fn feed_outcomes(cache: &mut ModelCache, entry: Branch, completions: u32, exits: u32) {
        let id = cache.lookup_id(entry).expect("entry is linked");
        for _ in 0..completions {
            cache.record_outcome(id, entry, TraceOutcome::Completed);
        }
        for _ in 0..exits {
            cache.record_outcome(id, entry, TraceOutcome::SideExit { site: 1 });
        }
    }

    #[test]
    fn model_health_ladder_demotes_escalates_and_readmits() {
        let mut cache = ModelCache::new();
        let entry = (blk(0), blk(1));
        let path = vec![blk(1), blk(2)];
        assert!(cache.try_insert_and_link(entry, path.clone(), 0.99));

        // Two unhealthy epochs: healthy → probation → demoted.
        feed_outcomes(&mut cache, entry, 2, 14);
        assert_eq!(cache.health_epoch(), 0, "first bad epoch: probation");
        assert!(cache.trace_health(0).unwrap().on_probation);
        feed_outcomes(&mut cache, entry, 2, 14);
        assert_eq!(cache.health_epoch(), 1, "second bad epoch: demoted");
        assert!(cache.lookup(entry).is_none(), "demotion unlinks");
        assert_eq!(cache.quarantine_list(), vec![(entry, path.clone(), 4)]);

        // Cooldown: 4 refusals, then re-admission — on probation, so a
        // single unhealthy epoch demotes again with a doubled cooldown.
        for _ in 0..4 {
            assert!(!cache.try_insert_and_link(entry, path.clone(), 0.99));
        }
        assert!(cache.try_insert_and_link(entry, path.clone(), 0.99));
        assert_eq!(cache.lookup_id(entry), Some(1), "fresh id on re-admission");
        assert!(cache.trace_health(1).unwrap().on_probation);
        feed_outcomes(&mut cache, entry, 2, 14);
        assert_eq!(cache.health_epoch(), 1, "watched re-admission: one epoch");
        assert_eq!(cache.quarantine_list(), vec![(entry, path, 8)]);
    }

    #[test]
    fn model_health_streak_demotes_and_quirk_keeps_the_link() {
        for (quirk, expect_applied) in [(None, 1), (Some(Quirk::RottenTraceKeptLinked), 0)] {
            let mut cache = match quirk {
                Some(q) => ModelCache::new().with_quirk(q),
                None => ModelCache::new(),
            };
            let entry = (blk(0), blk(1));
            assert!(cache.try_insert_and_link(entry, vec![blk(1), blk(2)], 0.99));
            feed_outcomes(&mut cache, entry, 0, 16);
            assert_eq!(cache.health_epoch(), expect_applied, "quirk {quirk:?}");
            assert_eq!(cache.lookup(entry).is_some(), quirk.is_some());
        }
    }

    #[test]
    fn deferred_signals_reraise_at_the_next_decay() {
        let cfg = BcgConfig {
            decay_interval: u32::MAX,
            ..BcgConfig::default().with_start_delay(1).with_threshold(0.9)
        };
        let mut m = ModelBcg::new(cfg);
        for _ in 0..8 {
            m.observe(blk(0));
            m.observe(blk(1));
            m.observe(blk(2));
        }
        let mut batch = Vec::new();
        m.drain_signals_into(&mut batch);
        assert!(!batch.is_empty(), "the warmed loop must have signalled");

        // Consumer could not take the batch: hand it back. Deferring
        // must not re-raise eagerly, and re-deferring is idempotent.
        m.defer_signals(&batch);
        m.defer_signals(&batch);
        assert_eq!(m.deferred_len(), batch.len());
        assert!(m.take_signals().is_empty());

        // The next decay re-delivers every parked signal.
        m.force_decay((blk(0), blk(1)));
        let reraised = m.take_signals();
        for d in &batch {
            assert!(
                reraised.iter().any(|s| s.branch == d.branch),
                "deferred signal for {:?} must re-raise at decay",
                d.branch
            );
        }
        assert_eq!(m.deferred_len(), 0);

        // The forgetful quirk silently drops the same batch.
        let mut quirky = ModelBcg::new(cfg).with_quirk(Quirk::DroppedSignalsForgotten);
        quirky.defer_signals(&batch);
        assert_eq!(quirky.deferred_len(), 0);
    }
}

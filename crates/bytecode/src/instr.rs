//! The instruction set.
//!
//! A deliberately JVM-flavoured, stack-based ISA: operand stack + local
//! variable slots, `iinc`-style local increments, conditional branches that
//! pop their operands, `tableswitch`, static and virtual invocation, object
//! and array accesses, and a handful of math/IO intrinsics standing in for
//! `java.lang.Math` and `java.io` natives.
//!
//! Branch targets inside a built [`crate::Program`] are absolute instruction
//! indices within the containing function (the builder resolves labels).

use std::fmt;

use crate::ids::{ClassId, FuncId};

/// Comparison operator used by conditional branches.
///
/// ```
/// use jvm_bytecode::CmpOp;
/// assert!(CmpOp::Lt.eval_i64(1, 2));
/// assert!(!CmpOp::Ge.eval_i64(1, 2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on two integers.
    #[inline]
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Evaluates the comparison on two floats (IEEE semantics; all
    /// comparisons with NaN are false except `Ne`, matching Java's
    /// `fcmpl`+branch lowering for the common case).
    #[inline]
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Returns the negated operator, e.g. `Lt` ⇒ `Ge`.
    ///
    /// ```
    /// use jvm_bytecode::CmpOp;
    /// assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
    /// assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
    /// ```
    #[inline]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Built-in native operations, standing in for `java.lang.Math` and simple
/// I/O natives in the original benchmarks.
///
/// `Checksum` folds the popped integer into the VM's running checksum — the
/// workloads use it to validate results without producing output.
///
/// ```
/// use jvm_bytecode::Intrinsic;
/// assert_eq!(Intrinsic::Sqrt.arg_count(), 1);
/// assert!(Intrinsic::Sqrt.returns_value());
/// assert!(!Intrinsic::Checksum.returns_value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `f64 -> f64` square root.
    Sqrt,
    /// `f64 -> f64` sine.
    Sin,
    /// `f64 -> f64` cosine.
    Cos,
    /// `f64 -> f64` natural exponential.
    Exp,
    /// `f64 -> f64` natural logarithm.
    Log,
    /// `f64 -> f64` absolute value.
    AbsF,
    /// `i64 -> i64` absolute value.
    AbsI,
    /// `(i64, i64) -> i64` minimum.
    MinI,
    /// `(i64, i64) -> i64` maximum.
    MaxI,
    /// Pops an integer and appends it to the VM output sink.
    PrintInt,
    /// Pops a float and appends it to the VM output sink.
    PrintFloat,
    /// Pops an integer and folds it into the VM checksum register.
    Checksum,
}

impl Intrinsic {
    /// Number of operands popped from the stack.
    pub fn arg_count(self) -> usize {
        match self {
            Intrinsic::Sqrt
            | Intrinsic::Sin
            | Intrinsic::Cos
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::AbsF
            | Intrinsic::AbsI
            | Intrinsic::PrintInt
            | Intrinsic::PrintFloat
            | Intrinsic::Checksum => 1,
            Intrinsic::MinI | Intrinsic::MaxI => 2,
        }
    }

    /// Whether a result is pushed back onto the stack.
    pub fn returns_value(self) -> bool {
        !matches!(
            self,
            Intrinsic::PrintInt | Intrinsic::PrintFloat | Intrinsic::Checksum
        )
    }

    /// Whether the operand(s) and result are floats (`true`) or ints.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Intrinsic::Sqrt
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Exp
                | Intrinsic::Log
                | Intrinsic::AbsF
                | Intrinsic::PrintFloat
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::AbsF => "fabs",
            Intrinsic::AbsI => "iabs",
            Intrinsic::MinI => "imin",
            Intrinsic::MaxI => "imax",
            Intrinsic::PrintInt => "print_i",
            Intrinsic::PrintFloat => "print_f",
            Intrinsic::Checksum => "checksum",
        };
        f.write_str(s)
    }
}

/// A single bytecode instruction.
///
/// Branch targets are absolute instruction indices within the containing
/// function. Instructions are produced through [`crate::FunctionBuilder`],
/// which resolves [`crate::Label`]s to indices; hand-constructing `Instr`
/// values is possible but the program must then pass [`crate::verifier`]
/// checks before execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Push an integer constant.
    IConst(i64),
    /// Push a float constant.
    FConst(f64),
    /// Push the null reference.
    ConstNull,
    /// Duplicate the top of stack.
    Dup,
    /// Duplicate the top two stack slots (`a b -> a b a b`).
    Dup2,
    /// Discard the top of stack.
    Pop,
    /// Swap the top two stack slots.
    Swap,

    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),
    /// Add a constant to integer local slot `n` without stack traffic
    /// (JVM `iinc`).
    IInc(u16, i32),

    /// Integer add (wrapping).
    IAdd,
    /// Integer subtract (wrapping).
    ISub,
    /// Integer multiply (wrapping).
    IMul,
    /// Integer divide; traps on division by zero.
    IDiv,
    /// Integer remainder; traps on division by zero.
    IRem,
    /// Integer negate.
    INeg,
    /// Shift left (count masked to 63 bits).
    IShl,
    /// Arithmetic shift right (count masked).
    IShr,
    /// Logical shift right (count masked).
    IUShr,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,

    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide (IEEE; never traps).
    FDiv,
    /// Float negate.
    FNeg,

    /// Convert int to float.
    I2F,
    /// Convert float to int (truncating; saturates at i64 bounds).
    F2I,

    /// Pop two ints, branch to the target if the comparison holds.
    IfICmp(CmpOp, u32),
    /// Pop one int, compare against zero, branch if the comparison holds.
    IfI(CmpOp, u32),
    /// Pop two floats, branch if the comparison holds.
    IfFCmp(CmpOp, u32),
    /// Pop a reference, branch if null.
    IfNull(u32),
    /// Pop a reference, branch if non-null.
    IfNonNull(u32),
    /// Unconditional branch.
    Goto(u32),
    /// Pop an int `v`; jump to `targets[v - low]`, or `default` if out of
    /// range.
    TableSwitch {
        /// Value mapped to `targets[0]`.
        low: i64,
        /// Jump table.
        targets: Box<[u32]>,
        /// Target when the selector is outside `low..low+targets.len()`.
        default: u32,
    },

    /// Call a function directly. Arguments are popped right-to-left into the
    /// callee's first locals.
    InvokeStatic(FuncId),
    /// Call through the receiver's vtable. `argc` is the number of
    /// arguments *including* the receiver, which sits deepest.
    InvokeVirtual {
        /// Vtable slot index.
        slot: u16,
        /// Total argument count including the receiver.
        argc: u16,
    },
    /// Return the top of stack to the caller.
    Return,
    /// Return with no value.
    ReturnVoid,

    /// Allocate an object of the class; fields start zeroed/null.
    New(ClassId),
    /// Pop an object reference, push field `n`.
    GetField(u16),
    /// Pop a value then an object reference; store into field `n`.
    PutField(u16),
    /// Pop a length, push a new zero-filled array reference.
    NewArray,
    /// Pop index then array reference, push the element.
    ALoad,
    /// Pop value, index, array reference; store the element.
    AStore,
    /// Pop an array reference, push its length.
    ArrayLen,

    /// Invoke a native intrinsic.
    Intrinsic(Intrinsic),
    /// Do nothing.
    Nop,
}

impl Instr {
    /// Returns `true` if this instruction terminates a basic block:
    /// branches, switches, calls and returns all force a new dispatch in
    /// the direct-threaded-inlining model.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::IfICmp(..)
                | Instr::IfI(..)
                | Instr::IfFCmp(..)
                | Instr::IfNull(..)
                | Instr::IfNonNull(..)
                | Instr::Goto(..)
                | Instr::TableSwitch { .. }
                | Instr::InvokeStatic(..)
                | Instr::InvokeVirtual { .. }
                | Instr::Return
                | Instr::ReturnVoid
        )
    }

    /// Returns `true` for `Return`/`ReturnVoid`.
    pub fn is_return(&self) -> bool {
        matches!(self, Instr::Return | Instr::ReturnVoid)
    }

    /// Returns `true` for the call instructions.
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::InvokeStatic(..) | Instr::InvokeVirtual { .. })
    }

    /// All *explicit* branch targets of this instruction (conditional
    /// targets, switch tables and defaults). Fall-through successors are
    /// not included.
    pub fn branch_targets(&self) -> Vec<u32> {
        match self {
            Instr::IfICmp(_, t)
            | Instr::IfI(_, t)
            | Instr::IfFCmp(_, t)
            | Instr::IfNull(t)
            | Instr::IfNonNull(t)
            | Instr::Goto(t) => vec![*t],
            Instr::TableSwitch {
                targets, default, ..
            } => {
                let mut v: Vec<u32> = targets.to_vec();
                v.push(*default);
                v
            }
            _ => Vec::new(),
        }
    }

    /// Returns `true` if control can fall through to the next instruction
    /// after executing this one.
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Instr::Goto(..) | Instr::TableSwitch { .. } | Instr::Return | Instr::ReturnVoid
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval_covers_all_operators() {
        assert!(CmpOp::Eq.eval_i64(3, 3));
        assert!(CmpOp::Ne.eval_i64(3, 4));
        assert!(CmpOp::Lt.eval_i64(3, 4));
        assert!(CmpOp::Le.eval_i64(3, 3));
        assert!(CmpOp::Gt.eval_i64(4, 3));
        assert!(CmpOp::Ge.eval_i64(4, 4));
    }

    #[test]
    fn cmp_op_negate_is_involution() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(op.eval_i64(a, b), !op.negate().eval_i64(a, b));
            }
        }
    }

    #[test]
    fn float_nan_comparisons() {
        assert!(!CmpOp::Eq.eval_f64(f64::NAN, f64::NAN));
        assert!(CmpOp::Ne.eval_f64(f64::NAN, 1.0));
        assert!(!CmpOp::Lt.eval_f64(f64::NAN, 1.0));
    }

    #[test]
    fn terminator_classification() {
        assert!(Instr::Goto(0).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(Instr::InvokeStatic(FuncId(0)).is_terminator());
        assert!(Instr::IfI(CmpOp::Eq, 3).is_terminator());
        assert!(!Instr::IAdd.is_terminator());
        assert!(!Instr::Load(0).is_terminator());
    }

    #[test]
    fn fall_through_classification() {
        assert!(!Instr::Goto(0).falls_through());
        assert!(!Instr::Return.falls_through());
        assert!(Instr::IfI(CmpOp::Eq, 3).falls_through());
        assert!(Instr::InvokeStatic(FuncId(0)).falls_through());
        assert!(Instr::IAdd.falls_through());
        let sw = Instr::TableSwitch {
            low: 0,
            targets: Box::new([1, 2]),
            default: 3,
        };
        assert!(!sw.falls_through());
    }

    #[test]
    fn branch_targets_of_switch_include_default() {
        let sw = Instr::TableSwitch {
            low: 0,
            targets: Box::new([4, 5]),
            default: 9,
        };
        assert_eq!(sw.branch_targets(), vec![4, 5, 9]);
        assert_eq!(Instr::Goto(7).branch_targets(), vec![7]);
        assert!(Instr::IAdd.branch_targets().is_empty());
    }

    #[test]
    fn intrinsic_arity_and_result() {
        assert_eq!(Intrinsic::MinI.arg_count(), 2);
        assert!(Intrinsic::MinI.returns_value());
        assert!(!Intrinsic::PrintInt.returns_value());
        assert!(Intrinsic::Sin.is_float());
        assert!(!Intrinsic::AbsI.is_float());
    }
}

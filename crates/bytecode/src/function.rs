//! Function model: signature, code, and the per-function block table.

use crate::cfg::{self, Block};
use crate::ids::FuncId;
use crate::instr::Instr;

/// A function: signature, bytecode, and its computed basic-block table.
///
/// Functions are created through [`crate::ProgramBuilder`]; the block table
/// is computed when the program is built, after verification.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    id: FuncId,
    num_params: u16,
    num_locals: u16,
    returns_value: bool,
    code: Vec<Instr>,
    blocks: Vec<Block>,
    block_of_instr: Vec<u32>,
}

impl Function {
    /// Assembles a function from raw parts, computing its block table.
    ///
    /// This is the low-level constructor used by the builder; the code is
    /// assumed verified (or about to be verified by
    /// [`crate::verifier::verify_program`]).
    ///
    /// # Panics
    ///
    /// Panics if `code` is empty or `num_locals < num_params`.
    pub fn from_parts(
        name: String,
        id: FuncId,
        num_params: u16,
        num_locals: u16,
        returns_value: bool,
        code: Vec<Instr>,
    ) -> Self {
        assert!(!code.is_empty(), "function `{name}` has empty code");
        assert!(
            num_locals >= num_params,
            "function `{name}` has fewer locals than parameters"
        );
        let (blocks, block_of_instr) = cfg::build_blocks(&code);
        Function {
            name,
            id,
            num_params,
            num_locals,
            returns_value,
            code,
            blocks,
            block_of_instr,
        }
    }

    /// The function's name (unique within its program).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's id within its program.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Number of parameters (stored in locals `0..num_params`).
    pub fn num_params(&self) -> u16 {
        self.num_params
    }

    /// Total number of local slots, including parameters.
    pub fn num_locals(&self) -> u16 {
        self.num_locals
    }

    /// Whether the function returns a value (`Return`) or not
    /// (`ReturnVoid`).
    pub fn returns_value(&self) -> bool {
        self.returns_value
    }

    /// The instruction sequence.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// The basic blocks, ordered by start instruction.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn block_index_of(&self, pc: u32) -> u32 {
        self.block_of_instr[pc as usize]
    }

    /// The block with index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn block(&self, idx: u32) -> &Block {
        &self.blocks[idx as usize]
    }

    /// Number of instructions in block `idx`.
    #[inline]
    pub fn block_len(&self, idx: u32) -> u32 {
        self.blocks[idx as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;

    fn sample() -> Function {
        let code = vec![
            Instr::Load(0),
            Instr::IfI(CmpOp::Le, 4),
            Instr::IConst(1),
            Instr::Return,
            Instr::IConst(0),
            Instr::Return,
        ];
        Function::from_parts("sample".into(), FuncId(0), 1, 1, true, code)
    }

    #[test]
    fn accessors_reflect_parts() {
        let f = sample();
        assert_eq!(f.name(), "sample");
        assert_eq!(f.id(), FuncId(0));
        assert_eq!(f.num_params(), 1);
        assert_eq!(f.num_locals(), 1);
        assert!(f.returns_value());
        assert_eq!(f.code().len(), 6);
    }

    #[test]
    fn block_table_is_consistent_with_code() {
        let f = sample();
        assert_eq!(f.block_count(), 3);
        for pc in 0..f.code().len() as u32 {
            let b = f.block_index_of(pc);
            let blk = f.block(b);
            assert!(blk.start <= pc && pc < blk.end);
        }
    }

    #[test]
    fn block_len_matches_range() {
        let f = sample();
        for i in 0..f.block_count() as u32 {
            assert_eq!(f.block_len(i), f.block(i).end - f.block(i).start);
        }
    }

    #[test]
    #[should_panic(expected = "empty code")]
    fn empty_code_rejected() {
        let _ = Function::from_parts("bad".into(), FuncId(0), 0, 0, false, vec![]);
    }

    #[test]
    #[should_panic(expected = "fewer locals")]
    fn locals_must_cover_params() {
        let _ = Function::from_parts(
            "bad".into(),
            FuncId(0),
            2,
            1,
            false,
            vec![Instr::ReturnVoid],
        );
    }
}

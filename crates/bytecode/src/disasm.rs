//! Human-readable program listings.
//!
//! Used by the examples and by debugging output: renders instructions in a
//! `javap`-like layout with basic-block annotations, which is the easiest
//! way to inspect what the trace constructor is stitching together.

use std::fmt::Write as _;

use crate::function::Function;
use crate::instr::Instr;
use crate::program::Program;

/// Renders one instruction.
///
/// ```
/// use jvm_bytecode::{disasm, Instr, CmpOp};
/// assert_eq!(disasm::instr_to_string(&Instr::IConst(7)), "iconst 7");
/// assert_eq!(disasm::instr_to_string(&Instr::IfICmp(CmpOp::Lt, 9)), "if_icmp lt -> 9");
/// ```
pub fn instr_to_string(ins: &Instr) -> String {
    match ins {
        Instr::IConst(v) => format!("iconst {v}"),
        Instr::FConst(v) => format!("fconst {v}"),
        Instr::ConstNull => "const_null".into(),
        Instr::Dup => "dup".into(),
        Instr::Dup2 => "dup2".into(),
        Instr::Pop => "pop".into(),
        Instr::Swap => "swap".into(),
        Instr::Load(s) => format!("load {s}"),
        Instr::Store(s) => format!("store {s}"),
        Instr::IInc(s, d) => format!("iinc {s}, {d}"),
        Instr::IAdd => "iadd".into(),
        Instr::ISub => "isub".into(),
        Instr::IMul => "imul".into(),
        Instr::IDiv => "idiv".into(),
        Instr::IRem => "irem".into(),
        Instr::INeg => "ineg".into(),
        Instr::IShl => "ishl".into(),
        Instr::IShr => "ishr".into(),
        Instr::IUShr => "iushr".into(),
        Instr::IAnd => "iand".into(),
        Instr::IOr => "ior".into(),
        Instr::IXor => "ixor".into(),
        Instr::FAdd => "fadd".into(),
        Instr::FSub => "fsub".into(),
        Instr::FMul => "fmul".into(),
        Instr::FDiv => "fdiv".into(),
        Instr::FNeg => "fneg".into(),
        Instr::I2F => "i2f".into(),
        Instr::F2I => "f2i".into(),
        Instr::IfICmp(op, t) => format!("if_icmp {op} -> {t}"),
        Instr::IfI(op, t) => format!("if {op} -> {t}"),
        Instr::IfFCmp(op, t) => format!("if_fcmp {op} -> {t}"),
        Instr::IfNull(t) => format!("if_null -> {t}"),
        Instr::IfNonNull(t) => format!("if_nonnull -> {t}"),
        Instr::Goto(t) => format!("goto -> {t}"),
        Instr::TableSwitch {
            low,
            targets,
            default,
        } => {
            let ts: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
            format!(
                "tableswitch low={low} [{}] default -> {default}",
                ts.join(", ")
            )
        }
        Instr::InvokeStatic(f) => format!("invokestatic {f}"),
        Instr::InvokeVirtual { slot, argc } => {
            format!("invokevirtual slot={slot} argc={argc}")
        }
        Instr::Return => "return".into(),
        Instr::ReturnVoid => "return_void".into(),
        Instr::New(c) => format!("new {c}"),
        Instr::GetField(n) => format!("getfield {n}"),
        Instr::PutField(n) => format!("putfield {n}"),
        Instr::NewArray => "newarray".into(),
        Instr::ALoad => "aload".into(),
        Instr::AStore => "astore".into(),
        Instr::ArrayLen => "arraylen".into(),
        Instr::Intrinsic(i) => format!("intrinsic {i}"),
        Instr::Nop => "nop".into(),
    }
}

/// Renders a function as a block-annotated listing.
pub fn function_to_string(func: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} `{}` (params={}, locals={}, {}):",
        func.id(),
        func.name(),
        func.num_params(),
        func.num_locals(),
        if func.returns_value() {
            "returns value"
        } else {
            "void"
        }
    );
    for (bi, block) in func.blocks().iter().enumerate() {
        let succs: Vec<String> = block.successors.iter().map(|s| format!("b{s}")).collect();
        let _ = writeln!(out, "  b{bi} [{:?}] -> [{}]:", block.kind, succs.join(", "));
        for pc in block.start..block.end {
            let _ = writeln!(
                out,
                "    {pc:4}: {}",
                instr_to_string(&func.code()[pc as usize])
            );
        }
    }
    out
}

/// Renders the whole program.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for class in program.classes() {
        let vt: Vec<String> = class.vtable().iter().map(|f| f.to_string()).collect();
        let _ = writeln!(
            out,
            "{} `{}` fields={} vtable=[{}]",
            class.id(),
            class.name(),
            class.num_fields(),
            vt.join(", ")
        );
    }
    for func in program.functions() {
        out.push_str(&function_to_string(func));
    }
    let _ = writeln!(out, "entry: {}", program.entry());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpOp;

    #[test]
    fn instr_rendering_covers_common_shapes() {
        assert_eq!(instr_to_string(&Instr::Nop), "nop");
        assert_eq!(instr_to_string(&Instr::Load(3)), "load 3");
        assert_eq!(instr_to_string(&Instr::IInc(2, -1)), "iinc 2, -1");
        let sw = Instr::TableSwitch {
            low: 1,
            targets: Box::new([4, 6]),
            default: 8,
        };
        assert_eq!(
            instr_to_string(&sw),
            "tableswitch low=1 [4, 6] default -> 8"
        );
    }

    #[test]
    fn program_listing_mentions_every_function_and_block() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let exit = b.new_label();
        b.iconst(0).if_i(CmpOp::Eq, exit);
        b.nop();
        b.bind(exit);
        b.ret_void();
        let p = pb.build(f).unwrap();
        let listing = program_to_string(&p);
        assert!(listing.contains("`main`"));
        assert!(listing.contains("b0"));
        assert!(listing.contains("entry: fn#0"));
    }
}

//! Error types for program construction and verification.

use std::error::Error;
use std::fmt;

use crate::ids::FuncId;
use crate::verifier::VerifyError;

/// Error raised while assembling a program with [`crate::ProgramBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was used as a branch target but never bound to a position.
    UnboundLabel {
        /// Function being assembled.
        func: String,
        /// Label index.
        label: u32,
    },
    /// A label was bound more than once.
    RebindLabel {
        /// Function being assembled.
        func: String,
        /// Label index.
        label: u32,
    },
    /// A declared function was never given a body.
    MissingBody {
        /// The declared-but-undefined function.
        func: String,
    },
    /// The entry function id does not exist.
    BadEntry {
        /// Offending id.
        func: FuncId,
    },
    /// A function failed verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel { func, label } => {
                write!(f, "label L{label} in function `{func}` was never bound")
            }
            BuildError::RebindLabel { func, label } => {
                write!(f, "label L{label} in function `{func}` bound twice")
            }
            BuildError::MissingBody { func } => {
                write!(f, "function `{func}` was declared but has an empty body")
            }
            BuildError::BadEntry { func } => {
                write!(f, "entry function {func} does not exist")
            }
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> Self {
        BuildError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::VerifyError;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = BuildError::UnboundLabel {
            func: "f".into(),
            label: 3,
        };
        assert_eq!(e.to_string(), "label L3 in function `f` was never bound");
        let e = BuildError::MissingBody { func: "g".into() };
        assert!(e.to_string().contains("`g`"));
    }

    #[test]
    fn verify_error_wraps_with_source() {
        let inner = VerifyError::StackUnderflow {
            func: "f".into(),
            pc: 2,
        };
        let e = BuildError::from(inner.clone());
        assert!(e.to_string().contains("verification failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

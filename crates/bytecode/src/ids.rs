//! Typed identifiers for program entities.
//!
//! Newtypes keep function indices, class indices, block coordinates and
//! builder labels statically distinct (C-NEWTYPE). All of them are small
//! `Copy` values used as keys throughout the profiler and trace cache.

use std::fmt;

/// Identifier of a function within a [`crate::Program`].
///
/// Assigned by [`crate::ProgramBuilder::declare_function`]; stable for the
/// lifetime of the program.
///
/// ```
/// use jvm_bytecode::FuncId;
/// let f = FuncId(3);
/// assert_eq!(f.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Returns the raw index into the program's function table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Identifier of a class within a [`crate::Program`].
///
/// ```
/// use jvm_bytecode::ClassId;
/// assert_eq!(ClassId(0).index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Returns the raw index into the program's class table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Coordinate of a basic block: a function plus the block's index inside it.
///
/// `BlockId` is the unit of the dynamic instruction stream observed by the
/// profiler: the interpreter performs exactly one *dispatch* per `BlockId`
/// entered (the direct-threaded-inlining model of the paper, Figure 2), and
/// a *branch* in the branch correlation graph is an ordered pair of
/// consecutively executed `BlockId`s.
///
/// ```
/// use jvm_bytecode::{BlockId, FuncId};
/// let b = BlockId::new(FuncId(1), 4);
/// assert_eq!(b.func, FuncId(1));
/// assert_eq!(b.block, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId {
    /// The function containing the block.
    pub func: FuncId,
    /// The index of the block within the function's block table.
    pub block: u32,
}

impl BlockId {
    /// Creates a block coordinate from a function id and block index.
    #[inline]
    pub fn new(func: FuncId, block: u32) -> Self {
        BlockId { func, block }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:b{}", self.func, self.block)
    }
}

/// A forward-reference label used by [`crate::FunctionBuilder`].
///
/// Labels are created with [`crate::FunctionBuilder::new_label`], used as
/// branch targets, and bound to a position with
/// [`crate::FunctionBuilder::bind`]. They are meaningless outside the
/// builder that created them.
///
/// ```
/// use jvm_bytecode::ProgramBuilder;
/// let mut pb = ProgramBuilder::new();
/// let f = pb.declare_function("f", 0, false);
/// let l = pb.function_mut(f).new_label();
/// pb.function_mut(f).goto(l);
/// pb.function_mut(f).bind(l);
/// pb.function_mut(f).ret_void();
/// assert!(pb.build(f).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn func_id_roundtrip_and_display() {
        let f = FuncId(42);
        assert_eq!(f.index(), 42);
        assert_eq!(f.to_string(), "fn#42");
    }

    #[test]
    fn class_id_roundtrip_and_display() {
        let c = ClassId(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.to_string(), "class#7");
    }

    #[test]
    fn block_id_ordering_groups_by_function() {
        let a = BlockId::new(FuncId(0), 9);
        let b = BlockId::new(FuncId(1), 0);
        assert!(a < b, "blocks of earlier functions sort first");
    }

    #[test]
    fn block_id_usable_as_hash_key() {
        let mut set = HashSet::new();
        set.insert(BlockId::new(FuncId(0), 0));
        set.insert(BlockId::new(FuncId(0), 0));
        set.insert(BlockId::new(FuncId(0), 1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId::new(FuncId(2), 5).to_string(), "fn#2:b5");
    }
}

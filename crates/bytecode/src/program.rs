//! The whole-program container.

use std::collections::HashMap;

use crate::cfg::Block;
use crate::class::Class;
use crate::function::Function;
use crate::ids::{BlockId, ClassId, FuncId};

/// A complete, verified program: functions, classes and an entry point.
///
/// Programs are immutable once built (via [`crate::ProgramBuilder::build`]),
/// which lets the VM, profiler and trace cache share `&Program` freely.
#[derive(Debug, Clone)]
pub struct Program {
    functions: Vec<Function>,
    classes: Vec<Class>,
    entry: FuncId,
    by_name: HashMap<String, FuncId>,
}

impl Program {
    /// Assembles a program from parts. Used by the builder; callers should
    /// prefer [`crate::ProgramBuilder`].
    ///
    /// # Panics
    ///
    /// Panics if function ids are not dense (`functions[i].id() == i`) or
    /// the entry id is out of range.
    pub fn from_parts(functions: Vec<Function>, classes: Vec<Class>, entry: FuncId) -> Self {
        for (i, f) in functions.iter().enumerate() {
            assert_eq!(f.id().index(), i, "function ids must be dense");
        }
        assert!(
            entry.index() < functions.len(),
            "entry function out of range"
        );
        let by_name = functions
            .iter()
            .map(|f| (f.name().to_owned(), f.id()))
            .collect();
        Program {
            functions,
            classes,
            entry,
            by_name,
        }
    }

    /// The entry function.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// All functions, indexed by [`FuncId`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All classes, indexed by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// The class with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.by_name.get(name).map(|&id| self.function(id))
    }

    /// The block designated by a [`BlockId`].
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        self.function(id.func).block(id.block)
    }

    /// Number of instructions in the designated block.
    #[inline]
    pub fn block_len(&self, id: BlockId) -> u32 {
        self.function(id.func).block_len(id.block)
    }

    /// The entry block of a function.
    #[inline]
    pub fn entry_block(&self, func: FuncId) -> BlockId {
        BlockId::new(func, 0)
    }

    /// Total number of static basic blocks across all functions.
    pub fn total_blocks(&self) -> usize {
        self.functions.iter().map(Function::block_count).sum()
    }

    /// Total number of static instructions across all functions.
    pub fn total_instructions(&self) -> usize {
        self.functions.iter().map(|f| f.code().len()).sum()
    }

    /// Iterates over every [`BlockId`] in the program.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.functions
            .iter()
            .flat_map(|f| (0..f.block_count() as u32).map(move |b| BlockId::new(f.id(), b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn two_function_program() -> Program {
        let f0 = Function::from_parts(
            "main".into(),
            FuncId(0),
            0,
            0,
            false,
            vec![
                Instr::InvokeStatic(FuncId(1)),
                Instr::Pop,
                Instr::ReturnVoid,
            ],
        );
        let f1 = Function::from_parts(
            "leaf".into(),
            FuncId(1),
            0,
            0,
            true,
            vec![Instr::IConst(5), Instr::Return],
        );
        Program::from_parts(vec![f0, f1], vec![], FuncId(0))
    }

    #[test]
    fn lookup_by_id_and_name() {
        let p = two_function_program();
        assert_eq!(p.entry(), FuncId(0));
        assert_eq!(p.function(FuncId(1)).name(), "leaf");
        assert_eq!(p.function_by_name("main").unwrap().id(), FuncId(0));
        assert!(p.function_by_name("absent").is_none());
    }

    #[test]
    fn block_queries() {
        let p = two_function_program();
        assert_eq!(p.total_blocks(), 3);
        assert_eq!(p.total_instructions(), 5);
        let entry = p.entry_block(FuncId(1));
        assert_eq!(p.block_len(entry), 2);
        assert_eq!(p.block_ids().count(), 3);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let f = Function::from_parts("f".into(), FuncId(3), 0, 0, false, vec![Instr::ReturnVoid]);
        let _ = Program::from_parts(vec![f], vec![], FuncId(0));
    }

    #[test]
    #[should_panic(expected = "entry")]
    fn bad_entry_rejected() {
        let f = Function::from_parts("f".into(), FuncId(0), 0, 0, false, vec![Instr::ReturnVoid]);
        let _ = Program::from_parts(vec![f], vec![], FuncId(9));
    }
}

//! # jvm-bytecode
//!
//! A JVM-like bytecode substrate: a stack-based instruction set, a program
//! model (functions, classes with vtables), a label-based assembler
//! ([`ProgramBuilder`]/[`FunctionBuilder`]), a structural + type
//! [`verifier`], and basic-block [`cfg`](mod@cfg) construction.
//!
//! This crate is the substrate for the reproduction of *"Dynamic Profiling
//! and Trace Cache Generation for a Java Virtual Machine"* (CGO 2003). The
//! paper's algorithms observe the dynamic **basic-block transition stream**
//! of a direct-threaded-inlining interpreter, so the essential features this
//! substrate must provide are:
//!
//! * data-dependent conditional branches (`if_icmp` and friends),
//! * multi-way branches (`tableswitch`),
//! * static and **virtual** calls (Java's polymorphism is the reason the
//!   paper rejects plain Dynamo-style speculation), and
//! * a well-defined partition of every function into basic blocks, with one
//!   interpreter *dispatch* per block executed.
//!
//! # Example
//!
//! ```
//! use jvm_bytecode::{ProgramBuilder, CmpOp};
//!
//! # fn main() -> Result<(), jvm_bytecode::BuildError> {
//! let mut pb = ProgramBuilder::new();
//! let f = pb.declare_function("triple_sum", 1, true);
//! {
//!     let b = pb.function_mut(f);
//!     // sum = 0; for i in 0..n { sum += 3*i }
//!     let sum = b.alloc_local();
//!     let i = b.alloc_local();
//!     b.iconst(0).store(sum).iconst(0).store(i);
//!     let head = b.bind_new_label();
//!     let exit = b.new_label();
//!     b.load(i).load(0).if_icmp(CmpOp::Ge, exit);
//!     b.load(sum).iconst(3).load(i).imul().iadd().store(sum);
//!     b.iinc(i, 1).goto(head);
//!     b.bind(exit);
//!     b.load(sum).ret();
//! }
//! let program = pb.build(f)?;
//! assert!(program.function(f).block_count() >= 3);
//! # Ok(())
//! # }
//! ```

pub mod builder;
pub mod cfg;
pub mod class;
pub mod depth;
pub mod disasm;
pub mod error;
pub mod function;
pub mod ids;
pub mod instr;
pub mod program;
pub mod verifier;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use cfg::{Block, TerminatorKind};
pub use class::Class;
pub use depth::{max_stack, stack_depths};
pub use error::BuildError;
pub use function::Function;
pub use ids::{BlockId, ClassId, FuncId, Label};
pub use instr::{CmpOp, Instr, Intrinsic};
pub use program::Program;
pub use verifier::VerifyError;

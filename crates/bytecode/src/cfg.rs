//! Basic-block construction.
//!
//! A *basic block* here follows the direct-threaded-inlining model of the
//! paper (Piumarta & Riccardi selective inlining, as used by SableVM): a
//! maximal straight-line instruction sequence that the interpreter can
//! execute with a **single dispatch**. Consequently every control transfer
//! ends a block — conditional branches, `goto`, `tableswitch`, returns,
//! *and calls* (a call transfers control to the callee's entry block, and
//! the continuation after the call is a fresh block reached by a fresh
//! dispatch when the callee returns).
//!
//! Blocks are numbered densely per function in order of their first
//! instruction; `(FuncId, block index)` pairs ([`crate::BlockId`]) are the
//! vocabulary of the dynamic stream seen by the profiler.

use crate::instr::Instr;

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminatorKind {
    /// Two-way conditional branch (taken target + fall-through).
    CondBranch,
    /// Unconditional `goto`.
    Goto,
    /// Multi-way `tableswitch`.
    Switch,
    /// Static or virtual call; control resumes at the next block.
    Call,
    /// Return to the caller.
    Return,
}

/// A basic block: a half-open range `[start, end)` of instruction indices
/// within one function, plus its terminator classification and static
/// successors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: u32,
    /// One past the index of the last instruction.
    pub end: u32,
    /// Classification of the final instruction.
    pub kind: TerminatorKind,
    /// Intra-function successor *block indices*. For `CondBranch` this is
    /// `[taken, fall-through]`; for `Call` it is the continuation block;
    /// for `Return` it is empty (the dynamic successor lives in the
    /// caller).
    pub successors: Vec<u32>,
}

impl Block {
    /// Number of instructions in the block.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if the block contains no instructions. Never true
    /// for blocks produced by [`build_blocks`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Partitions `code` into basic blocks and computes, for every instruction,
/// the index of its containing block.
///
/// Returns `(blocks, block_of_instr)`. The code must be non-empty and all
/// branch targets in range — guaranteed for verified functions; this
/// function itself only debug-asserts those invariants.
///
/// Leaders are: instruction 0, every branch/switch target, and every
/// instruction following a terminator.
pub fn build_blocks(code: &[Instr]) -> (Vec<Block>, Vec<u32>) {
    assert!(!code.is_empty(), "cannot build blocks for empty code");
    let n = code.len();
    let mut leader = vec![false; n];
    leader[0] = true;
    for (i, ins) in code.iter().enumerate() {
        for t in ins.branch_targets() {
            // Out-of-range targets are a verifier error; tolerate them
            // here so verification gets to report them.
            if (t as usize) < n {
                leader[t as usize] = true;
            }
        }
        if ins.is_terminator() && i + 1 < n {
            leader[i + 1] = true;
        }
    }

    // First pass: block boundaries.
    let mut starts: Vec<u32> = Vec::new();
    for (i, &l) in leader.iter().enumerate() {
        if l {
            starts.push(i as u32);
        }
    }
    let mut block_of_instr = vec![0u32; n];
    let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
    for (bi, &s) in starts.iter().enumerate() {
        let e = starts.get(bi + 1).copied().unwrap_or(n as u32);
        for pc in s..e {
            block_of_instr[pc as usize] = bi as u32;
        }
        let last = &code[(e - 1) as usize];
        let kind = match last {
            Instr::IfICmp(..)
            | Instr::IfI(..)
            | Instr::IfFCmp(..)
            | Instr::IfNull(..)
            | Instr::IfNonNull(..) => TerminatorKind::CondBranch,
            Instr::Goto(..) => TerminatorKind::Goto,
            Instr::TableSwitch { .. } => TerminatorKind::Switch,
            Instr::InvokeStatic(..) | Instr::InvokeVirtual { .. } => TerminatorKind::Call,
            Instr::Return | Instr::ReturnVoid => TerminatorKind::Return,
            // A block can also end because the *next* instruction is a
            // leader (a join point); control simply falls through. We model
            // that as an implicit goto for dispatch-accounting purposes.
            _ => TerminatorKind::Goto,
        };
        blocks.push(Block {
            start: s,
            end: e,
            kind,
            successors: Vec::new(),
        });
    }

    // Second pass: successors (needs block_of_instr complete).
    for block in &mut blocks {
        let e = block.end;
        let last = &code[(e - 1) as usize];
        let mut succ: Vec<u32> = Vec::new();
        match block.kind {
            TerminatorKind::CondBranch => {
                let t = last.branch_targets()[0];
                if (t as usize) < n {
                    succ.push(block_of_instr[t as usize]);
                }
                // Fall-through past the end of code is a verifier error;
                // tolerate it here so the verifier gets to report it.
                if (e as usize) < n {
                    succ.push(block_of_instr[e as usize]);
                }
            }
            TerminatorKind::Goto => {
                if let Instr::Goto(t) = last {
                    if (*t as usize) < n {
                        succ.push(block_of_instr[*t as usize]);
                    }
                } else if (e as usize) < n {
                    // Implicit fall-through into the next leader.
                    succ.push(block_of_instr[e as usize]);
                }
            }
            TerminatorKind::Switch => {
                for t in last.branch_targets() {
                    if (t as usize) >= n {
                        continue;
                    }
                    let b = block_of_instr[t as usize];
                    if !succ.contains(&b) {
                        succ.push(b);
                    }
                }
            }
            TerminatorKind::Call => {
                if (e as usize) < n {
                    succ.push(block_of_instr[e as usize]);
                }
            }
            TerminatorKind::Return => {}
        }
        block.successors = succ;
    }

    (blocks, block_of_instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;
    use crate::FuncId;

    fn straight_line() -> Vec<Instr> {
        vec![
            Instr::IConst(1),
            Instr::IConst(2),
            Instr::IAdd,
            Instr::Return,
        ]
    }

    #[test]
    fn single_block_for_straight_line_code() {
        let (blocks, map) = build_blocks(&straight_line());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks[0].end, 4);
        assert_eq!(blocks[0].kind, TerminatorKind::Return);
        assert!(blocks[0].successors.is_empty());
        assert_eq!(map, vec![0, 0, 0, 0]);
    }

    #[test]
    fn conditional_branch_splits_three_ways() {
        // 0: iconst 0
        // 1: if_i eq -> 4
        // 2: iconst 1
        // 3: return
        // 4: iconst 2
        // 5: return
        let code = vec![
            Instr::IConst(0),
            Instr::IfI(CmpOp::Eq, 4),
            Instr::IConst(1),
            Instr::Return,
            Instr::IConst(2),
            Instr::Return,
        ];
        let (blocks, map) = build_blocks(&code);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].kind, TerminatorKind::CondBranch);
        // Taken target first, then fall-through.
        assert_eq!(blocks[0].successors, vec![2, 1]);
        assert_eq!(map, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn call_terminates_block_with_continuation_successor() {
        let code = vec![
            Instr::IConst(7),
            Instr::InvokeStatic(FuncId(1)),
            Instr::Pop,
            Instr::ReturnVoid,
        ];
        let (blocks, _) = build_blocks(&code);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].kind, TerminatorKind::Call);
        assert_eq!(blocks[0].successors, vec![1]);
        assert_eq!(blocks[1].kind, TerminatorKind::Return);
    }

    #[test]
    fn loop_back_edge_targets_head_block() {
        // 0: iconst 10        (b0)
        // 1: store 0          (b0 continues)
        // 2: load 0           (b1: loop head, branch target)
        // 3: if_i le -> 7
        // 4: iinc 0, -1       (b2)
        // 5: nop
        // 6: goto 2
        // 7: return_void      (b3)
        let code = vec![
            Instr::IConst(10),
            Instr::Store(0),
            Instr::Load(0),
            Instr::IfI(CmpOp::Le, 7),
            Instr::IInc(0, -1),
            Instr::Nop,
            Instr::Goto(2),
            Instr::ReturnVoid,
        ];
        let (blocks, _) = build_blocks(&code);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[1].kind, TerminatorKind::CondBranch);
        assert_eq!(blocks[1].successors, vec![3, 2]);
        assert_eq!(blocks[2].kind, TerminatorKind::Goto);
        assert_eq!(blocks[2].successors, vec![1]);
    }

    #[test]
    fn switch_successors_are_deduplicated() {
        let code = vec![
            Instr::IConst(1),
            Instr::TableSwitch {
                low: 0,
                targets: Box::new([3, 3, 5]),
                default: 5,
            },
            Instr::Nop,
            Instr::ReturnVoid,
            Instr::Nop,
            Instr::ReturnVoid,
        ];
        let (blocks, _) = build_blocks(&code);
        assert_eq!(blocks[0].kind, TerminatorKind::Switch);
        assert_eq!(blocks[0].successors.len(), 2);
    }

    #[test]
    fn fall_through_join_becomes_implicit_goto() {
        // Block split caused purely by instruction 2 being a branch target.
        let code = vec![
            Instr::IConst(0),
            Instr::IfI(CmpOp::Ne, 2), // target is the very next instruction
            Instr::IConst(1),
            Instr::Return,
        ];
        let (blocks, _) = build_blocks(&code);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].successors, vec![1, 1]);
    }

    #[test]
    fn block_len_and_emptiness() {
        let (blocks, _) = build_blocks(&straight_line());
        assert_eq!(blocks[0].len(), 4);
        assert!(!blocks[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_code_panics() {
        let _ = build_blocks(&[]);
    }
}

//! Operand-stack depth analysis (decode metadata).
//!
//! The verifier proves that every reachable pc has one consistent operand
//! stack depth (its abstract state is a per-pc stack of types), but it
//! does not report that depth. The pre-decoded interpreter needs the
//! **maximum** depth per function to size fixed frame regions inside its
//! frame arena, so this module re-runs the depth projection of that
//! analysis: a worklist over reachable pcs propagating a single integer.
//!
//! Only call on verified functions — the analysis `debug_assert!`s the
//! invariants (consistent depth at joins, no underflow) instead of
//! re-checking them.

use crate::ids::FuncId;
use crate::instr::{Instr, Intrinsic};
use crate::program::Program;

/// Net stack effect of an intrinsic: `(pops, pushes)`.
fn intrinsic_effect(i: Intrinsic) -> (u32, u32) {
    (i.arg_count() as u32, u32::from(i.returns_value()))
}

/// `(pops, pushes)` of one instruction, resolving call arity and result
/// kinds against the program (vtable slots for virtual calls).
fn stack_effect(program: &Program, ins: &Instr) -> (u32, u32) {
    match ins {
        Instr::IConst(_) | Instr::FConst(_) | Instr::ConstNull | Instr::Load(_) => (0, 1),
        Instr::Dup => (1, 2),
        Instr::Dup2 => (2, 4),
        Instr::Pop => (1, 0),
        Instr::Swap => (2, 2),
        Instr::Store(_) => (1, 0),
        Instr::IInc(..) | Instr::Nop | Instr::Goto(_) => (0, 0),
        Instr::IAdd
        | Instr::ISub
        | Instr::IMul
        | Instr::IDiv
        | Instr::IRem
        | Instr::IShl
        | Instr::IShr
        | Instr::IUShr
        | Instr::IAnd
        | Instr::IOr
        | Instr::IXor
        | Instr::FAdd
        | Instr::FSub
        | Instr::FMul
        | Instr::FDiv => (2, 1),
        Instr::INeg | Instr::FNeg | Instr::I2F | Instr::F2I => (1, 1),
        Instr::IfICmp(..) | Instr::IfFCmp(..) => (2, 0),
        Instr::IfI(..) | Instr::IfNull(_) | Instr::IfNonNull(_) | Instr::TableSwitch { .. } => {
            (1, 0)
        }
        Instr::InvokeStatic(callee) => {
            let f = program.function(*callee);
            (u32::from(f.num_params()), u32::from(f.returns_value()))
        }
        Instr::InvokeVirtual { slot, argc } => {
            (u32::from(*argc), u32::from(slot_returns(program, *slot)))
        }
        Instr::Return => (1, 0),
        Instr::ReturnVoid => (0, 0),
        Instr::New(_) => (0, 1),
        Instr::GetField(_) | Instr::ArrayLen => (1, 1),
        Instr::PutField(_) => (2, 0),
        Instr::NewArray => (1, 1),
        Instr::ALoad => (2, 1),
        Instr::AStore => (3, 0),
        Instr::Intrinsic(i) => intrinsic_effect(*i),
    }
}

/// Whether vtable slot `slot` returns a value, resolved by scanning the
/// class vtables (the verifier has already proven all classes agree).
fn slot_returns(program: &Program, slot: u16) -> bool {
    for class in program.classes() {
        if let Some(&fid) = class.vtable().get(slot as usize) {
            return program.function(fid).returns_value();
        }
    }
    // A virtual call through a slot no class declares cannot verify;
    // unreachable for verified programs.
    false
}

/// Operand-stack depth **at entry** to every pc of a verified function.
///
/// `result[pc]` is `Some(depth)` for reachable pcs and `None` for
/// unreachable ones. This is the full per-pc projection the verifier
/// proves consistent; [`max_stack`] folds it into a frame-sizing bound,
/// and the trace register-lowering pass uses it directly to seed its
/// abstract stack when a trace enters a function mid-flight.
///
/// # Panics
///
/// May panic (or return nonsense) on unverified code; debug builds assert
/// the verifier's consistency invariants.
pub fn stack_depths(program: &Program, func: FuncId) -> Vec<Option<u32>> {
    let code = program.function(func).code();
    let mut depth_at: Vec<Option<u32>> = vec![None; code.len()];
    let mut worklist: Vec<u32> = vec![0];
    depth_at[0] = Some(0);

    while let Some(pc) = worklist.pop() {
        let depth = depth_at[pc as usize].expect("worklist entries have depths");
        let ins = &code[pc as usize];
        let (pops, pushes) = stack_effect(program, ins);
        debug_assert!(depth >= pops, "verified code cannot underflow");
        let out = depth - pops + pushes;

        let mut propagate = |t: u32, d: u32, worklist: &mut Vec<u32>| match depth_at[t as usize] {
            None => {
                depth_at[t as usize] = Some(d);
                worklist.push(t);
            }
            Some(prev) => debug_assert_eq!(prev, d, "verified joins agree on depth"),
        };
        for t in ins.branch_targets() {
            propagate(t, out, &mut worklist);
        }
        if ins.falls_through() && !ins.is_return() {
            propagate(pc + 1, out, &mut worklist);
        }
    }
    depth_at
}

/// Maximum operand-stack depth of a verified function, over all reachable
/// pcs.
///
/// # Panics
///
/// May panic (or return nonsense) on unverified code; debug builds assert
/// the verifier's consistency invariants.
pub fn max_stack(program: &Program, func: FuncId) -> u32 {
    let code = program.function(func).code();
    let depth_at = stack_depths(program, func);
    let mut max = 0u32;
    for (pc, depth) in depth_at.iter().enumerate() {
        let Some(depth) = *depth else { continue };
        let (pops, pushes) = stack_effect(program, &code[pc]);
        max = max.max(depth).max(depth - pops + pushes);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpOp;

    #[test]
    fn straight_line_depth() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .iconst(3)
            .iadd()
            .iadd()
            .ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 3);
    }

    #[test]
    fn branches_join_at_equal_depth() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let other = b.new_label();
        let join = b.new_label();
        b.iconst(7).load(0).if_i(CmpOp::Ne, other);
        b.iconst(1).goto(join);
        b.bind(other);
        b.iconst(2).goto(join);
        b.bind(join);
        b.iadd().ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 2);
    }

    #[test]
    fn call_effects_use_callee_signature() {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare_function("leaf", 2, true);
        pb.function_mut(leaf).load(0).load(1).iadd().ret();
        let f = pb.declare_function("main", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .iconst(3)
            .invoke_static(leaf)
            .iadd()
            .ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 3);
        assert_eq!(max_stack(&p, leaf), 2);
    }

    #[test]
    fn virtual_slot_return_resolved_from_vtable() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_function("A.get", 1, true);
        pb.function_mut(m).iconst(9).ret();
        let f = pb.declare_function("main", 0, true);
        let a = pb.declare_class("A", None, 0);
        let slot = pb.add_method(a, m);
        pb.function_mut(f).new_obj(a).invoke_virtual(slot, 1).ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 1);
    }

    #[test]
    fn dup2_peak_counts_intermediate_height() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .dup2()
            .iadd()
            .swap()
            .isub()
            .imul()
            .ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 4);
    }

    #[test]
    fn unreachable_code_is_ignored() {
        // goto over a deep push sequence: the skipped code never raises
        // the reported depth... but the builder won't produce unreachable
        // code easily; model it with a branch whose arm returns early.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let deep = b.new_label();
        b.load(0).if_i(CmpOp::Ne, deep);
        b.iconst(0).ret();
        b.bind(deep);
        b.iconst(1)
            .iconst(2)
            .iconst(3)
            .iconst(4)
            .iadd()
            .iadd()
            .iadd()
            .ret();
        let p = pb.build(f).unwrap();
        assert_eq!(max_stack(&p, f), 4);
    }
}

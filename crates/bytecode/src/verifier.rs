//! Flow-sensitive bytecode verifier.
//!
//! Mirrors the role of the JVM's class-file verifier: every
//! [`crate::Program`] built through [`crate::ProgramBuilder`] is verified,
//! so the interpreter can dispense with per-instruction checks that would
//! distort the dispatch-cost measurements the paper depends on.
//!
//! The verifier runs an abstract interpretation over each function with a
//! small type lattice ([`AbstractType`]) and checks:
//!
//! * operand-stack safety: no underflow, matching depths at join points;
//! * type discipline: integer ops see ints, float ops floats, field and
//!   array ops references (values of statically unknown type — parameters,
//!   call results, field and array loads — are `Any` and accepted
//!   anywhere);
//! * structural sanity: branch targets in range, local slots in range,
//!   control never falls off the end of the code;
//! * call-site sanity: static callees exist with matching arity, and every
//!   virtual slot has a consistent `(arity, returns-value)` signature
//!   across all classes that define it.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::ids::FuncId;
use crate::instr::Instr;
use crate::program::Program;

/// Abstract value type used by the verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractType {
    /// Known integer.
    Int,
    /// Known float.
    Float,
    /// Known reference (or null).
    Ref,
    /// Statically unknown (parameter, call result, field/array load);
    /// accepted wherever any concrete type is expected.
    Any,
    /// The merge of incompatible types; may be moved around but not used
    /// as an operand.
    Conflict,
}

impl AbstractType {
    /// Merge at a control-flow join.
    fn merge(self, other: AbstractType) -> AbstractType {
        use AbstractType::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Any, x) | (x, Any) => {
                // Unknown absorbs into the concrete type's "unknown" side:
                // the result is still statically unknown.
                let _ = x;
                Any
            }
            _ => Conflict,
        }
    }

    /// Whether a value of this abstract type may be consumed where `want`
    /// is expected.
    fn accepts(self, want: AbstractType) -> bool {
        self == want || self == AbstractType::Any
    }
}

impl fmt::Display for AbstractType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbstractType::Int => "int",
            AbstractType::Float => "float",
            AbstractType::Ref => "ref",
            AbstractType::Any => "any",
            AbstractType::Conflict => "conflict",
        };
        f.write_str(s)
    }
}

/// Error detected by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// An instruction popped from an empty stack.
    StackUnderflow {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
    },
    /// An operand had the wrong type.
    TypeMismatch {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
        /// What the instruction required.
        expected: &'static str,
        /// What was on the stack.
        found: String,
    },
    /// Two paths reached the same instruction with different stack depths.
    DepthMismatch {
        /// Offending function name.
        func: String,
        /// Join-point instruction index.
        pc: u32,
        /// Depth on the first path.
        first: usize,
        /// Depth on the second path.
        second: usize,
    },
    /// A local slot index was out of range.
    BadLocal {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
        /// The out-of-range slot.
        slot: u16,
    },
    /// A branch target was out of range.
    TargetOutOfRange {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// Control can fall through past the last instruction.
    FallsOffEnd {
        /// Offending function name.
        func: String,
    },
    /// `Return`/`ReturnVoid` disagreed with the function signature.
    ReturnMismatch {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
    },
    /// A static call referenced a nonexistent function.
    BadCallee {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
        /// The bad callee id.
        callee: FuncId,
    },
    /// A virtual slot is not defined by any class, or classes disagree on
    /// its signature.
    BadVirtualSlot {
        /// The inconsistent slot.
        slot: u16,
        /// Explanation.
        reason: String,
    },
    /// A virtual call's `argc` disagreed with the slot's arity.
    VirtualArgcMismatch {
        /// Offending function name.
        func: String,
        /// Offending instruction index.
        pc: u32,
        /// The slot called.
        slot: u16,
        /// `argc` at the call site.
        argc: u16,
        /// Arity required by the slot's implementations.
        expected: u16,
    },
    /// A class referenced a nonexistent function or class.
    BadClassRef {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StackUnderflow { func, pc } => {
                write!(f, "stack underflow in `{func}` at pc {pc}")
            }
            VerifyError::TypeMismatch {
                func,
                pc,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in `{func}` at pc {pc}: expected {expected}, found {found}"
            ),
            VerifyError::DepthMismatch {
                func,
                pc,
                first,
                second,
            } => write!(
                f,
                "inconsistent stack depth in `{func}` at pc {pc}: {first} vs {second}"
            ),
            VerifyError::BadLocal { func, pc, slot } => {
                write!(f, "local slot {slot} out of range in `{func}` at pc {pc}")
            }
            VerifyError::TargetOutOfRange { func, pc, target } => {
                write!(f, "branch target {target} out of range in `{func}` at pc {pc}")
            }
            VerifyError::FallsOffEnd { func } => {
                write!(f, "control falls off the end of `{func}`")
            }
            VerifyError::ReturnMismatch { func, pc } => write!(
                f,
                "return kind disagrees with signature in `{func}` at pc {pc}"
            ),
            VerifyError::BadCallee { func, pc, callee } => {
                write!(f, "call to nonexistent {callee} in `{func}` at pc {pc}")
            }
            VerifyError::BadVirtualSlot { slot, reason } => {
                write!(f, "inconsistent virtual slot {slot}: {reason}")
            }
            VerifyError::VirtualArgcMismatch {
                func,
                pc,
                slot,
                argc,
                expected,
            } => write!(
                f,
                "virtual call in `{func}` at pc {pc} passes {argc} args but slot {slot} requires {expected}"
            ),
            VerifyError::BadClassRef { reason } => write!(f, "bad class reference: {reason}"),
        }
    }
}

impl Error for VerifyError {}

/// Per-slot virtual signature discovered from the vtables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotSig {
    argc: u16,
    returns_value: bool,
}

/// Verifies every function of the program plus cross-cutting class/vtable
/// consistency.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found.
pub fn verify_program(program: &Program) -> Result<(), VerifyError> {
    let slot_sigs = collect_slot_sigs(program)?;
    for func in program.functions() {
        verify_function(program, func.id(), &slot_sigs)?;
    }
    Ok(())
}

/// Collects and cross-checks the signature of every vtable slot.
fn collect_slot_sigs(program: &Program) -> Result<Vec<Option<SlotSig>>, VerifyError> {
    let mut sigs: Vec<Option<SlotSig>> = Vec::new();
    for class in program.classes() {
        if let Some(sup) = class.super_class() {
            if sup.index() >= program.classes().len() {
                return Err(VerifyError::BadClassRef {
                    reason: format!("class `{}` has nonexistent superclass", class.name()),
                });
            }
        }
        for (slot, &fid) in class.vtable().iter().enumerate() {
            if fid.index() >= program.functions().len() {
                return Err(VerifyError::BadClassRef {
                    reason: format!(
                        "class `{}` slot {slot} references nonexistent {fid}",
                        class.name()
                    ),
                });
            }
            let func = program.function(fid);
            let sig = SlotSig {
                argc: func.num_params(),
                returns_value: func.returns_value(),
            };
            if slot >= sigs.len() {
                sigs.resize(slot + 1, None);
            }
            match &sigs[slot] {
                None => sigs[slot] = Some(sig),
                Some(prev) if *prev == sig => {}
                Some(prev) => {
                    return Err(VerifyError::BadVirtualSlot {
                        slot: slot as u16,
                        reason: format!(
                            "`{}` declares ({}, returns={}) but an earlier class declared ({}, returns={})",
                            func.name(),
                            sig.argc,
                            sig.returns_value,
                            prev.argc,
                            prev.returns_value
                        ),
                    })
                }
            }
        }
    }
    Ok(sigs)
}

#[derive(Debug, Clone, PartialEq)]
struct AbstractState {
    stack: Vec<AbstractType>,
    locals: Vec<AbstractType>,
}

impl AbstractState {
    fn merge_into(&self, other: &mut AbstractState) -> Result<bool, (usize, usize)> {
        if self.stack.len() != other.stack.len() {
            return Err((other.stack.len(), self.stack.len()));
        }
        let mut changed = false;
        for (a, b) in other.stack.iter_mut().zip(&self.stack) {
            let m = a.merge(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        for (a, b) in other.locals.iter_mut().zip(&self.locals) {
            let m = a.merge(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        Ok(changed)
    }
}

/// Verifies a single function. `slot_sigs` comes from
/// [`collect_slot_sigs`]; tests may pass an empty slice for functions
/// without virtual calls.
fn verify_function(
    program: &Program,
    id: FuncId,
    slot_sigs: &[Option<SlotSig>],
) -> Result<(), VerifyError> {
    use AbstractType::*;

    let func = program.function(id);
    let code = func.code();
    let n = code.len() as u32;
    let fname = func.name();

    let mut states: Vec<Option<AbstractState>> = vec![None; code.len()];
    let entry = AbstractState {
        stack: Vec::new(),
        locals: {
            let mut l = vec![Any; func.num_locals() as usize];
            // Non-parameter locals start undefined; treating them as Any is
            // sound for this lattice (they hold VM-level zeroes at runtime).
            for slot in func.num_params()..func.num_locals() {
                l[slot as usize] = Any;
            }
            l
        },
    };
    states[0] = Some(entry);
    let mut worklist: VecDeque<u32> = VecDeque::new();
    worklist.push_back(0);

    // Helper macros keep the per-opcode transfer function readable.
    macro_rules! pop {
        ($st:expr, $pc:expr) => {
            $st.stack.pop().ok_or(VerifyError::StackUnderflow {
                func: fname.to_owned(),
                pc: $pc,
            })?
        };
    }
    macro_rules! expect {
        ($st:expr, $pc:expr, $want:expr, $what:expr) => {{
            let t = pop!($st, $pc);
            if !t.accepts($want) {
                return Err(VerifyError::TypeMismatch {
                    func: fname.to_owned(),
                    pc: $pc,
                    expected: $what,
                    found: t.to_string(),
                });
            }
        }};
    }

    while let Some(pc) = worklist.pop_front() {
        let mut st = states[pc as usize]
            .clone()
            .expect("worklist entries always have a state");
        let ins = &code[pc as usize];

        let check_target = |t: u32| -> Result<(), VerifyError> {
            if t >= n {
                Err(VerifyError::TargetOutOfRange {
                    func: fname.to_owned(),
                    pc,
                    target: t,
                })
            } else {
                Ok(())
            }
        };
        let check_local = |slot: u16| -> Result<(), VerifyError> {
            if slot >= func.num_locals() {
                Err(VerifyError::BadLocal {
                    func: fname.to_owned(),
                    pc,
                    slot,
                })
            } else {
                Ok(())
            }
        };

        // Transfer function: mutate `st`, collect successor pcs.
        let mut succs: Vec<u32> = Vec::with_capacity(2);
        let mut falls = ins.falls_through();
        match ins {
            Instr::IConst(_) => st.stack.push(Int),
            Instr::FConst(_) => st.stack.push(Float),
            Instr::ConstNull => st.stack.push(Ref),
            Instr::Dup => {
                let t = *st.stack.last().ok_or(VerifyError::StackUnderflow {
                    func: fname.to_owned(),
                    pc,
                })?;
                st.stack.push(t);
            }
            Instr::Dup2 => {
                let len = st.stack.len();
                if len < 2 {
                    return Err(VerifyError::StackUnderflow {
                        func: fname.to_owned(),
                        pc,
                    });
                }
                let a = st.stack[len - 2];
                let b = st.stack[len - 1];
                st.stack.push(a);
                st.stack.push(b);
            }
            Instr::Pop => {
                let _ = pop!(st, pc);
            }
            Instr::Swap => {
                let len = st.stack.len();
                if len < 2 {
                    return Err(VerifyError::StackUnderflow {
                        func: fname.to_owned(),
                        pc,
                    });
                }
                st.stack.swap(len - 1, len - 2);
            }
            Instr::Load(slot) => {
                check_local(*slot)?;
                st.stack.push(st.locals[*slot as usize]);
            }
            Instr::Store(slot) => {
                check_local(*slot)?;
                let t = pop!(st, pc);
                st.locals[*slot as usize] = t;
            }
            Instr::IInc(slot, _) => {
                check_local(*slot)?;
                let t = st.locals[*slot as usize];
                if !t.accepts(Int) {
                    return Err(VerifyError::TypeMismatch {
                        func: fname.to_owned(),
                        pc,
                        expected: "int local",
                        found: t.to_string(),
                    });
                }
                st.locals[*slot as usize] = Int;
            }
            Instr::IAdd
            | Instr::ISub
            | Instr::IMul
            | Instr::IDiv
            | Instr::IRem
            | Instr::IShl
            | Instr::IShr
            | Instr::IUShr
            | Instr::IAnd
            | Instr::IOr
            | Instr::IXor => {
                expect!(st, pc, Int, "int");
                expect!(st, pc, Int, "int");
                st.stack.push(Int);
            }
            Instr::INeg => {
                expect!(st, pc, Int, "int");
                st.stack.push(Int);
            }
            Instr::FAdd | Instr::FSub | Instr::FMul | Instr::FDiv => {
                expect!(st, pc, Float, "float");
                expect!(st, pc, Float, "float");
                st.stack.push(Float);
            }
            Instr::FNeg => {
                expect!(st, pc, Float, "float");
                st.stack.push(Float);
            }
            Instr::I2F => {
                expect!(st, pc, Int, "int");
                st.stack.push(Float);
            }
            Instr::F2I => {
                expect!(st, pc, Float, "float");
                st.stack.push(Int);
            }
            Instr::IfICmp(_, t) => {
                check_target(*t)?;
                expect!(st, pc, Int, "int");
                expect!(st, pc, Int, "int");
                succs.push(*t);
            }
            Instr::IfI(_, t) => {
                check_target(*t)?;
                expect!(st, pc, Int, "int");
                succs.push(*t);
            }
            Instr::IfFCmp(_, t) => {
                check_target(*t)?;
                expect!(st, pc, Float, "float");
                expect!(st, pc, Float, "float");
                succs.push(*t);
            }
            Instr::IfNull(t) | Instr::IfNonNull(t) => {
                check_target(*t)?;
                expect!(st, pc, Ref, "reference");
                succs.push(*t);
            }
            Instr::Goto(t) => {
                check_target(*t)?;
                succs.push(*t);
            }
            Instr::TableSwitch {
                targets, default, ..
            } => {
                expect!(st, pc, Int, "int");
                for t in targets.iter() {
                    check_target(*t)?;
                    succs.push(*t);
                }
                check_target(*default)?;
                succs.push(*default);
            }
            Instr::InvokeStatic(callee) => {
                if callee.index() >= program.functions().len() {
                    return Err(VerifyError::BadCallee {
                        func: fname.to_owned(),
                        pc,
                        callee: *callee,
                    });
                }
                let cf = program.function(*callee);
                for _ in 0..cf.num_params() {
                    let _ = pop!(st, pc);
                }
                if cf.returns_value() {
                    st.stack.push(Any);
                }
            }
            Instr::InvokeVirtual { slot, argc } => {
                let sig = slot_sigs
                    .get(*slot as usize)
                    .and_then(|s| *s)
                    .ok_or_else(|| VerifyError::BadVirtualSlot {
                        slot: *slot,
                        reason: "no class defines this slot".to_owned(),
                    })?;
                if sig.argc != *argc {
                    return Err(VerifyError::VirtualArgcMismatch {
                        func: fname.to_owned(),
                        pc,
                        slot: *slot,
                        argc: *argc,
                        expected: sig.argc,
                    });
                }
                if *argc == 0 {
                    return Err(VerifyError::VirtualArgcMismatch {
                        func: fname.to_owned(),
                        pc,
                        slot: *slot,
                        argc: 0,
                        expected: 1,
                    });
                }
                // Pop argc-1 plain arguments, then the receiver (deepest).
                for _ in 0..(*argc - 1) {
                    let _ = pop!(st, pc);
                }
                expect!(st, pc, Ref, "receiver reference");
                if sig.returns_value {
                    st.stack.push(Any);
                }
            }
            Instr::Return => {
                if !func.returns_value() {
                    return Err(VerifyError::ReturnMismatch {
                        func: fname.to_owned(),
                        pc,
                    });
                }
                let _ = pop!(st, pc);
            }
            Instr::ReturnVoid => {
                if func.returns_value() {
                    return Err(VerifyError::ReturnMismatch {
                        func: fname.to_owned(),
                        pc,
                    });
                }
            }
            Instr::New(class) => {
                if class.index() >= program.classes().len() {
                    return Err(VerifyError::BadClassRef {
                        reason: format!("`{fname}` pc {pc} allocates nonexistent {class}"),
                    });
                }
                st.stack.push(Ref);
            }
            Instr::GetField(_) => {
                expect!(st, pc, Ref, "object reference");
                st.stack.push(Any);
            }
            Instr::PutField(_) => {
                let _ = pop!(st, pc); // value (any type)
                expect!(st, pc, Ref, "object reference");
            }
            Instr::NewArray => {
                expect!(st, pc, Int, "length");
                st.stack.push(Ref);
            }
            Instr::ALoad => {
                expect!(st, pc, Int, "index");
                expect!(st, pc, Ref, "array reference");
                st.stack.push(Any);
            }
            Instr::AStore => {
                let _ = pop!(st, pc); // value
                expect!(st, pc, Int, "index");
                expect!(st, pc, Ref, "array reference");
            }
            Instr::ArrayLen => {
                expect!(st, pc, Ref, "array reference");
                st.stack.push(Int);
            }
            Instr::Intrinsic(i) => {
                let want = if i.is_float() { Float } else { Int };
                for _ in 0..i.arg_count() {
                    expect!(st, pc, want, if i.is_float() { "float" } else { "int" });
                }
                if i.returns_value() {
                    st.stack.push(want);
                }
            }
            Instr::Nop => {}
        }

        if matches!(ins, Instr::Return | Instr::ReturnVoid) {
            falls = false;
        }
        if falls {
            if pc + 1 >= n {
                return Err(VerifyError::FallsOffEnd {
                    func: fname.to_owned(),
                });
            }
            succs.push(pc + 1);
        }

        for s in succs {
            match &mut states[s as usize] {
                None => {
                    states[s as usize] = Some(st.clone());
                    worklist.push_back(s);
                }
                Some(existing) => match st.merge_into(existing) {
                    Ok(true) => worklist.push_back(s),
                    Ok(false) => {}
                    Err((first, second)) => {
                        return Err(VerifyError::DepthMismatch {
                            func: fname.to_owned(),
                            pc: s,
                            first,
                            second,
                        })
                    }
                },
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::error::BuildError;
    use crate::instr::CmpOp;

    fn expect_verify_err(pb: ProgramBuilder, entry: FuncId) -> VerifyError {
        match pb.build(entry) {
            Err(BuildError::Verify(e)) => e,
            other => panic!("expected verify error, got {other:?}"),
        }
    }

    #[test]
    fn accepts_well_typed_arith() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 2, true);
        pb.function_mut(f).load(0).load(1).iadd().ret();
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn rejects_stack_underflow() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).pop().ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn rejects_int_float_confusion() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, true);
        pb.function_mut(f).iconst(1).fconst(2.0).iadd().ret();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_depth_mismatch_at_join() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let b = pb.function_mut(f);
        let join = b.new_label();
        let other = b.new_label();
        b.load(0).if_i(CmpOp::Eq, other);
        b.iconst(1).iconst(2).goto(join); // depth 2 at join
        b.bind(other);
        b.iconst(1).goto(join); // depth 1 at join
        b.bind(join);
        b.ret();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::DepthMismatch { .. }
        ));
    }

    #[test]
    fn rejects_bad_local_slot() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).load(5).pop().ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::BadLocal { .. }
        ));
    }

    #[test]
    fn rejects_fall_off_end() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).iconst(1).pop();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::FallsOffEnd { .. }
        ));
    }

    #[test]
    fn rejects_return_kind_mismatch() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).iconst(1).ret();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::ReturnMismatch { .. }
        ));
    }

    #[test]
    fn rejects_bad_static_callee() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).invoke_static(FuncId(9)).ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::BadCallee { .. }
        ));
    }

    #[test]
    fn rejects_static_call_arity_underflow() {
        let mut pb = ProgramBuilder::new();
        let g = pb.declare_function("g", 2, false);
        pb.function_mut(g).ret_void();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f).iconst(1).invoke_static(g).ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn rejects_undefined_virtual_slot() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f)
            .const_null()
            .invoke_virtual(0, 1)
            .ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::BadVirtualSlot { .. }
        ));
    }

    #[test]
    fn rejects_inconsistent_virtual_signatures() {
        let mut pb = ProgramBuilder::new();
        let m1 = pb.declare_function("A.m", 1, true);
        pb.function_mut(m1).iconst(1).ret();
        let m2 = pb.declare_function("B.m", 2, true); // different arity
        pb.function_mut(m2).iconst(2).ret();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).ret_void();
        let a = pb.declare_class("A", None, 0);
        pb.add_method(a, m1);
        let b = pb.declare_class("B", None, 0);
        pb.add_method(b, m2);
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::BadVirtualSlot { .. }
        ));
    }

    #[test]
    fn rejects_virtual_argc_mismatch() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_function("A.m", 2, false);
        pb.function_mut(m).ret_void();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f)
            .const_null()
            .invoke_virtual(0, 1)
            .ret_void();
        let a = pb.declare_class("A", None, 0);
        pb.add_method(a, m);
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::VirtualArgcMismatch { .. }
        ));
    }

    #[test]
    fn accepts_virtual_call_with_matching_signature() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_function("A.m", 2, true);
        pb.function_mut(m).load(1).ret();
        let f = pb.declare_function("main", 0, false);
        let a = pb.declare_class("A", None, 0);
        pb.add_method(a, m);
        pb.function_mut(f)
            .new_obj(a)
            .iconst(9)
            .invoke_virtual(0, 2)
            .pop()
            .ret_void();
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn accepts_loop_with_consistent_state() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("loop", 1, true);
        let b = pb.function_mut(f);
        let acc = b.alloc_local();
        b.iconst(0).store(acc);
        let head = b.bind_new_label();
        let exit = b.new_label();
        b.load(0).if_i(CmpOp::Le, exit);
        b.load(acc).load(0).iadd().store(acc);
        b.iinc(0, -1).goto(head);
        b.bind(exit);
        b.load(acc).ret();
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn rejects_ref_where_int_expected_in_branch() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        let b = pb.function_mut(f);
        let l = b.new_label();
        b.const_null().if_i(CmpOp::Eq, l);
        b.bind(l);
        b.ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn rejects_iinc_on_float_local() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        let b = pb.function_mut(f);
        let x = b.alloc_local();
        b.fconst(1.0).store(x).iinc(x, 1).ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn any_type_flows_through_field_and_array_ops() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, true);
        let c = pb.declare_class("C", None, 1);
        let _ = c;
        let b = pb.function_mut(f);
        // param 0 is Any; use it as an int after an array round-trip.
        b.iconst(4).new_array(); // arr
        b.dup().iconst(0).load(0).astore(); // arr[0] = p0
        b.iconst(0).aload(); // push arr[0] (Any)
        b.iconst(1).iadd().ret(); // used as int: OK
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn rejects_switch_target_out_of_range() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 1, false);
        {
            let b = pb.function_mut(f);
            let ok = b.new_label();
            b.load(0).table_switch(0, &[ok], ok);
            b.bind(ok);
            b.ret_void();
        }
        // Valid via builder; now hand-build a raw out-of-range switch.
        let _ = pb.build(f).unwrap();
        use crate::function::Function;
        use crate::program::Program;
        let bad = Function::from_parts(
            "bad".into(),
            FuncId(0),
            1,
            1,
            false,
            vec![
                Instr::Load(0),
                Instr::TableSwitch {
                    low: 0,
                    targets: Box::new([99]),
                    default: 3,
                },
                Instr::Nop,
                Instr::ReturnVoid,
            ],
        );
        let p = Program::from_parts(vec![bad], vec![], FuncId(0));
        assert!(matches!(
            verify_program(&p),
            Err(VerifyError::TargetOutOfRange { target: 99, .. })
        ));
    }

    #[test]
    fn dup2_requires_two_values_and_preserves_types() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .fconst(2.0)
            .dup2() // int float int float
            .fadd() // pops two floats? top two are (int, float) -> error
            .ret();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::TypeMismatch { .. }
        ));

        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("g", 0, true);
        pb.function_mut(f)
            .iconst(1)
            .iconst(2)
            .dup2()
            .iadd()
            .iadd()
            .iadd()
            .ret();
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn underflowing_dup2_and_swap_are_rejected() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        pb.function_mut(f)
            .iconst(1)
            .dup2()
            .pop()
            .pop()
            .pop()
            .ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::StackUnderflow { .. }
        ));
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("g", 0, false);
        pb.function_mut(f).iconst(1).swap().pop().ret_void();
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::StackUnderflow { .. }
        ));
    }

    #[test]
    fn unreachable_code_is_permitted() {
        // Code after an unconditional return is never verified (matching
        // the JVM, which only checks reachable paths).
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        let b = pb.function_mut(f);
        b.ret_void();
        b.pop().pop().ret_void(); // would underflow if reachable
        assert!(pb.build(f).is_ok());
    }

    #[test]
    fn conflicting_local_types_are_fine_until_used() {
        // A local that is int on one path and float on the other may be
        // stored/ignored, but using it as an int must fail.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("ok", 1, false);
        {
            let b = pb.function_mut(f);
            let x = b.alloc_local();
            let other = b.new_label();
            let join = b.new_label();
            b.load(0).if_i(CmpOp::Eq, other);
            b.iconst(1).store(x).goto(join);
            b.bind(other);
            b.fconst(1.0).store(x);
            b.bind(join);
            b.ret_void(); // never uses x: fine
        }
        assert!(pb.build(f).is_ok());

        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("bad", 1, true);
        {
            let b = pb.function_mut(f);
            let x = b.alloc_local();
            let other = b.new_label();
            let join = b.new_label();
            b.load(0).if_i(CmpOp::Eq, other);
            b.iconst(1).store(x).goto(join);
            b.bind(other);
            b.fconst(1.0).store(x);
            b.bind(join);
            b.load(x).iconst(1).iadd().ret(); // uses conflicted x as int
        }
        assert!(matches!(
            expect_verify_err(pb, f),
            VerifyError::TypeMismatch { .. }
        ));
    }

    #[test]
    fn merge_table_is_sound() {
        use AbstractType::*;
        assert_eq!(Int.merge(Int), Int);
        assert_eq!(Int.merge(Float), Conflict);
        assert_eq!(Int.merge(Any), Any);
        assert_eq!(Any.merge(Ref), Any);
        assert_eq!(Conflict.merge(Int), Conflict);
        assert!(Any.accepts(Int));
        assert!(!Conflict.accepts(Int));
    }
}

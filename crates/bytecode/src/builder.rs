//! Label-based assembler for building programs.
//!
//! [`ProgramBuilder`] owns function and class declarations; each declared
//! function exposes a chainable [`FunctionBuilder`] for emitting code with
//! forward-reference [`Label`]s. [`ProgramBuilder::build`] resolves labels,
//! constructs the block tables and runs the [`crate::verifier`], so any
//! [`crate::Program`] in existence is verified.
//!
//! ```
//! use jvm_bytecode::{ProgramBuilder, CmpOp, Intrinsic};
//!
//! # fn main() -> Result<(), jvm_bytecode::BuildError> {
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare_function("main", 0, false);
//! let b = pb.function_mut(main);
//! b.iconst(41).iconst(1).iadd().intrinsic(Intrinsic::Checksum);
//! b.ret_void();
//! let program = pb.build(main)?;
//! assert_eq!(program.function(main).name(), "main");
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::class::Class;
use crate::error::BuildError;
use crate::function::Function;
use crate::ids::{ClassId, FuncId, Label};
use crate::instr::{CmpOp, Instr, Intrinsic};
use crate::program::Program;
use crate::verifier;

/// Builder for one function's code. Obtained from
/// [`ProgramBuilder::function_mut`].
///
/// All emit methods return `&mut Self` for chaining. Branch targets are
/// [`Label`]s; they may be used before being bound, and every used label
/// must be bound exactly once before [`ProgramBuilder::build`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    num_params: u16,
    num_locals: u16,
    returns_value: bool,
    code: Vec<Instr>,
    /// Bound position of each label, if any.
    labels: Vec<Option<u32>>,
}

impl FunctionBuilder {
    fn new(name: String, num_params: u16, returns_value: bool) -> Self {
        FunctionBuilder {
            name,
            num_params,
            num_locals: num_params,
            returns_value,
            code: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current number of emitted instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` if no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Allocates a fresh local slot and returns its index.
    pub fn alloc_local(&mut self) -> u16 {
        let slot = self.num_locals;
        self.num_locals = self
            .num_locals
            .checked_add(1)
            .expect("too many locals in one function");
        slot
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Binds `label` to the position of the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label belongs to another builder (index out of range).
    /// Rebinding is reported at build time as [`BuildError::RebindLabel`].
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let slot = &mut self.labels[label.0 as usize];
        if slot.is_some() {
            // Mark as double-bound with a sentinel detected at finish time:
            // we record u32::MAX which is never a valid position.
            *slot = Some(u32::MAX);
        } else {
            *slot = Some(self.code.len() as u32);
        }
        self
    }

    /// Creates a fresh label and binds it here; convenient for loop heads.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    fn emit(&mut self, i: Instr) -> &mut Self {
        self.code.push(i);
        self
    }

    // --- constants & stack ------------------------------------------------

    /// Push an integer constant.
    pub fn iconst(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::IConst(v))
    }
    /// Push a float constant.
    pub fn fconst(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::FConst(v))
    }
    /// Push the null reference.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Instr::ConstNull)
    }
    /// Duplicate the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Instr::Dup)
    }
    /// Duplicate the top two stack slots.
    pub fn dup2(&mut self) -> &mut Self {
        self.emit(Instr::Dup2)
    }
    /// Discard the top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Instr::Pop)
    }
    /// Swap the top two stack slots.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Instr::Swap)
    }

    // --- locals -----------------------------------------------------------

    /// Push local `slot`.
    pub fn load(&mut self, slot: u16) -> &mut Self {
        self.emit(Instr::Load(slot))
    }
    /// Pop into local `slot`.
    pub fn store(&mut self, slot: u16) -> &mut Self {
        self.emit(Instr::Store(slot))
    }
    /// Add `delta` to integer local `slot`.
    pub fn iinc(&mut self, slot: u16, delta: i32) -> &mut Self {
        self.emit(Instr::IInc(slot, delta))
    }

    // --- integer arithmetic -----------------------------------------------

    /// Integer add.
    pub fn iadd(&mut self) -> &mut Self {
        self.emit(Instr::IAdd)
    }
    /// Integer subtract.
    pub fn isub(&mut self) -> &mut Self {
        self.emit(Instr::ISub)
    }
    /// Integer multiply.
    pub fn imul(&mut self) -> &mut Self {
        self.emit(Instr::IMul)
    }
    /// Integer divide.
    pub fn idiv(&mut self) -> &mut Self {
        self.emit(Instr::IDiv)
    }
    /// Integer remainder.
    pub fn irem(&mut self) -> &mut Self {
        self.emit(Instr::IRem)
    }
    /// Integer negate.
    pub fn ineg(&mut self) -> &mut Self {
        self.emit(Instr::INeg)
    }
    /// Shift left.
    pub fn ishl(&mut self) -> &mut Self {
        self.emit(Instr::IShl)
    }
    /// Arithmetic shift right.
    pub fn ishr(&mut self) -> &mut Self {
        self.emit(Instr::IShr)
    }
    /// Logical shift right.
    pub fn iushr(&mut self) -> &mut Self {
        self.emit(Instr::IUShr)
    }
    /// Bitwise and.
    pub fn iand(&mut self) -> &mut Self {
        self.emit(Instr::IAnd)
    }
    /// Bitwise or.
    pub fn ior(&mut self) -> &mut Self {
        self.emit(Instr::IOr)
    }
    /// Bitwise xor.
    pub fn ixor(&mut self) -> &mut Self {
        self.emit(Instr::IXor)
    }

    // --- float arithmetic & conversions -------------------------------------

    /// Float add.
    pub fn fadd(&mut self) -> &mut Self {
        self.emit(Instr::FAdd)
    }
    /// Float subtract.
    pub fn fsub(&mut self) -> &mut Self {
        self.emit(Instr::FSub)
    }
    /// Float multiply.
    pub fn fmul(&mut self) -> &mut Self {
        self.emit(Instr::FMul)
    }
    /// Float divide.
    pub fn fdiv(&mut self) -> &mut Self {
        self.emit(Instr::FDiv)
    }
    /// Float negate.
    pub fn fneg(&mut self) -> &mut Self {
        self.emit(Instr::FNeg)
    }
    /// Int → float conversion.
    pub fn i2f(&mut self) -> &mut Self {
        self.emit(Instr::I2F)
    }
    /// Float → int conversion.
    pub fn f2i(&mut self) -> &mut Self {
        self.emit(Instr::F2I)
    }

    // --- control flow -------------------------------------------------------

    /// Pop two ints, branch to `target` if `op` holds.
    pub fn if_icmp(&mut self, op: CmpOp, target: Label) -> &mut Self {
        self.emit(Instr::IfICmp(op, target.0))
    }
    /// Pop one int, branch to `target` if `op` holds against zero.
    pub fn if_i(&mut self, op: CmpOp, target: Label) -> &mut Self {
        self.emit(Instr::IfI(op, target.0))
    }
    /// Pop two floats, branch to `target` if `op` holds.
    pub fn if_fcmp(&mut self, op: CmpOp, target: Label) -> &mut Self {
        self.emit(Instr::IfFCmp(op, target.0))
    }
    /// Pop a reference, branch if null.
    pub fn if_null(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::IfNull(target.0))
    }
    /// Pop a reference, branch if non-null.
    pub fn if_nonnull(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::IfNonNull(target.0))
    }
    /// Unconditional branch.
    pub fn goto(&mut self, target: Label) -> &mut Self {
        self.emit(Instr::Goto(target.0))
    }
    /// Multi-way branch on the popped int.
    pub fn table_switch(&mut self, low: i64, targets: &[Label], default: Label) -> &mut Self {
        self.emit(Instr::TableSwitch {
            low,
            targets: targets.iter().map(|l| l.0).collect(),
            default: default.0,
        })
    }

    // --- calls & returns ------------------------------------------------------

    /// Direct call.
    pub fn invoke_static(&mut self, f: FuncId) -> &mut Self {
        self.emit(Instr::InvokeStatic(f))
    }
    /// Virtual call through vtable `slot`, passing `argc` arguments
    /// including the receiver.
    pub fn invoke_virtual(&mut self, slot: u16, argc: u16) -> &mut Self {
        self.emit(Instr::InvokeVirtual { slot, argc })
    }
    /// Return the top of stack.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Return)
    }
    /// Return with no value.
    pub fn ret_void(&mut self) -> &mut Self {
        self.emit(Instr::ReturnVoid)
    }

    // --- objects & arrays -------------------------------------------------------

    /// Allocate an object.
    pub fn new_obj(&mut self, class: ClassId) -> &mut Self {
        self.emit(Instr::New(class))
    }
    /// Load field `n` from the popped object.
    pub fn get_field(&mut self, n: u16) -> &mut Self {
        self.emit(Instr::GetField(n))
    }
    /// Store the popped value into field `n` of the next popped object.
    pub fn put_field(&mut self, n: u16) -> &mut Self {
        self.emit(Instr::PutField(n))
    }
    /// Allocate an array of the popped length.
    pub fn new_array(&mut self) -> &mut Self {
        self.emit(Instr::NewArray)
    }
    /// Array element load.
    pub fn aload(&mut self) -> &mut Self {
        self.emit(Instr::ALoad)
    }
    /// Array element store.
    pub fn astore(&mut self) -> &mut Self {
        self.emit(Instr::AStore)
    }
    /// Array length.
    pub fn array_len(&mut self) -> &mut Self {
        self.emit(Instr::ArrayLen)
    }

    // --- misc ----------------------------------------------------------------

    /// Native intrinsic call.
    pub fn intrinsic(&mut self, i: Intrinsic) -> &mut Self {
        self.emit(Instr::Intrinsic(i))
    }
    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// Resolves labels and produces the finished [`Function`].
    fn finish(mut self, id: FuncId) -> Result<Function, BuildError> {
        if self.code.is_empty() {
            return Err(BuildError::MissingBody { func: self.name });
        }
        // Validate bindings.
        let mut resolved: Vec<u32> = Vec::with_capacity(self.labels.len());
        for (i, l) in self.labels.iter().enumerate() {
            match l {
                None => {
                    // Unbound labels are only an error if referenced; we
                    // check references below, so record a sentinel.
                    resolved.push(u32::MAX);
                }
                Some(u32::MAX) => {
                    return Err(BuildError::RebindLabel {
                        func: self.name,
                        label: i as u32,
                    })
                }
                Some(pos) => {
                    if *pos as usize >= self.code.len() {
                        // Bound past the last instruction: can only be the
                        // target of a branch to "end", which has no landing
                        // instruction. Report as unbound.
                        return Err(BuildError::UnboundLabel {
                            func: self.name,
                            label: i as u32,
                        });
                    }
                    resolved.push(*pos);
                }
            }
        }
        let resolve = |raw: u32, func: &str| -> Result<u32, BuildError> {
            match resolved.get(raw as usize) {
                Some(&pos) if pos != u32::MAX => Ok(pos),
                _ => Err(BuildError::UnboundLabel {
                    func: func.to_owned(),
                    label: raw,
                }),
            }
        };
        for ins in &mut self.code {
            match ins {
                Instr::IfICmp(_, t)
                | Instr::IfI(_, t)
                | Instr::IfFCmp(_, t)
                | Instr::IfNull(t)
                | Instr::IfNonNull(t)
                | Instr::Goto(t) => *t = resolve(*t, &self.name)?,
                Instr::TableSwitch {
                    targets, default, ..
                } => {
                    for t in targets.iter_mut() {
                        *t = resolve(*t, &self.name)?;
                    }
                    *default = resolve(*default, &self.name)?;
                }
                _ => {}
            }
        }
        Ok(Function::from_parts(
            self.name,
            id,
            self.num_params,
            self.num_locals,
            self.returns_value,
            self.code,
        ))
    }
}

#[derive(Debug)]
struct ClassDecl {
    name: String,
    super_class: Option<ClassId>,
    num_fields: u16,
    vtable: Vec<FuncId>,
}

/// Builder for a whole [`Program`].
///
/// Functions and classes are declared up front (so they can reference each
/// other), then function bodies are emitted through [`FunctionBuilder`]s,
/// and finally [`ProgramBuilder::build`] resolves, verifies and freezes the
/// program.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<FunctionBuilder>,
    classes: Vec<ClassDecl>,
    func_names: HashMap<String, FuncId>,
    class_names: HashMap<String, ClassId>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a function and returns its id. The body is emitted through
    /// [`Self::function_mut`].
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared.
    pub fn declare_function(&mut self, name: &str, num_params: u16, returns_value: bool) -> FuncId {
        assert!(
            !self.func_names.contains_key(name),
            "function `{name}` declared twice"
        );
        let id = FuncId(self.functions.len() as u32);
        self.func_names.insert(name.to_owned(), id);
        self.functions.push(FunctionBuilder::new(
            name.to_owned(),
            num_params,
            returns_value,
        ));
        id
    }

    /// The builder for a declared function's body.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn function_mut(&mut self, id: FuncId) -> &mut FunctionBuilder {
        &mut self.functions[id.index()]
    }

    /// Looks up a declared function by name.
    pub fn func_id(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// Declares a class with `own_fields` fields of its own (inherited
    /// fields are added automatically) and an inherited copy of the
    /// superclass vtable. The superclass, if any, must have been declared
    /// earlier.
    ///
    /// # Panics
    ///
    /// Panics if the name is already declared or the superclass id is out
    /// of range.
    pub fn declare_class(
        &mut self,
        name: &str,
        super_class: Option<ClassId>,
        own_fields: u16,
    ) -> ClassId {
        assert!(
            !self.class_names.contains_key(name),
            "class `{name}` declared twice"
        );
        let (inherited_fields, vtable) = match super_class {
            Some(s) => {
                let sup = &self.classes[s.index()];
                (sup.num_fields, sup.vtable.clone())
            }
            None => (0, Vec::new()),
        };
        let id = ClassId(self.classes.len() as u32);
        self.class_names.insert(name.to_owned(), id);
        self.classes.push(ClassDecl {
            name: name.to_owned(),
            super_class,
            num_fields: inherited_fields + own_fields,
            vtable,
        });
        id
    }

    /// Looks up a declared class by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }

    /// Appends a new virtual method to the class, returning its vtable
    /// slot. Subclasses declared *after* this call inherit it.
    pub fn add_method(&mut self, class: ClassId, func: FuncId) -> u16 {
        let vt = &mut self.classes[class.index()].vtable;
        let slot = vt.len() as u16;
        vt.push(func);
        slot
    }

    /// Overrides an inherited vtable slot with a different implementation.
    ///
    /// # Panics
    ///
    /// Panics if the slot does not exist on the class.
    pub fn override_method(&mut self, class: ClassId, slot: u16, func: FuncId) {
        let vt = &mut self.classes[class.index()].vtable;
        vt[slot as usize] = func;
    }

    /// Resolves labels, builds block tables, verifies, and returns the
    /// finished program with `entry` as its entry point.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if any used label is unbound or double-bound,
    /// a declared function has no body, the entry id is invalid, or the
    /// program fails verification.
    pub fn build(self, entry: FuncId) -> Result<Program, BuildError> {
        if entry.index() >= self.functions.len() {
            return Err(BuildError::BadEntry { func: entry });
        }
        let mut functions = Vec::with_capacity(self.functions.len());
        for (i, fb) in self.functions.into_iter().enumerate() {
            functions.push(fb.finish(FuncId(i as u32))?);
        }
        let classes = self
            .classes
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                Class::from_parts(
                    c.name,
                    ClassId(i as u32),
                    c.super_class,
                    c.num_fields,
                    c.vtable,
                )
            })
            .collect();
        let program = Program::from_parts(functions, classes, entry);
        verifier::verify_program(&program)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal_program() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).ret_void();
        let p = pb.build(f).unwrap();
        assert_eq!(p.entry(), f);
        assert_eq!(p.total_blocks(), 1);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let l = b.new_label();
        b.goto(l); // never bound
        b.ret_void();
        match pb.build(f) {
            Err(BuildError::UnboundLabel { func, .. }) => assert_eq!(func, "main"),
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn label_bound_at_end_of_code_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let l = b.new_label();
        b.goto(l);
        b.ret_void();
        b.bind(l); // binds past the last instruction
        assert!(matches!(pb.build(f), Err(BuildError::UnboundLabel { .. })));
    }

    #[test]
    fn rebinding_a_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        let b = pb.function_mut(f);
        let l = b.new_label();
        b.bind(l);
        b.nop();
        b.bind(l);
        b.ret_void();
        assert!(matches!(pb.build(f), Err(BuildError::RebindLabel { .. })));
    }

    #[test]
    fn missing_body_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).ret_void();
        let _g = pb.declare_function("empty", 0, false);
        assert!(matches!(pb.build(f), Err(BuildError::MissingBody { .. })));
    }

    #[test]
    fn bad_entry_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).ret_void();
        assert!(matches!(
            pb.build(FuncId(7)),
            Err(BuildError::BadEntry { .. })
        ));
    }

    #[test]
    fn class_inheritance_flattens_fields_and_vtable() {
        let mut pb = ProgramBuilder::new();
        let base_m = pb.declare_function("Base.m", 1, true);
        pb.function_mut(base_m).iconst(1).ret();
        let sub_m = pb.declare_function("Sub.m", 1, true);
        pb.function_mut(sub_m).iconst(2).ret();
        let main = pb.declare_function("main", 0, false);
        pb.function_mut(main).ret_void();

        let base = pb.declare_class("Base", None, 2);
        let slot = pb.add_method(base, base_m);
        let sub = pb.declare_class("Sub", Some(base), 3);
        pb.override_method(sub, slot, sub_m);

        let p = pb.build(main).unwrap();
        assert_eq!(p.class(base).num_fields(), 2);
        assert_eq!(p.class(sub).num_fields(), 5);
        assert_eq!(p.class(base).resolve(slot), base_m);
        assert_eq!(p.class(sub).resolve(slot), sub_m);
        assert_eq!(p.class(sub).super_class(), Some(base));
    }

    #[test]
    fn func_and_class_name_lookup() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("main", 0, false);
        pb.function_mut(f).ret_void();
        let c = pb.declare_class("C", None, 0);
        assert_eq!(pb.func_id("main"), Some(f));
        assert_eq!(pb.class_id("C"), Some(c));
        assert_eq!(pb.func_id("nope"), None);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_function_name_panics() {
        let mut pb = ProgramBuilder::new();
        pb.declare_function("f", 0, false);
        pb.declare_function("f", 0, false);
    }

    #[test]
    fn builder_len_tracking() {
        let mut pb = ProgramBuilder::new();
        let f = pb.declare_function("f", 0, false);
        let b = pb.function_mut(f);
        assert!(b.is_empty());
        b.iconst(1).pop();
        assert_eq!(b.len(), 2);
        assert_eq!(b.name(), "f");
    }
}

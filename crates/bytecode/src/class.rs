//! Class model: field layout and vtables for virtual dispatch.
//!
//! Java's frequent virtual calls (the paper cites one virtual call per ~9
//! bytecodes) are central to why branch-correlation profiling beats plain
//! Dynamo-style speculation, so the substrate supports real receiver-class
//! polymorphism: each class carries a flattened vtable mapping method
//! *slots* to concrete [`crate::FuncId`]s, and `invokevirtual` dispatches
//! through the receiver's table.

use crate::ids::{ClassId, FuncId};

/// A class: a contiguous field layout plus a flattened vtable.
///
/// Inheritance is resolved by [`crate::ProgramBuilder`] at construction
/// time — a subclass starts from a copy of its superclass's vtable and
/// field count, then overrides/extends them — so the runtime never needs to
/// walk a superclass chain.
#[derive(Debug, Clone)]
pub struct Class {
    name: String,
    id: ClassId,
    super_class: Option<ClassId>,
    num_fields: u16,
    vtable: Vec<FuncId>,
}

impl Class {
    /// Creates a class from resolved parts. Used by the builder.
    pub fn from_parts(
        name: String,
        id: ClassId,
        super_class: Option<ClassId>,
        num_fields: u16,
        vtable: Vec<FuncId>,
    ) -> Self {
        Class {
            name,
            id,
            super_class,
            num_fields,
            vtable,
        }
    }

    /// The class name (unique within its program).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The class id within its program.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// The direct superclass, if any.
    pub fn super_class(&self) -> Option<ClassId> {
        self.super_class
    }

    /// Total number of instance fields (including inherited ones).
    pub fn num_fields(&self) -> u16 {
        self.num_fields
    }

    /// The flattened vtable: `vtable()[slot]` is the concrete function
    /// invoked by `invokevirtual slot` on an instance of this class.
    pub fn vtable(&self) -> &[FuncId] {
        &self.vtable
    }

    /// Resolves a vtable slot to a concrete function.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range — verified programs never do this.
    #[inline]
    pub fn resolve(&self, slot: u16) -> FuncId {
        self.vtable[slot as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_parts() {
        let c = Class::from_parts(
            "Point".into(),
            ClassId(2),
            Some(ClassId(0)),
            3,
            vec![FuncId(4), FuncId(9)],
        );
        assert_eq!(c.name(), "Point");
        assert_eq!(c.id(), ClassId(2));
        assert_eq!(c.super_class(), Some(ClassId(0)));
        assert_eq!(c.num_fields(), 3);
        assert_eq!(c.vtable().len(), 2);
        assert_eq!(c.resolve(1), FuncId(9));
    }

    #[test]
    fn root_class_has_no_super() {
        let c = Class::from_parts("Object".into(), ClassId(0), None, 0, vec![]);
        assert!(c.super_class().is_none());
        assert_eq!(c.num_fields(), 0);
    }

    #[test]
    #[should_panic]
    fn resolve_out_of_range_panics() {
        let c = Class::from_parts("C".into(), ClassId(0), None, 0, vec![FuncId(0)]);
        let _ = c.resolve(5);
    }
}
